#!/usr/bin/env bash
# Offline build + test harness for environments without crates.io
# access (the CI container cannot fetch the registry, so `cargo build`
# fails before compiling anything).
#
# Compiles the whole workspace with bare rustc against the deterministic
# `rand` stub in scripts/rand-stub/ and runs every unit/integration
# suite that does not require proptest/criterion (those dev-deps are
# registry-only; the proptest files are exercised in registry-enabled
# environments).
#
# Usage:
#   scripts/offline-test.sh            # build everything + run all tests
#   scripts/offline-test.sh build      # build rlibs + binaries only
#   scripts/offline-test.sh test NAME  # run one crate's tests (e.g. cluster)

set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${OUT:-target/offline}
LIB=$OUT/lib
BIN=$OUT/bin
TESTDIR=$OUT/tests
mkdir -p "$LIB" "$BIN" "$TESTDIR"

RUSTC=${RUSTC:-rustc}
FLAGS=(--edition 2021 -O -Awarnings -L "$LIB")

# crate name -> source path and dependency list (topological order).
CRATES=(graph partition prof exec tensor cluster distgnn distdgl core bench cli facade)

src_of() {
  case $1 in
    facade) echo src/lib.rs ;;
    *) echo crates/$1/src/lib.rs ;;
  esac
}

name_of() {
  case $1 in
    facade) echo gnnpart ;;
    *) echo gp_$1 ;;
  esac
}

deps_of() {
  case $1 in
    graph) echo "rand" ;;
    partition) echo "rand gp_graph" ;;
    prof) echo "" ;;
    tensor) echo "rand gp_exec gp_prof" ;;
    cluster) echo "gp_graph gp_partition" ;;
    exec) echo "gp_prof" ;;
    distgnn) echo "rand gp_graph gp_partition gp_tensor gp_cluster gp_exec gp_prof" ;;
    distdgl) echo "rand gp_graph gp_partition gp_tensor gp_cluster gp_exec gp_prof" ;;
    core) echo "rand gp_graph gp_partition gp_tensor gp_cluster gp_exec gp_prof gp_distgnn gp_distdgl" ;;
    bench) echo "rand gp_graph gp_partition gp_tensor gp_cluster gp_exec gp_prof gp_distgnn gp_distdgl gp_core" ;;
    cli) echo "gp_graph gp_partition gp_tensor gp_cluster gp_exec gp_prof gp_distgnn gp_distdgl gp_core" ;;
    facade) echo "gp_graph gp_partition gp_tensor gp_cluster gp_exec gp_prof gp_distgnn gp_distdgl gp_core" ;;
  esac
}

# Extra externs available to a crate's #[cfg(test)] code (dev-deps).
dev_deps_of() {
  case $1 in
    distdgl) echo "gp_distgnn" ;;
    *) echo "" ;;
  esac
}

externs() {
  local out=()
  for d in $1; do
    out+=(--extern "$d=$LIB/lib$d.rlib")
  done
  echo "${out[@]:-}"
}

build_all() {
  echo "== rand stub"
  "$RUSTC" "${FLAGS[@]}" --crate-type lib --crate-name rand -Cmetadata=rand \
    scripts/rand-stub/lib.rs -o "$LIB/librand.rlib"
  for c in "${CRATES[@]}"; do
    local_name=$(name_of "$c")
    echo "== lib $local_name"
    # shellcheck disable=SC2046
    "$RUSTC" "${FLAGS[@]}" --crate-type lib --crate-name "$local_name" \
      -Cmetadata="$local_name" $(externs "$(deps_of "$c")") \
      "$(src_of "$c")" -o "$LIB/lib$local_name.rlib"
  done
  echo "== bin gnnpart"
  # shellcheck disable=SC2046
  "$RUSTC" "${FLAGS[@]}" --crate-name gnnpart $(externs "$(deps_of cli) gp_cli") \
    crates/cli/src/main.rs -o "$BIN/gnnpart"
  for b in ablations figures; do
    echo "== bin $b"
    # shellcheck disable=SC2046
    "$RUSTC" "${FLAGS[@]}" --crate-name "$b" $(externs "$(deps_of bench) gp_bench") \
      crates/bench/src/bin/$b.rs -o "$BIN/$b"
  done
}

run_test_bin() { # name, binary
  echo "-- test $1"
  "$2" --test-threads "${TEST_THREADS:-4}" -q
}

test_crate() { # crate key
  local c=$1 name deps
  name=$(name_of "$c")
  deps="$(deps_of "$c") $(dev_deps_of "$c")"
  # shellcheck disable=SC2046
  CARGO_BIN_EXE_gnnpart="$PWD/$BIN/gnnpart" \
    "$RUSTC" "${FLAGS[@]}" --test --crate-name "${name}_tests" \
    -Cmetadata="${name}_tests" $(externs "$deps") \
    "$(src_of "$c")" -o "$TESTDIR/${name}_tests"
  run_test_bin "$name" "$TESTDIR/${name}_tests"
  # Crate-level integration tests (skip registry-only proptest suites).
  if [ "$c" != facade ] && [ -d "crates/$c/tests" ]; then
    for t in crates/$c/tests/*.rs; do
      base=$(basename "$t" .rs)
      [ "$base" = proptests ] && continue
      # shellcheck disable=SC2046
      CARGO_BIN_EXE_gnnpart="$PWD/$BIN/gnnpart" \
        "$RUSTC" "${FLAGS[@]}" --test --crate-name "${name}_${base}" \
        -Cmetadata="${name}_${base}" $(externs "$deps $name") \
        "$t" -o "$TESTDIR/${name}_${base}"
      run_test_bin "$name/$base" "$TESTDIR/${name}_${base}"
    done
  fi
}

test_root() {
  for t in tests/*.rs; do
    base=$(basename "$t" .rs)
    # shellcheck disable=SC2046
    "$RUSTC" "${FLAGS[@]}" --test --crate-name "root_${base}" \
      -Cmetadata="root_${base}" $(externs "$(deps_of facade) gnnpart") \
      "$t" -o "$TESTDIR/root_${base}"
    run_test_bin "root/$base" "$TESTDIR/root_${base}"
  done
}

case "${1:-all}" in
  build) build_all ;;
  test) test_crate "${2:?crate name}" ;;
  root) test_root ;;
  all)
    build_all
    for c in "${CRATES[@]}"; do test_crate "$c"; done
    test_root
    echo "ALL SUITES GREEN"
    ;;
  *) echo "usage: $0 [build|test CRATE|root|all]" >&2; exit 2 ;;
esac
