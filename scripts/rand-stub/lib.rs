//! Minimal deterministic stand-in for the `rand` crate, used by the
//! offline test harness (`scripts/offline-test.sh`) in environments
//! where the crates.io registry is unreachable.
//!
//! It implements exactly the surface this workspace consumes —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `RngExt`
//! (`random`/`random_bool`/`random_range`), `seq::SliceRandom::shuffle`
//! and `seq::index::sample` — over a SplitMix64 core. Streams are
//! deterministic per seed but are NOT the real `rand` streams, so
//! value-sensitive artifacts regenerated under the stub may differ from
//! ones generated with crates.io `rand`.

/// Core source of randomness (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed.wrapping_mul(0x2545_f491_4f6c_dd1d) };
            let _ = super::RngCore::next_u64(&mut rng);
            rng
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw a value from the standard distribution of the type.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Convenience methods (subset of `rand::Rng` / `rand::RngExt`).
pub trait RngExt: RngCore {
    /// Draw a value from the type's standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        p > 0.0 && f64::draw(self) < p
    }

    /// Uniform draw from a half-open range.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    pub mod index {
        use super::super::RngCore;

        /// Result of [`sample`]: distinct indices in `[0, length)`.
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Iterate the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Consume into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        /// Sample `amount` distinct indices from `[0, length)` (partial
        /// Fisher–Yates).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> IndexVec {
            assert!(amount <= length, "sample: amount > length");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + (rng.next_u64() % (length - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}
