#!/usr/bin/env python3
"""Compare two BENCH_perf.json snapshots (see `gnnpart bench`).

Rows are joined by identity — (engine, partitioner) for engine rows,
(family, partitioner) for partitioner rows — and the host measurements
(wall seconds, peak bytes) are compared as current/baseline ratios
against configurable regression thresholds. Host times are noisy, so
the defaults are deliberately loose; tighten them on quiet machines.

Exit codes: 0 ok (or --warn-only), 1 regression found, 2 structural
mismatch (row sets differ — the workload matrix itself changed).

Usage:
    scripts/bench_diff.py baseline.json current.json
    scripts/bench_diff.py --wall-threshold 1.3 --peak-threshold 1.1 a b
    scripts/bench_diff.py --warn-only a b      # report, never fail
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read {path}: {e}")
    if doc.get("bench") != "perf":
        sys.exit(f"bench_diff: {path} is not a BENCH_perf.json (bench={doc.get('bench')!r})")
    return doc


def keyed(rows, *key_fields):
    out = {}
    for row in rows:
        out[tuple(row[f] for f in key_fields)] = row
    return out


def ratio(cur, base):
    if base <= 0:
        return float("inf") if cur > 0 else 1.0
    return cur / base


def fmt_bytes(n):
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f} MiB"
    if n >= 1 << 10:
        return f"{n / 1024:.1f} KiB"
    return f"{n} B"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline BENCH_perf.json")
    ap.add_argument("current", help="current BENCH_perf.json")
    ap.add_argument(
        "--wall-threshold",
        type=float,
        default=1.5,
        help="max allowed current/baseline wall-seconds ratio (default 1.5)",
    )
    ap.add_argument(
        "--peak-threshold",
        type=float,
        default=1.25,
        help="max allowed current/baseline peak-bytes ratio (default 1.25)",
    )
    ap.add_argument(
        "--min-wall-seconds",
        type=float,
        default=0.005,
        help="ignore wall regressions when both sides are below this "
        "(sub-resolution noise; default 0.005)",
    )
    ap.add_argument(
        "--warn-only",
        action="store_true",
        help="print regressions but exit 0 (CI smoke on shared runners)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    regressions = []

    def check(label, name, base_val, cur_val, threshold, floor=0.0, render=str):
        r = ratio(cur_val, base_val)
        arrow = f"{render(base_val)} -> {render(cur_val)} ({r:.2f}x)"
        print(f"  {name:<24} {arrow}")
        if r > threshold and max(base_val, cur_val) >= floor:
            regressions.append(f"{label} {name}: {arrow} exceeds {threshold:.2f}x")

    # Structural comparison first: a changed row set means the two
    # files describe different workload matrices, and value deltas
    # would be meaningless.
    structural = []
    for section, fields in (("partitioners", ("family", "partitioner")), ("engines", ("engine", "partitioner"))):
        b, c = keyed(base[section], *fields), keyed(cur[section], *fields)
        if set(b) != set(c):
            only_b = sorted(set(b) - set(c))
            only_c = sorted(set(c) - set(b))
            structural.append(f"{section}: baseline-only {only_b}, current-only {only_c}")
    if structural:
        for s in structural:
            print(f"STRUCTURAL MISMATCH {s}", file=sys.stderr)
        sys.exit(2)

    print(f"graph: {base['graph']['edges']} -> {cur['graph']['edges']} edges")
    print("partitioners (wall seconds):")
    b, c = keyed(base["partitioners"], "family", "partitioner"), keyed(
        cur["partitioners"], "family", "partitioner"
    )
    for key in sorted(b):
        check(
            "partitioner",
            "/".join(key),
            b[key]["seconds"],
            c[key]["seconds"],
            args.wall_threshold,
            floor=args.min_wall_seconds,
            render=lambda v: f"{v:.4f}s",
        )
    print("partitioners (peak bytes):")
    for key in sorted(b):
        check(
            "partitioner-peak",
            "/".join(key),
            b[key]["peak_bytes"],
            c[key]["peak_bytes"],
            args.peak_threshold,
            render=fmt_bytes,
        )
    print("engines (auto-width wall seconds):")
    b, c = keyed(base["engines"], "engine", "partitioner"), keyed(
        cur["engines"], "engine", "partitioner"
    )
    for key in sorted(b):
        check(
            "engine",
            "/".join(key),
            b[key]["wall_seconds_auto"],
            c[key]["wall_seconds_auto"],
            args.wall_threshold,
            floor=args.min_wall_seconds,
            render=lambda v: f"{v:.4f}s",
        )
    print("engines (peak bytes):")
    for key in sorted(b):
        check(
            "engine-peak",
            "/".join(key),
            b[key]["peak_bytes"],
            c[key]["peak_bytes"],
            args.peak_threshold,
            render=fmt_bytes,
        )

    if regressions:
        print(f"\n{len(regressions)} regression(s):", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        if not args.warn_only:
            sys.exit(1)
        print("(warn-only: exiting 0)", file=sys.stderr)
    else:
        print("\nno regressions")


if __name__ == "__main__":
    main()
