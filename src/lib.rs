//! # gnnpart — partitioning strategies for distributed GNN training
//!
//! Facade crate re-exporting the whole workspace. This is a
//! production-quality Rust reproduction of *"An Experimental Comparison
//! of Partitioning Strategies for Distributed Graph Neural Network
//! Training"* (EDBT 2025): twelve graph partitioners, two distributed GNN
//! training engines (full-batch/edge-partitioned and
//! mini-batch/vertex-partitioned), a deterministic cluster cost model,
//! and an experiment harness regenerating every table and figure of the
//! paper.
//!
//! ## Quickstart
//!
//! ```
//! use gnnpart::prelude::*;
//!
//! // Generate the Orkut analogue and partition it 4 ways with HDRF.
//! let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
//! let partition = Hdrf::default().partition_edges(&graph, 4, 42).unwrap();
//! assert!(partition.replication_factor() >= 1.0);
//!
//! // Simulate one full-batch DistGNN epoch on the paper's cluster.
//! let config = DistGnnConfig::paper(
//!     ModelConfig {
//!         kind: ModelKind::Sage,
//!         feature_dim: 64,
//!         hidden_dim: 64,
//!         num_layers: 2,
//!         num_classes: 16,
//!         seed: 0,
//!     },
//!     ClusterSpec::paper(4),
//! );
//! let report = DistGnnEngine::builder(&graph, &partition)
//!     .config(config)
//!     .build()
//!     .unwrap()
//!     .simulate_epoch();
//! assert!(report.epoch_time() > 0.0);
//!
//! // Record the same epoch as a span trace (zero-cost when disabled).
//! let sink = TraceSink::enabled();
//! let traced = DistGnnEngine::builder(&graph, &partition)
//!     .config(config)
//!     .trace(sink.clone())
//!     .build()
//!     .unwrap();
//! let traced_report = traced.simulate_epoch();
//! assert_eq!(traced_report.epoch_time(), report.epoch_time(), "tracing is observational");
//! assert!(!sink.spans().is_empty());
//! ```

pub use gp_cluster as cluster;
pub use gp_core as core;
pub use gp_distdgl as distdgl;
pub use gp_distgnn as distgnn;
pub use gp_exec as exec;
pub use gp_graph as graph;
pub use gp_partition as partition;
pub use gp_tensor as tensor;

/// Convenience prelude with the most common types.
pub mod prelude {
    pub use gp_cluster::{
        ClusterSpec, CounterEvent, EpochOutcome, MachineSpec, NetworkSpec, PhaseRow, Span,
        TracePhase, TraceSink,
    };
    pub use gp_core::prelude::*;
    pub use gp_distdgl::{
        scaled_fanouts, DistDglConfig, DistDglEngine, DistDglEngineBuilder, EpochSummary,
    };
    pub use gp_distgnn::{DistGnnConfig, DistGnnEngine, DistGnnEngineBuilder, EpochReport};
    pub use gp_graph::{DatasetId, Graph, GraphBuilder, GraphScale, VertexSplit};
    pub use gp_partition::prelude::*;
    pub use gp_tensor::{Adam, GnnModel, ModelConfig, ModelKind, Sgd, Tensor};
}
