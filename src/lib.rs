//! # gnnpart — partitioning strategies for distributed GNN training
//!
//! Facade crate re-exporting the whole workspace. This is a
//! production-quality Rust reproduction of *"An Experimental Comparison
//! of Partitioning Strategies for Distributed Graph Neural Network
//! Training"* (EDBT 2025): twelve graph partitioners, two distributed GNN
//! training engines (full-batch/edge-partitioned and
//! mini-batch/vertex-partitioned), a deterministic cluster cost model,
//! and an experiment harness regenerating every table and figure of the
//! paper.
//!
//! ## Quickstart
//!
//! ```
//! use gnnpart::prelude::*;
//!
//! // Generate the Orkut analogue and partition it 4 ways with HDRF.
//! let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
//! let partition = Hdrf::default().partition_edges(&graph, 4, 42).unwrap();
//! assert!(partition.replication_factor() >= 1.0);
//!
//! // Simulate one full-batch DistGNN epoch on the paper's cluster.
//! // Every run goes through one entry point: `engine.run(&RunSpec)`,
//! // where the spec composes faults, mitigation, elastic membership
//! // and network-fault legs onto the healthy baseline.
//! let config = DistGnnConfig::paper(
//!     ModelConfig {
//!         kind: ModelKind::Sage,
//!         feature_dim: 64,
//!         hidden_dim: 64,
//!         num_layers: 2,
//!         num_classes: 16,
//!         seed: 0,
//!     },
//!     ClusterSpec::paper(4),
//! );
//! let report = DistGnnEngine::builder(&graph, &partition)
//!     .config(config)
//!     .build()
//!     .unwrap()
//!     .run(&RunSpec::healthy())
//!     .unwrap()
//!     .into_healthy()
//!     .remove(0);
//! assert!(report.epoch_time() > 0.0);
//!
//! // Record the same epoch as a span trace (zero-cost when disabled),
//! // with the intra-epoch compute spread over 4 pool threads — both
//! // knobs are observational: the report is bit-identical.
//! let sink = TraceSink::enabled();
//! let traced = DistGnnEngine::builder(&graph, &partition)
//!     .config(config)
//!     .trace(sink.clone())
//!     .threads(Threads::new(4))
//!     .build()
//!     .unwrap();
//! let traced_report =
//!     traced.run(&RunSpec::healthy()).unwrap().into_healthy().remove(0);
//! assert_eq!(traced_report.epoch_time(), report.epoch_time(), "tracing is observational");
//! assert!(!sink.spans().is_empty());
//! ```

pub use gp_cluster as cluster;
pub use gp_core as core;
pub use gp_distdgl as distdgl;
pub use gp_distgnn as distgnn;
pub use gp_exec as exec;
pub use gp_graph as graph;
pub use gp_partition as partition;
pub use gp_prof as prof;
pub use gp_tensor as tensor;

/// Convenience prelude with the most common types.
pub mod prelude {
    pub use gp_cluster::{
        CheckpointConfig, ChurnPlan, ChurnSpec, ClusterSpec, CounterEvent, ElasticOptions,
        ElasticSpec, EpochOutcome, FaultPlan, FaultSpec, MachineSpec, MitigationPolicy,
        NetFaultPlan, NetFaultSpec, NetRunOptions, NetSpec, NetworkSpec, PhaseRow, RunSpec,
        RunSpecError, Scenario, Span, TracePhase, TraceSink,
    };
    pub use gp_core::prelude::*;
    pub use gp_distdgl::{
        scaled_fanouts, DistDglConfig, DistDglEngine, DistDglEngineBuilder, DistDglRunReport,
        EpochSummary,
    };
    pub use gp_distgnn::{
        DistGnnConfig, DistGnnEngine, DistGnnEngineBuilder, DistGnnRunReport, EpochReport,
    };
    pub use gp_graph::{DatasetId, Graph, GraphBuilder, GraphScale, VertexSplit};
    pub use gp_partition::prelude::*;
    pub use gp_tensor::{Adam, GnnModel, ModelConfig, ModelKind, Sgd, Tensor};
}
