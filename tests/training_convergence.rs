//! Real-learning integration: both engines train actual models whose
//! loss decreases, for every architecture the paper evaluates.

use gnnpart::distdgl::train::train as minibatch_train;
use gnnpart::distgnn::train::{train_full_batch, vertex_features, vertex_labels};
use gnnpart::prelude::*;

fn model_config(kind: ModelKind, classes: usize) -> ModelConfig {
    ModelConfig {
        kind,
        feature_dim: 16,
        hidden_dim: 32,
        num_layers: 2,
        num_classes: classes,
        seed: 13,
    }
}

#[test]
fn full_batch_training_learns_on_every_dataset() {
    for id in [DatasetId::DI, DatasetId::OR] {
        let graph = id.generate(GraphScale::Tiny).unwrap();
        let features = vertex_features(&graph, 16, 5);
        let labels = vertex_labels(&graph, &features, 4);
        let mut model = GnnModel::new(model_config(ModelKind::Sage, 4));
        let mut opt = Adam::new(0.01);
        let stats = train_full_batch(&mut model, &graph, &features, &labels, &mut opt, 25);
        assert!(stats.improved(), "{}: {:?}", id.name(), &stats.losses[..3]);
        assert!(
            *stats.accuracies.last().unwrap() > 0.45,
            "{}: acc {}",
            id.name(),
            stats.accuracies.last().unwrap()
        );
    }
}

#[test]
fn minibatch_training_learns_with_all_architectures() {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let split = VertexSplit::random(graph.num_vertices(), 0.4, 0.1, 2).unwrap();
    let partition = Metis::default().partition_vertices(&graph, 4, 1).unwrap();
    let features = vertex_features(&graph, 16, 5);
    let labels = vertex_labels(&graph, &features, 4);
    for kind in [ModelKind::Sage, ModelKind::Gcn, ModelKind::Gat] {
        let config = model_config(kind, 4);
        let mut dgl_config = DistDglConfig::paper(config, ClusterSpec::paper(4));
        dgl_config.global_batch_size = 128;
        let engine = DistDglEngine::builder(&graph, &partition, &split).config(dgl_config).build().unwrap();
        let mut model = GnnModel::new(config);
        let mut opt = Adam::new(0.01);
        let stats = minibatch_train(&engine, &mut model, &features, &labels, &mut opt, 10);
        assert!(stats.improved(), "{}: {:?}", kind.name(), stats.losses);
    }
}

#[test]
fn partitioning_does_not_change_learning() {
    // Full-batch training math is independent of the partition; the two
    // engines' loss curves must agree exactly for any partitioner.
    let graph = DatasetId::DI.generate(GraphScale::Tiny).unwrap();
    let features = vertex_features(&graph, 16, 5);
    let labels = vertex_labels(&graph, &features, 4);
    let run = || {
        let mut model = GnnModel::new(model_config(ModelKind::Sage, 4));
        let mut opt = Sgd::new(0.05);
        train_full_batch(&mut model, &graph, &features, &labels, &mut opt, 5).losses
    };
    // (The engine's cost model consumes the partition; the training math
    // never does — run twice to assert the invariance holds.)
    assert_eq!(run(), run());
}
