//! The robustness acceptance soak for the elastic-membership layer:
//! a 200-epoch run of seeded churn (machines leaving and rejoining)
//! plus the standard fault schedule, on both engines, with every
//! invariant green —
//!
//! * the soak is bit-identical when rerun at pool widths 1/2/4/8
//!   (`ChaosRow` derives `PartialEq` over every field, including the
//!   simulated-seconds f64s);
//! * the traced run equals the untraced one and the recorded span
//!   sums equal the engines' phase totals exactly (the
//!   `trace_transparent` / `spans_exact` verdicts inside each row);
//! * the elastic run is never worse than the crash-without-handoff
//!   baseline (`elastic_never_worse`).
//!
//! The churn schedule itself must clear the acceptance floors — at
//! least 5 leaves and 3 joins — rather than being satisfied vacuously.
//!
//! The network-chaos soaks below compose a third fault axis on top:
//! a seeded message-level plan of loss, duplication, reorder and
//! partition windows through the engines' `.net(..)` `RunSpec` leg, with the
//! degraded-mode invariant (never worse than abort-and-recover) and
//! exactly-once delivery green while churn and crashes keep running
//! underneath. The network schedule must arm real partition windows —
//! not hold vacuously on a window-free run.

use gnnpart::cluster::{ChurnPlan, NetFaultPlan};
use gnnpart::core::chaos::chaos_churn_spec;
use gnnpart::core::config::PaperParams;
use gnnpart::core::netchaos::netchaos_net_spec;
use gnnpart::prelude::*;

const EPOCHS: u32 = 200;
const MACHINES: u32 = 8;
const MTBF: f64 = 10.0;
const CHECKPOINT_EVERY: u32 = 5;
const SEED: u64 = 0x50a4;

fn graph() -> Graph {
    DatasetId::OR.generate(GraphScale::Tiny).unwrap()
}

fn params() -> PaperParams {
    PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 }
}

#[test]
fn churn_schedule_clears_the_acceptance_floors() {
    let plan = ChurnPlan::generate(&chaos_churn_spec(MACHINES, EPOCHS, SEED));
    assert!(plan.total_leaves() >= 5, "need >= 5 leaves, got {}", plan.total_leaves());
    assert!(plan.total_joins() >= 3, "need >= 3 joins, got {}", plan.total_joins());
}

fn assert_green(row: &gnnpart::core::chaos::ChaosRow, engine: &str) {
    assert!(
        row.holds(),
        "{engine}/{}: completed {}/{}, deterministic={}, trace_transparent={}, \
         elastic_never_worse={}, spans_exact={}",
        row.name,
        row.completed_epochs,
        row.epochs,
        row.deterministic,
        row.trace_transparent,
        row.elastic_never_worse,
        row.spans_exact,
    );
    assert_eq!(row.completed_epochs, EPOCHS, "{engine}/{}: full horizon", row.name);
    assert!(row.leaves >= 5, "{engine}/{}: churn actually exercised", row.name);
    assert!(row.joins >= 3, "{engine}/{}: rejoins actually exercised", row.name);
    assert!(row.crashes > 0, "{engine}/{}: standard faults actually crash", row.name);
    assert!(row.checkpoints > 0, "{engine}/{}: checkpoint path exercised", row.name);
    if row.baseline_secs >= 0.0 {
        assert!(
            row.elastic_secs <= row.baseline_secs + 1e-9,
            "{engine}/{}: elastic {} > no-handoff baseline {}",
            row.name,
            row.elastic_secs,
            row.baseline_secs,
        );
    }
}

#[test]
fn network_schedule_arms_real_partition_windows() {
    let plan = NetFaultPlan::generate(&netchaos_net_spec(MACHINES, EPOCHS, SEED));
    assert!(!plan.is_empty(), "non-degenerate network schedule");
    assert!(!plan.windows.is_empty(), "partition windows scheduled");
}

fn assert_net_green(row: &gnnpart::core::netchaos::NetChaosRow, engine: &str) {
    assert!(
        row.holds(),
        "{engine}/{}: completed {}/{}, deterministic={}, trace_transparent={}, \
         degraded_never_worse={}, exactly_once={}, spans_exact={}",
        row.name,
        row.completed_epochs,
        row.epochs,
        row.deterministic,
        row.trace_transparent,
        row.degraded_never_worse,
        row.exactly_once,
        row.spans_exact,
    );
    assert_eq!(row.completed_epochs, EPOCHS, "{engine}/{}: full horizon", row.name);
    // All three fault axes actually compose: churn, crashes AND
    // partition windows fire in the same run.
    assert!(row.leaves >= 5, "{engine}/{}: churn still exercised", row.name);
    assert!(row.crashes > 0, "{engine}/{}: crashes still exercised", row.name);
    assert!(row.windows > 0, "{engine}/{}: partition windows armed", row.name);
    assert!(row.partitioned_epochs > 0, "{engine}/{}: epochs spent partitioned", row.name);
    assert!(row.net_retries > 0, "{engine}/{}: loss retries exercised", row.name);
    assert!(row.dup_discarded > 0, "{engine}/{}: dedup window exercised", row.name);
    if row.degraded_windows > 0 {
        // DistGNN serves remote aggregations from stale replicas;
        // DistDGL defers minority-island fetches to cache + snapshots.
        // Either way the bounded-staleness path must actually fire.
        assert!(
            row.stale_served > 0 || row.deferred_fetches > 0,
            "{engine}/{}: degraded epochs used the bounded-staleness path",
            row.name
        );
    }
    if row.abort_secs >= 0.0 {
        assert!(
            row.degraded_secs <= row.abort_secs + 1e-9,
            "{engine}/{}: degraded {} > abort-and-recover {}",
            row.name,
            row.degraded_secs,
            row.abort_secs,
        );
    }
}

#[test]
fn distgnn_netchaos_soak_composes_all_three_fault_axes() {
    let g = graph();
    let timed: Vec<_> =
        timed_edge_partitions(&g, MACHINES, 1).into_iter().take(2).collect();
    let serial =
        distgnn_netchaos_soak(&g, &timed, params(), EPOCHS, MTBF, CHECKPOINT_EVERY, SEED);
    assert_eq!(serial.len(), 2);
    for row in &serial {
        assert_net_green(row, "distgnn");
    }
    for threads in [2usize, 4, 8] {
        let par = distgnn_netchaos_soak_threaded(
            &g,
            &timed,
            params(),
            EPOCHS,
            MTBF,
            CHECKPOINT_EVERY,
            SEED,
            Threads::new(threads),
        );
        assert_eq!(par, serial, "threads = {threads}");
    }
}

#[test]
fn distdgl_netchaos_soak_composes_all_three_fault_axes() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let timed: Vec<_> =
        timed_vertex_partitions(&g, MACHINES, 1, &split.train).into_iter().take(2).collect();
    let serial = distdgl_netchaos_soak(
        &g,
        &split,
        &timed,
        params(),
        ModelKind::Sage,
        256,
        EPOCHS,
        MTBF,
        CHECKPOINT_EVERY,
        SEED,
    );
    assert_eq!(serial.len(), 2);
    for row in &serial {
        assert_net_green(row, "distdgl");
    }
    for threads in [2usize, 4, 8] {
        let par = distdgl_netchaos_soak_threaded(
            &g,
            &split,
            &timed,
            params(),
            ModelKind::Sage,
            256,
            EPOCHS,
            MTBF,
            CHECKPOINT_EVERY,
            SEED,
            Threads::new(threads),
        );
        assert_eq!(par, serial, "threads = {threads}");
    }
}

#[test]
fn distgnn_200_epoch_soak_is_green_at_every_pool_width() {
    let g = graph();
    // Two partitioners bound the wall clock; the full roster runs in
    // the `chaos` ablation and `gnnpart chaos`.
    let timed: Vec<_> =
        timed_edge_partitions(&g, MACHINES, 1).into_iter().take(2).collect();
    let serial = distgnn_chaos_soak(&g, &timed, params(), EPOCHS, MTBF, CHECKPOINT_EVERY, SEED);
    assert_eq!(serial.len(), 2);
    for row in &serial {
        assert_green(row, "distgnn");
    }
    for threads in [2usize, 4, 8] {
        let par = distgnn_chaos_soak_threaded(
            &g,
            &timed,
            params(),
            EPOCHS,
            MTBF,
            CHECKPOINT_EVERY,
            SEED,
            Threads::new(threads),
        );
        assert_eq!(par, serial, "threads = {threads}");
    }
}

#[test]
fn distdgl_200_epoch_soak_is_green_at_every_pool_width() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let timed: Vec<_> =
        timed_vertex_partitions(&g, MACHINES, 1, &split.train).into_iter().take(2).collect();
    let serial = distdgl_chaos_soak(
        &g,
        &split,
        &timed,
        params(),
        ModelKind::Sage,
        256,
        EPOCHS,
        MTBF,
        CHECKPOINT_EVERY,
        SEED,
    );
    assert_eq!(serial.len(), 2);
    for row in &serial {
        assert_green(row, "distdgl");
    }
    for threads in [2usize, 4, 8] {
        let par = distdgl_chaos_soak_threaded(
            &g,
            &split,
            &timed,
            params(),
            ModelKind::Sage,
            256,
            EPOCHS,
            MTBF,
            CHECKPOINT_EVERY,
            SEED,
            Threads::new(threads),
        );
        assert_eq!(par, serial, "threads = {threads}");
    }
}
