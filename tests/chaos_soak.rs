//! The robustness acceptance soak for the elastic-membership layer:
//! a 200-epoch run of seeded churn (machines leaving and rejoining)
//! plus the standard fault schedule, on both engines, with every
//! invariant green —
//!
//! * the soak is bit-identical when rerun at pool widths 1/2/4/8
//!   (`ChaosRow` derives `PartialEq` over every field, including the
//!   simulated-seconds f64s);
//! * the traced run equals the untraced one and the recorded span
//!   sums equal the engines' phase totals exactly (the
//!   `trace_transparent` / `spans_exact` verdicts inside each row);
//! * the elastic run is never worse than the crash-without-handoff
//!   baseline (`elastic_never_worse`).
//!
//! The churn schedule itself must clear the acceptance floors — at
//! least 5 leaves and 3 joins — rather than being satisfied vacuously.
//!
//! The network-chaos soaks below compose a third fault axis on top:
//! a seeded message-level plan of loss, duplication, reorder and
//! partition windows through the engines' `.net(..)` `RunSpec` leg, with the
//! degraded-mode invariant (never worse than abort-and-recover) and
//! exactly-once delivery green while churn and crashes keep running
//! underneath. The network schedule must arm real partition windows —
//! not hold vacuously on a window-free run.
//!
//! The streaming soaks at the bottom run the dynamic-graph axis for
//! 200 mutation batches per policy and check the decay metrics are
//! monotone-consistent: a policy run is bit-identical to the `never`
//! baseline until its first adopted repartition, and at that batch the
//! post-repartition quality is no worse than the incremental quality
//! it replaced (observable as the `never` run's quality at the same
//! batch, since the two states coincide up to that point).

use gnnpart::cluster::{ChurnPlan, NetFaultPlan};
use gnnpart::core::chaos::chaos_churn_spec;
use gnnpart::core::config::PaperParams;
use gnnpart::core::netchaos::netchaos_net_spec;
use gnnpart::prelude::*;

const EPOCHS: u32 = 200;
const MACHINES: u32 = 8;
const MTBF: f64 = 10.0;
const CHECKPOINT_EVERY: u32 = 5;
const SEED: u64 = 0x50a4;

fn graph() -> Graph {
    DatasetId::OR.generate(GraphScale::Tiny).unwrap()
}

fn params() -> PaperParams {
    PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 }
}

#[test]
fn churn_schedule_clears_the_acceptance_floors() {
    let plan = ChurnPlan::generate(&chaos_churn_spec(MACHINES, EPOCHS, SEED));
    assert!(plan.total_leaves() >= 5, "need >= 5 leaves, got {}", plan.total_leaves());
    assert!(plan.total_joins() >= 3, "need >= 3 joins, got {}", plan.total_joins());
}

fn assert_green(row: &gnnpart::core::chaos::ChaosRow, engine: &str) {
    assert!(
        row.holds(),
        "{engine}/{}: completed {}/{}, deterministic={}, trace_transparent={}, \
         elastic_never_worse={}, spans_exact={}",
        row.name,
        row.completed_epochs,
        row.epochs,
        row.deterministic,
        row.trace_transparent,
        row.elastic_never_worse,
        row.spans_exact,
    );
    assert_eq!(row.completed_epochs, EPOCHS, "{engine}/{}: full horizon", row.name);
    assert!(row.leaves >= 5, "{engine}/{}: churn actually exercised", row.name);
    assert!(row.joins >= 3, "{engine}/{}: rejoins actually exercised", row.name);
    assert!(row.crashes > 0, "{engine}/{}: standard faults actually crash", row.name);
    assert!(row.checkpoints > 0, "{engine}/{}: checkpoint path exercised", row.name);
    if row.baseline_secs >= 0.0 {
        assert!(
            row.elastic_secs <= row.baseline_secs + 1e-9,
            "{engine}/{}: elastic {} > no-handoff baseline {}",
            row.name,
            row.elastic_secs,
            row.baseline_secs,
        );
    }
}

#[test]
fn network_schedule_arms_real_partition_windows() {
    let plan = NetFaultPlan::generate(&netchaos_net_spec(MACHINES, EPOCHS, SEED));
    assert!(!plan.is_empty(), "non-degenerate network schedule");
    assert!(!plan.windows.is_empty(), "partition windows scheduled");
}

fn assert_net_green(row: &gnnpart::core::netchaos::NetChaosRow, engine: &str) {
    assert!(
        row.holds(),
        "{engine}/{}: completed {}/{}, deterministic={}, trace_transparent={}, \
         degraded_never_worse={}, exactly_once={}, spans_exact={}",
        row.name,
        row.completed_epochs,
        row.epochs,
        row.deterministic,
        row.trace_transparent,
        row.degraded_never_worse,
        row.exactly_once,
        row.spans_exact,
    );
    assert_eq!(row.completed_epochs, EPOCHS, "{engine}/{}: full horizon", row.name);
    // All three fault axes actually compose: churn, crashes AND
    // partition windows fire in the same run.
    assert!(row.leaves >= 5, "{engine}/{}: churn still exercised", row.name);
    assert!(row.crashes > 0, "{engine}/{}: crashes still exercised", row.name);
    assert!(row.windows > 0, "{engine}/{}: partition windows armed", row.name);
    assert!(row.partitioned_epochs > 0, "{engine}/{}: epochs spent partitioned", row.name);
    assert!(row.net_retries > 0, "{engine}/{}: loss retries exercised", row.name);
    assert!(row.dup_discarded > 0, "{engine}/{}: dedup window exercised", row.name);
    if row.degraded_windows > 0 {
        // DistGNN serves remote aggregations from stale replicas;
        // DistDGL defers minority-island fetches to cache + snapshots.
        // Either way the bounded-staleness path must actually fire.
        assert!(
            row.stale_served > 0 || row.deferred_fetches > 0,
            "{engine}/{}: degraded epochs used the bounded-staleness path",
            row.name
        );
    }
    if row.abort_secs >= 0.0 {
        assert!(
            row.degraded_secs <= row.abort_secs + 1e-9,
            "{engine}/{}: degraded {} > abort-and-recover {}",
            row.name,
            row.degraded_secs,
            row.abort_secs,
        );
    }
}

#[test]
fn distgnn_netchaos_soak_composes_all_three_fault_axes() {
    let g = graph();
    let timed: Vec<_> =
        timed_edge_partitions(&g, MACHINES, 1).into_iter().take(2).collect();
    let serial =
        distgnn_netchaos_soak(&g, &timed, params(), EPOCHS, MTBF, CHECKPOINT_EVERY, SEED);
    assert_eq!(serial.len(), 2);
    for row in &serial {
        assert_net_green(row, "distgnn");
    }
    for threads in [2usize, 4, 8] {
        let par = distgnn_netchaos_soak_threaded(
            &g,
            &timed,
            params(),
            EPOCHS,
            MTBF,
            CHECKPOINT_EVERY,
            SEED,
            Threads::new(threads),
        );
        assert_eq!(par, serial, "threads = {threads}");
    }
}

#[test]
fn distdgl_netchaos_soak_composes_all_three_fault_axes() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let timed: Vec<_> =
        timed_vertex_partitions(&g, MACHINES, 1, &split.train).into_iter().take(2).collect();
    let serial = distdgl_netchaos_soak(
        &g,
        &split,
        &timed,
        params(),
        ModelKind::Sage,
        256,
        EPOCHS,
        MTBF,
        CHECKPOINT_EVERY,
        SEED,
    );
    assert_eq!(serial.len(), 2);
    for row in &serial {
        assert_net_green(row, "distdgl");
    }
    for threads in [2usize, 4, 8] {
        let par = distdgl_netchaos_soak_threaded(
            &g,
            &split,
            &timed,
            params(),
            ModelKind::Sage,
            256,
            EPOCHS,
            MTBF,
            CHECKPOINT_EVERY,
            SEED,
            Threads::new(threads),
        );
        assert_eq!(par, serial, "threads = {threads}");
    }
}

#[test]
fn distgnn_200_epoch_soak_is_green_at_every_pool_width() {
    let g = graph();
    // Two partitioners bound the wall clock; the full roster runs in
    // the `chaos` ablation and `gnnpart chaos`.
    let timed: Vec<_> =
        timed_edge_partitions(&g, MACHINES, 1).into_iter().take(2).collect();
    let serial = distgnn_chaos_soak(&g, &timed, params(), EPOCHS, MTBF, CHECKPOINT_EVERY, SEED);
    assert_eq!(serial.len(), 2);
    for row in &serial {
        assert_green(row, "distgnn");
    }
    for threads in [2usize, 4, 8] {
        let par = distgnn_chaos_soak_threaded(
            &g,
            &timed,
            params(),
            EPOCHS,
            MTBF,
            CHECKPOINT_EVERY,
            SEED,
            Threads::new(threads),
        );
        assert_eq!(par, serial, "threads = {threads}");
    }
}

/// Decay monotone-consistency of one engine's 200-batch stream sweep.
///
/// Every policy row must be green, and each non-`never` row must agree
/// with its `never` twin batch-for-batch (quality AND epoch seconds)
/// up to its first adopted repartition — the incremental state is the
/// same until then — after which the adopted quality at that batch
/// must not exceed the incremental quality it replaced (the `never`
/// twin's value at the same batch).
fn assert_stream_green(rows: &[StreamSweepRow], engine: &str) {
    for row in rows {
        assert!(
            row.holds(),
            "{engine}/{}/{}: completed {}/{}, deterministic={}, trace_transparent={}, \
             never_worse={}",
            row.name,
            row.policy,
            row.completed_batches,
            row.batches,
            row.deterministic,
            row.trace_transparent,
            row.never_worse,
        );
        assert_eq!(row.completed_batches, 200, "{engine}/{}/{}: full horizon", row.name, row.policy);
    }
    for row in rows.iter().filter(|r| r.policy != "never") {
        let never = rows
            .iter()
            .find(|r| r.name == row.name && r.policy == "never")
            .expect("never baseline row present");
        let first = row
            .quality_series
            .iter()
            .zip(&row.epoch_series)
            .zip(never.quality_series.iter().zip(&never.epoch_series))
            .position(|((q, e), (nq, ne))| q != nq || e != ne);
        match first {
            None => assert_eq!(
                row.repartitions, 0,
                "{engine}/{}/{}: identical to never yet claims repartitions",
                row.name, row.policy
            ),
            Some(b) => {
                assert!(
                    row.repartitions > 0,
                    "{engine}/{}/{}: diverged from never at batch {b} without a repartition",
                    row.name,
                    row.policy
                );
                assert!(
                    row.quality_series[b] <= never.quality_series[b] + 1e-9,
                    "{engine}/{}/{}: post-repartition quality {} at batch {b} worse than the \
                     incremental {} it replaced",
                    row.name,
                    row.policy,
                    row.quality_series[b],
                    never.quality_series[b],
                );
            }
        }
    }
}

#[test]
fn distgnn_200_batch_stream_soak_decay_is_monotone_consistent() {
    use gnnpart::graph::StreamSpec;
    let g = graph();
    let names = ["Random", "HDRF"];
    let spec = StreamSpec::paper_default(200, SEED);
    let policies = stream_policies();
    // Width conformance lives in parallel_conformance.rs; here one
    // threaded rerun guards the long-horizon path specifically.
    let serial = distgnn_stream_sweep(&g, &names, MACHINES, params(), &spec, &policies, 1);
    assert_eq!(serial.len(), names.len() * policies.len());
    assert_stream_green(&serial, "distgnn");
    assert!(
        serial.iter().any(|r| r.repartitions > 0),
        "200 periodic/threshold fire points must adopt at least one repartition"
    );
    let par = distgnn_stream_sweep_threaded(
        &g, &names, MACHINES, params(), &spec, &policies, 1,
        Threads::new(4),
    );
    assert_eq!(par, serial, "threaded rerun");
}

#[test]
fn distdgl_200_batch_stream_soak_decay_is_monotone_consistent() {
    use gnnpart::graph::StreamSpec;
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let names = ["Random", "LDG"];
    let spec = StreamSpec::paper_default(200, SEED);
    let policies = stream_policies();
    let serial = distdgl_stream_sweep(
        &g, &split, &names, MACHINES, params(), ModelKind::Sage, 256, &spec, &policies, 1,
    );
    assert_eq!(serial.len(), names.len() * policies.len());
    assert_stream_green(&serial, "distdgl");
    assert!(
        serial.iter().any(|r| r.repartitions > 0),
        "200 periodic/threshold fire points must adopt at least one repartition"
    );
    let par = distdgl_stream_sweep_threaded(
        &g, &split, &names, MACHINES, params(), ModelKind::Sage, 256, &spec, &policies, 1,
        Threads::new(4),
    );
    assert_eq!(par, serial, "threaded rerun");
}

#[test]
fn distdgl_200_epoch_soak_is_green_at_every_pool_width() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let timed: Vec<_> =
        timed_vertex_partitions(&g, MACHINES, 1, &split.train).into_iter().take(2).collect();
    let serial = distdgl_chaos_soak(
        &g,
        &split,
        &timed,
        params(),
        ModelKind::Sage,
        256,
        EPOCHS,
        MTBF,
        CHECKPOINT_EVERY,
        SEED,
    );
    assert_eq!(serial.len(), 2);
    for row in &serial {
        assert_green(row, "distdgl");
    }
    for threads in [2usize, 4, 8] {
        let par = distdgl_chaos_soak_threaded(
            &g,
            &split,
            &timed,
            params(),
            ModelKind::Sage,
            256,
            EPOCHS,
            MTBF,
            CHECKPOINT_EVERY,
            SEED,
            Threads::new(threads),
        );
        assert_eq!(par, serial, "threads = {threads}");
    }
}
