//! End-to-end integration: dataset → partitioners → engines → reports.

use gnnpart::core::config::PaperParams;
use gnnpart::core::experiment::{
    distdgl_epoch, distgnn_epoch, timed_edge_partitions, timed_vertex_partitions,
};
use gnnpart::prelude::*;

#[test]
fn full_distgnn_pipeline_on_every_dataset() {
    for id in DatasetId::ALL {
        let graph = id.generate(GraphScale::Tiny).unwrap();
        let parts = timed_edge_partitions(&graph, 4, 7);
        assert_eq!(parts.len(), 6, "{}", id.name());
        let random_time = {
            let random = parts.iter().find(|p| p.name == "Random").unwrap();
            distgnn_epoch(&graph, &random.partition, PaperParams::middle()).epoch_time()
        };
        for t in &parts {
            let report = distgnn_epoch(&graph, &t.partition, PaperParams::middle());
            assert!(report.epoch_time() > 0.0, "{} on {}", t.name, id.name());
            assert!(report.total_memory() > 0);
            // No partitioner should be drastically worse than random.
            assert!(
                report.epoch_time() < 2.0 * random_time,
                "{} on {}: {} vs random {}",
                t.name,
                id.name(),
                report.epoch_time(),
                random_time
            );
        }
    }
}

#[test]
fn full_distdgl_pipeline_on_every_dataset() {
    for id in DatasetId::ALL {
        let graph = id.generate(GraphScale::Tiny).unwrap();
        let split = VertexSplit::paper_default(graph.num_vertices(), 3).unwrap();
        let parts = timed_vertex_partitions(&graph, 4, 7, &split.train);
        assert_eq!(parts.len(), 6, "{}", id.name());
        for t in &parts {
            let summary = distdgl_epoch(
                &graph,
                &t.partition,
                &split,
                PaperParams::middle(),
                ModelKind::Sage,
                256,
            );
            assert!(summary.epoch_time() > 0.0, "{} on {}", t.name, id.name());
            assert!(summary.total_input_vertices > 0);
            assert!(summary.steps >= 1);
        }
    }
}

#[test]
fn quality_partitioners_beat_random_on_distgnn() {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let parts = timed_edge_partitions(&graph, 8, 7);
    let time = |name: &str| {
        let t = parts.iter().find(|p| p.name == name).unwrap();
        distgnn_epoch(&graph, &t.partition, PaperParams::middle()).epoch_time()
    };
    let random = time("Random");
    assert!(time("HEP-100") < random, "HEP-100 must beat Random");
    assert!(time("HDRF") < random, "HDRF must beat Random");
    assert!(time("DBH") < random, "DBH must beat Random");
}

#[test]
fn rf_ordering_matches_paper() {
    // Paper Figure 2: HEP-100 lowest RF, Random highest, on every graph.
    for id in DatasetId::ALL {
        let graph = id.generate(GraphScale::Tiny).unwrap();
        let parts = timed_edge_partitions(&graph, 8, 7);
        let rf = |name: &str| {
            parts.iter().find(|p| p.name == name).unwrap().partition.replication_factor()
        };
        assert!(rf("HEP-100") < rf("Random"), "{}", id.name());
        assert!(rf("DBH") < rf("Random"), "{}", id.name());
        assert!(rf("HDRF") < rf("Random"), "{}", id.name());
    }
}

#[test]
fn edge_cut_ordering_matches_paper() {
    // Paper Figure 12: every non-random partitioner beats Random; the
    // road network is near-perfectly partitionable.
    let graph = DatasetId::DI.generate(GraphScale::Tiny).unwrap();
    let split = VertexSplit::paper_default(graph.num_vertices(), 3).unwrap();
    let parts = timed_vertex_partitions(&graph, 8, 7, &split.train);
    let cut = |name: &str| {
        parts.iter().find(|p| p.name == name).unwrap().partition.edge_cut_ratio()
    };
    let random = cut("Random");
    for name in ["LDG", "Spinner", "METIS", "ByteGNN", "KaHIP"] {
        assert!(cut(name) < random, "{name}: {} vs {random}", cut(name));
    }
    assert!(cut("KaHIP") < 0.1, "KaHIP on road: {}", cut("KaHIP"));
    assert!(cut("METIS") < 0.1, "METIS on road: {}", cut("METIS"));
}

#[test]
fn replication_factor_drives_traffic_and_memory() {
    // Paper: R² >= 0.98 between RF and network traffic / memory.
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let parts = timed_edge_partitions(&graph, 8, 7);
    let mut rf = Vec::new();
    let mut traffic = Vec::new();
    let mut memory = Vec::new();
    for t in &parts {
        let report = distgnn_epoch(&graph, &t.partition, PaperParams::middle());
        rf.push(t.partition.replication_factor());
        traffic.push(report.counters.total_network_bytes() as f64);
        memory.push(report.total_memory() as f64);
    }
    assert!(r_squared(&rf, &traffic) > 0.95, "traffic R² {}", r_squared(&rf, &traffic));
    assert!(r_squared(&rf, &memory) > 0.95, "memory R² {}", r_squared(&rf, &memory));
}

#[test]
fn oom_detection_under_tight_memory() {
    // With a deliberately tiny memory budget, Random OOMs while HEP-100
    // fits — the paper's DI observation.
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let parts = timed_edge_partitions(&graph, 8, 7);
    let tight = {
        let mut c = ClusterSpec::paper(8);
        // Budget between HEP's and Random's per-machine footprint.
        c.machine.memory_bytes = 6_000_000;
        c
    };
    let report_for = |name: &str| {
        let t = parts.iter().find(|p| p.name == name).unwrap();
        let config = DistGnnConfig::paper(
            PaperParams { feature_size: 512, ..PaperParams::middle() }.model(ModelKind::Sage),
            tight,
        );
        DistGnnEngine::builder(&graph, &t.partition).config(config).build().unwrap().run(&RunSpec::healthy()).unwrap().into_healthy().remove(0)
    };
    assert!(report_for("Random").any_oom(), "Random should exceed the tight budget");
    assert!(!report_for("HEP-100").any_oom(), "HEP-100 should fit the tight budget");
}
