//! Boundary conditions and failure injection across the whole stack.

use gnnpart::core::config::PaperParams;
use gnnpart::core::experiment::{timed_edge_partitions, timed_vertex_partitions};
use gnnpart::prelude::*;

/// A 70-vertex graph with several structural pathologies: isolated
/// vertices, a pendant chain, one hub, and a dense clique.
fn pathological_graph() -> Graph {
    let mut b = GraphBuilder::undirected(70);
    // Clique over 0..10.
    for i in 0..10u32 {
        for j in (i + 1)..10 {
            b.add_edge(i, j);
        }
    }
    // Hub 10 connected to 11..50.
    for v in 11..50u32 {
        b.add_edge(10, v);
    }
    // Pendant chain 50-51-52-53.
    b.add_edge(50, 51);
    b.add_edge(51, 52);
    b.add_edge(52, 53);
    // Vertices 54..69 isolated.
    b.build().unwrap()
}

#[test]
fn all_partitioners_handle_pathological_graphs() {
    let g = pathological_graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    for k in [1u32, 2, 7] {
        for t in timed_edge_partitions(&g, k, 3) {
            let total: u64 = t.partition.edge_counts().iter().sum();
            assert_eq!(total, u64::from(g.num_edges()), "{} k={k}", t.name);
        }
        for t in timed_vertex_partitions(&g, k, 3, &split.train) {
            let total: u64 = t.partition.vertex_counts().iter().sum();
            assert_eq!(total, u64::from(g.num_vertices()), "{} k={k}", t.name);
        }
    }
}

#[test]
fn partitioners_at_k64_boundary() {
    let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    // k = 64 is the bitmask limit; k = 65 must fail cleanly.
    let p64 = Hdrf::default().partition_edges(&g, 64, 1).unwrap();
    assert_eq!(p64.k(), 64);
    assert!(p64.replication_factor() <= 64.0);
    assert!(Hdrf::default().partition_edges(&g, 65, 1).is_err());
    assert!(Metis::default().partition_vertices(&g, 65, 1).is_err());
    let v64 = Metis::default().partition_vertices(&g, 64, 1).unwrap();
    assert_eq!(v64.vertex_counts().len(), 64);
}

#[test]
fn more_partitions_than_edges() {
    // 3 edges into 8 partitions: some partitions stay empty, nothing
    // panics, balance metrics remain finite.
    let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], false).unwrap();
    for name in gnnpart::core::registry::edge_partitioner_names() {
        let p = gnnpart::core::registry::edge_partitioner(name).unwrap();
        let part = p.partition_edges(&g, 8, 1).unwrap();
        let total: u64 = part.edge_counts().iter().sum();
        assert_eq!(total, 3, "{name}");
        assert!(part.edge_balance().is_finite());
    }
}

#[test]
fn engines_handle_degenerate_splits() {
    let g = DatasetId::DI.generate(GraphScale::Tiny).unwrap();
    // A split with zero training vertices: steps still run (empty
    // batches), nothing panics, epoch time is finite.
    let split = VertexSplit::random(g.num_vertices(), 0.0, 0.1, 1).unwrap();
    assert!(split.train.is_empty());
    let part = RandomVertexPartitioner.partition_vertices(&g, 4, 1).unwrap();
    let config = DistDglConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(4),
    );
    let engine = DistDglEngine::builder(&g, &part, &split).config(config).build().unwrap();
    let summary = engine.run(&RunSpec::healthy()).unwrap().into_healthy().remove(0);
    assert!(summary.epoch_time().is_finite());
    assert_eq!(summary.total_input_vertices, 0);
}

#[test]
fn distgnn_single_machine_has_no_traffic() {
    let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let part = Hdrf::default().partition_edges(&g, 1, 1).unwrap();
    let config = DistGnnConfig::paper(PaperParams::middle().model(ModelKind::Sage), ClusterSpec::paper(1));
    let report = DistGnnEngine::builder(&g, &part).config(config).build().unwrap().run(&RunSpec::healthy()).unwrap().into_healthy().remove(0);
    // One machine: no replica sync, no gradient exchange over the wire
    // (the counters record the loopback all-reduce as zero-cost).
    assert_eq!(report.phases.sync, 0.0);
    assert!(report.epoch_time() > 0.0);
}

#[test]
fn single_layer_models_work_end_to_end() {
    let g = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let part = Metis::default().partition_vertices(&g, 4, 1).unwrap();
    let params = PaperParams { num_layers: 1, ..PaperParams::middle() };
    let config = DistDglConfig::paper(params.model(ModelKind::Gcn), ClusterSpec::paper(4));
    let engine = DistDglEngine::builder(&g, &part, &split).config(config).build().unwrap();
    let summary = engine.run(&RunSpec::healthy()).unwrap().into_healthy().remove(0);
    assert!(summary.epoch_time() > 0.0);
}

#[test]
fn directed_graphs_through_both_engines() {
    // EU is directed; both engines must treat message direction
    // correctly without panicking on asymmetric adjacency.
    let g = DatasetId::EU.generate(GraphScale::Tiny).unwrap();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let ep = Hep::hep100().partition_edges(&g, 4, 1).unwrap();
    let config = DistGnnConfig::paper(PaperParams::middle().model(ModelKind::Sage), ClusterSpec::paper(4));
    assert!(DistGnnEngine::builder(&g, &ep).config(config).build().unwrap().run(&RunSpec::healthy()).unwrap().into_healthy().remove(0).epoch_time() > 0.0);

    let vp = Kahip::default().partition_vertices(&g, 4, 1).unwrap();
    let config =
        DistDglConfig::paper(PaperParams::middle().model(ModelKind::Gat), ClusterSpec::paper(4));
    let engine = DistDglEngine::builder(&g, &vp, &split).config(config).build().unwrap();
    assert!(engine.run(&RunSpec::healthy()).unwrap().into_healthy().remove(0).epoch_time() > 0.0);
}

#[test]
fn empty_graph_partitions_and_simulates() {
    let g = Graph::from_edges(10, &[], false).unwrap();
    let part = RandomEdgePartitioner.partition_edges(&g, 4, 1).unwrap();
    assert_eq!(part.replication_factor(), 0.0);
    let config = DistGnnConfig::paper(PaperParams::middle().model(ModelKind::Sage), ClusterSpec::paper(4));
    let report = DistGnnEngine::builder(&g, &part).config(config).build().unwrap().run(&RunSpec::healthy()).unwrap().into_healthy().remove(0);
    // No replica traffic; the only bytes are the gradient all-reduce
    // (the model still synchronises even over an empty graph).
    let param_bytes =
        gnnpart::tensor::flops::model_param_count(&PaperParams::middle().model(ModelKind::Sage))
            * 4;
    assert_eq!(report.counters.total_network_bytes(), 4 * 2 * param_bytes);
}

#[test]
fn oversized_feature_cache_is_harmless() {
    let g = DatasetId::DI.generate(GraphScale::Tiny).unwrap();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let part = Metis::default().partition_vertices(&g, 4, 1).unwrap();
    let mut config = DistDglConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(4),
    );
    // Cache larger than the graph: every remote input hits.
    config.feature_cache_entries = 10 * g.num_vertices();
    let engine = DistDglEngine::builder(&g, &part, &split).config(config).build().unwrap();
    let summary = engine.run(&RunSpec::healthy()).unwrap().into_healthy().remove(0);
    assert_eq!(summary.cache_hits, summary.total_remote_vertices);
}
