//! The paper's headline findings, asserted as executable invariants
//! (tiny scale; EXPERIMENTS.md records the Small-scale numbers).

use gnnpart::core::config::PaperParams;
use gnnpart::core::experiment::{
    distdgl_epoch, timed_edge_partitions, timed_vertex_partitions,
};
use gnnpart::core::sweep::{distdgl_grid, distgnn_grid};
use gnnpart::prelude::*;

/// RQ-1 / Lesson 1: graph partitioning speeds up full-batch GNN training,
/// and the effectiveness increases with the scale-out factor.
#[test]
fn distgnn_speedup_grows_with_scaleout() {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let grid = [PaperParams::middle()];
    let speedup_at = |k: u32| {
        let parts = timed_edge_partitions(&graph, k, 7);
        distgnn_grid(&graph, &parts, &grid)
            .into_iter()
            .find(|o| o.name == "HEP-100")
            .unwrap()
            .speedups[0]
    };
    let s4 = speedup_at(4);
    let s8 = speedup_at(8);
    assert!(s4 > 1.2, "HEP-100 speedup at k=4: {s4}");
    assert!(s8 > s4, "speedup should grow with k: {s4} -> {s8}");
}

/// RQ-1 / Lesson 2: partitioning reduces the memory footprint, and the
/// replication factor determines it.
#[test]
fn distgnn_memory_shrinks_with_rf() {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let parts = timed_edge_partitions(&graph, 8, 7);
    let grid = [PaperParams::middle()];
    let outcomes = distgnn_grid(&graph, &parts, &grid);
    let get = |n: &str| outcomes.iter().find(|o| o.name == n).unwrap().memory_pct[0];
    assert!(get("HEP-100") < 70.0, "HEP-100 memory {}% of Random", get("HEP-100"));
    assert!(get("HEP-100") < get("DBH"));
}

/// RQ-3: larger feature sizes make partitioning more effective for
/// mini-batch training (paper Figure 18).
#[test]
fn distdgl_feature_size_increases_effectiveness() {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let split = VertexSplit::paper_default(graph.num_vertices(), 1).unwrap();
    let parts = timed_vertex_partitions(&graph, 4, 7, &split.train);
    let grid = [
        PaperParams { feature_size: 16, ..PaperParams::middle() },
        PaperParams { feature_size: 512, ..PaperParams::middle() },
    ];
    let outcomes = distdgl_grid(&graph, &split, &parts, &grid, ModelKind::Sage, 256);
    let best = outcomes
        .iter()
        .filter(|o| o.name != "Random")
        .max_by(|a, b| a.mean_speedup().partial_cmp(&b.mean_speedup()).unwrap())
        .unwrap();
    assert!(
        best.speedups[1] > best.speedups[0],
        "{}: f=16 {} vs f=512 {}",
        best.name,
        best.speedups[0],
        best.speedups[1]
    );
}

/// RQ-3: larger hidden dimensions make partitioning LESS effective for
/// mini-batch training (compute dominates; paper Figure 20).
#[test]
fn distdgl_hidden_dim_decreases_effectiveness() {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let split = VertexSplit::paper_default(graph.num_vertices(), 1).unwrap();
    let parts = timed_vertex_partitions(&graph, 4, 7, &split.train);
    let grid = [
        PaperParams { hidden_dim: 16, ..PaperParams::middle() },
        PaperParams { hidden_dim: 512, ..PaperParams::middle() },
    ];
    let outcomes = distdgl_grid(&graph, &split, &parts, &grid, ModelKind::Sage, 256);
    // Averaged over the quality partitioners to damp sampling noise.
    let (mut lo, mut hi, mut count) = (0.0, 0.0, 0);
    for o in outcomes.iter().filter(|o| o.name != "Random") {
        lo += o.speedups[0];
        hi += o.speedups[1];
        count += 1;
    }
    assert!(
        hi / f64::from(count) < lo / f64::from(count),
        "h=16 mean {} vs h=512 mean {}",
        lo / f64::from(count),
        hi / f64::from(count)
    );
}

/// Section 5.2: lower edge-cut does not always mean less communication —
/// remote vertices predict traffic better.
#[test]
fn remote_vertices_track_traffic() {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let split = VertexSplit::paper_default(graph.num_vertices(), 1).unwrap();
    let parts = timed_vertex_partitions(&graph, 4, 7, &split.train);
    let mut remote = Vec::new();
    let mut traffic = Vec::new();
    for t in &parts {
        let s = distdgl_epoch(&graph, &t.partition, &split, PaperParams::middle(), ModelKind::Sage, 256);
        remote.push(s.total_remote_vertices as f64);
        traffic.push(s.counters.total_network_bytes() as f64);
    }
    assert!(
        r_squared(&remote, &traffic) > 0.9,
        "remote vertices vs traffic R² = {}",
        r_squared(&remote, &traffic)
    );
}

/// Section 5.4: with large features, bigger batches reduce traffic
/// relative to Random (overlap grows within a batch).
#[test]
fn larger_batches_reduce_relative_traffic() {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let split = VertexSplit::paper_default(graph.num_vertices(), 1).unwrap();
    let parts = timed_vertex_partitions(&graph, 4, 7, &split.train);
    let grid = [PaperParams { feature_size: 512, ..PaperParams::middle() }];
    let traffic_at = |gbs: u32| {
        distdgl_grid(&graph, &split, &parts, &grid, ModelKind::Sage, gbs)
            .into_iter()
            .filter(|o| o.name == "METIS" || o.name == "KaHIP")
            .map(|o| o.traffic_pct[0])
            .sum::<f64>()
            / 2.0
    };
    let small = traffic_at(32);
    let large = traffic_at(512);
    assert!(large < small + 1.0, "traffic pct should not grow: {small} -> {large}");
}

/// GAT is more compute-intensive than GraphSAGE (paper Figure 25).
#[test]
fn gat_heavier_than_sage() {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let split = VertexSplit::paper_default(graph.num_vertices(), 1).unwrap();
    let partition = Metis::default().partition_vertices(&graph, 4, 1).unwrap();
    let sage =
        distdgl_epoch(&graph, &partition, &split, PaperParams::middle(), ModelKind::Sage, 256);
    let gat =
        distdgl_epoch(&graph, &partition, &split, PaperParams::middle(), ModelKind::Gat, 256);
    assert!(gat.phases.forward > sage.phases.forward);
    // Sampling and feature loading are architecture-independent.
    assert!((gat.phases.sampling - sage.phases.sampling).abs() < 1e-9);
    assert!((gat.phases.feature_load - sage.phases.feature_load).abs() < 1e-9);
}
