//! Profiling-transparency conformance: turning the `gp-prof` scoped
//! timers and memory accounting ON must not change a single bit of any
//! simulation output. The profiler observes the host (wall clock,
//! allocator); the engines compute over seeded integers and modeled
//! floats — by construction nothing in the simulation ever reads a
//! profiler counter, and this suite pins that invariant on **every**
//! `RunSpec` path × both engines: profiled and unprofiled outcomes are
//! compared as full `Debug` renderings (shortest round-tripping
//! decimals, so string equality is bit equality of every float).

use gnnpart::cluster::{
    CheckpointConfig, ChurnPlan, ClusterSpec, ElasticOptions, FaultPlan, FaultSpec,
    MitigationPolicy, NetFaultPlan, NetRunOptions, RunSpec,
};
use gnnpart::core::chaos::chaos_churn_spec;
use gnnpart::core::config::PaperParams;
use gnnpart::core::netchaos::netchaos_net_spec;
use gnnpart::prelude::*;
use gnnpart::prof;
use std::sync::Mutex;

/// The enable flags and profile registry are process-global; run the
/// suite's tests one at a time so one test's `take_profile` cannot
/// drain another's scopes mid-assertion.
static PROF_GUARD: Mutex<()> = Mutex::new(());

fn graph() -> Graph {
    DatasetId::OR.generate(GraphScale::Tiny).unwrap()
}

/// All five legs of the unified simulate API, keyed by name so a
/// failure says which scenario the profiler perturbed.
fn conformance_specs(machines: u32, epochs: u32, seed: u64) -> Vec<(&'static str, RunSpec)> {
    let faults = FaultPlan::generate(&FaultSpec::standard(machines, epochs, 3.0, seed));
    let churn = ChurnPlan::generate(&chaos_churn_spec(machines, epochs, seed));
    let ckpt = CheckpointConfig::periodic(2);
    let net = NetFaultPlan::generate(&netchaos_net_spec(machines, epochs, seed));
    let elastic = RunSpec::healthy().epochs(epochs).faults(faults.clone()).elastic(
        churn,
        ckpt,
        ElasticOptions::default(),
    );
    vec![
        ("healthy", RunSpec::healthy().epochs(epochs)),
        ("faulty", RunSpec::healthy().epochs(epochs).faults(faults.clone())),
        (
            "mitigated",
            RunSpec::healthy().epochs(epochs).faults(faults).mitigate(MitigationPolicy::all()),
        ),
        ("elastic", elastic.clone()),
        ("partitioned", elastic.net(net, NetRunOptions::default())),
    ]
}

fn distgnn_outcome(g: &Graph, p: &EdgePartition, spec: &RunSpec, threads: Threads) -> String {
    let config = DistGnnConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(p.k()),
    );
    let result = DistGnnEngine::builder(g, p)
        .config(config)
        .threads(threads)
        .build()
        .expect("valid config")
        .run(spec);
    format!("{result:?}")
}

fn distdgl_outcome(
    g: &Graph,
    p: &VertexPartition,
    split: &VertexSplit,
    spec: &RunSpec,
    threads: Threads,
) -> String {
    let mut config = DistDglConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(p.k()),
    );
    config.global_batch_size = 256;
    let result = DistDglEngine::builder(g, p, split)
        .config(config)
        .threads(threads)
        .build()
        .expect("valid config")
        .run(spec);
    format!("{result:?}")
}

/// Run `f` once with profiling fully off and once fully on (timers +
/// memory accounting), returning both outcomes. The enable flags are
/// process-global, so the whole comparison runs under one lock to keep
/// concurrent test binaries from interleaving enable states; the
/// profile accumulated during the ON leg is drained and sanity-checked
/// non-empty by the caller where asserted.
fn off_and_on<T>(f: impl Fn() -> T) -> (T, T) {
    let off = {
        prof::set_enabled(false);
        prof::set_mem_enabled(false);
        f()
    };
    let on = {
        prof::set_enabled(true);
        prof::set_mem_enabled(true);
        let v = f();
        prof::set_enabled(false);
        prof::set_mem_enabled(false);
        v
    };
    (off, on)
}

#[test]
fn distgnn_outputs_are_byte_identical_with_profiling_on_every_runspec_path() {
    let _guard = PROF_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let g = graph();
    let partition = Hdrf::default().partition_edges(&g, 4, 1).unwrap();
    for (name, spec) in conformance_specs(4, 6, 7) {
        for threads in [Threads::serial(), Threads::new(4)] {
            let (off, on) = off_and_on(|| distgnn_outcome(&g, &partition, &spec, threads));
            assert_eq!(off, on, "{name}: profiling must be observational (distgnn)");
        }
    }
    // The ON legs really profiled: scopes reached the registry.
    prof::set_enabled(true);
    let _ = distgnn_outcome(&g, &partition, &RunSpec::healthy(), Threads::serial());
    prof::set_enabled(false);
    let profile = prof::take_profile();
    assert!(
        profile.structure().contains("distgnn.epoch"),
        "expected distgnn scopes, got {}",
        profile.structure()
    );
}

#[test]
fn distdgl_outputs_are_byte_identical_with_profiling_on_every_runspec_path() {
    let _guard = PROF_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let partition = Metis::default().partition_vertices(&g, 4, 1).unwrap();
    for (name, spec) in conformance_specs(4, 6, 7) {
        for threads in [Threads::serial(), Threads::new(4)] {
            let (off, on) =
                off_and_on(|| distdgl_outcome(&g, &partition, &split, &spec, threads));
            assert_eq!(off, on, "{name}: profiling must be observational (distdgl)");
        }
    }
    prof::set_enabled(true);
    let _ = distdgl_outcome(&g, &partition, &split, &RunSpec::healthy(), Threads::serial());
    prof::set_enabled(false);
    let profile = prof::take_profile();
    assert!(
        profile.structure().contains("distdgl.epoch"),
        "expected distdgl scopes, got {}",
        profile.structure()
    );
}

#[test]
fn partitioners_are_byte_identical_with_profiling() {
    let _guard = PROF_GUARD.lock().unwrap_or_else(|e| e.into_inner());
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let (off_e, on_e) = off_and_on(|| {
        timed_edge_partitions(&g, 4, 7)
            .into_iter()
            .map(|t| (t.name, t.partition))
            .collect::<Vec<_>>()
    });
    assert_eq!(off_e, on_e, "edge partitions must not see the profiler");
    let (off_v, on_v) = off_and_on(|| {
        timed_vertex_partitions(&g, 4, 7, &split.train)
            .into_iter()
            .map(|t| (t.name, t.partition))
            .collect::<Vec<_>>()
    });
    assert_eq!(off_v, on_v, "vertex partitions must not see the profiler");
}
