//! Cross-thread-count conformance: every sweep front end must produce
//! **bit-identical** output (`f64 ==`, byte-equal CSVs) no matter how
//! many workers the `gp-exec` pool runs — `--threads 1` is the old
//! serial path and serves as the reference oracle. Each suite also
//! re-runs one parallel width to catch run-to-run nondeterminism
//! (racy accumulation, HashMap iteration, ...).
//!
//! Wall-clock fields (`TimedEdgePartition::seconds`, pool timing) are
//! the one sanctioned exception: they measure the host machine, not the
//! simulation, and are excluded from every comparison here.

use gnnpart::cluster::MitigationPolicy;
use gnnpart::core::chaos::chaos_churn_spec;
use gnnpart::core::config::PaperParams;
use gnnpart::core::netchaos::netchaos_net_spec;
use gnnpart::core::trace_run::{distdgl_trace_runs, distgnn_trace_runs};
use gnnpart::prelude::*;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn graph() -> Graph {
    DatasetId::OR.generate(GraphScale::Tiny).unwrap()
}

fn small_grid() -> Vec<PaperParams> {
    vec![
        PaperParams { feature_size: 16, hidden_dim: 16, num_layers: 2 },
        PaperParams { feature_size: 32, hidden_dim: 16, num_layers: 3 },
    ]
}

#[test]
fn timed_partitions_agree_across_thread_counts() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let serial_e = timed_edge_partitions(&g, 4, 7);
    let serial_v = timed_vertex_partitions(&g, 4, 7, &split.train);
    for threads in THREAD_COUNTS {
        let par_e = timed_edge_partitions_threaded(&g, 4, 7, Threads::new(threads));
        let par_v =
            timed_vertex_partitions_threaded(&g, 4, 7, &split.train, Threads::new(threads));
        assert_eq!(par_e.len(), serial_e.len());
        for (p, s) in par_e.iter().zip(serial_e.iter()) {
            assert_eq!(p.name, s.name, "threads = {threads}: registry order preserved");
            assert_eq!(p.partition, s.partition, "threads = {threads}: {}", s.name);
        }
        for (p, s) in par_v.iter().zip(serial_v.iter()) {
            assert_eq!(p.name, s.name, "threads = {threads}: registry order preserved");
            assert_eq!(p.partition, s.partition, "threads = {threads}: {}", s.name);
        }
    }
}

#[test]
fn distgnn_grid_is_bit_identical_across_thread_counts() {
    let g = graph();
    let timed = timed_edge_partitions(&g, 4, 1);
    let grid = small_grid();
    let serial = distgnn_grid(&g, &timed, &grid);
    for threads in THREAD_COUNTS {
        let par = distgnn_grid_threaded(&g, &timed, &grid, Threads::new(threads));
        assert_eq!(par, serial, "threads = {threads}");
    }
    // Run-to-run stability at a fixed parallel width.
    let a = distgnn_grid_threaded(&g, &timed, &grid, Threads::new(4));
    let b = distgnn_grid_threaded(&g, &timed, &grid, Threads::new(4));
    assert_eq!(a, b, "repeated 4-thread runs");
}

#[test]
fn distdgl_grid_is_bit_identical_across_thread_counts() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let timed = timed_vertex_partitions(&g, 4, 1, &split.train);
    let grid = small_grid();
    let serial = distdgl_grid(&g, &split, &timed, &grid, ModelKind::Sage, 256);
    for threads in THREAD_COUNTS {
        let par = distdgl_grid_threaded(
            &g,
            &split,
            &timed,
            &grid,
            ModelKind::Sage,
            256,
            Threads::new(threads),
        );
        assert_eq!(par, serial, "threads = {threads}");
    }
    let a = distdgl_grid_threaded(&g, &split, &timed, &grid, ModelKind::Sage, 256, Threads::new(4));
    let b = distdgl_grid_threaded(&g, &split, &timed, &grid, ModelKind::Sage, 256, Threads::new(4));
    assert_eq!(a, b, "repeated 4-thread runs");
}

#[test]
fn fault_sweeps_are_bit_identical_across_thread_counts() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let timed_e = timed_edge_partitions(&g, 4, 1);
    let timed_v = timed_vertex_partitions(&g, 4, 1, &split.train);
    let params = PaperParams::middle();
    let mtbfs = [2.0, 5.0];

    let serial_e = distgnn_fault_sweep(&g, &timed_e, params, 4, &mtbfs, 2, 0xfa11);
    let serial_v = distdgl_fault_sweep(
        &g, &split, &timed_v, params, ModelKind::Sage, 256, 4, &mtbfs, 0xfa11,
    );
    for threads in THREAD_COUNTS {
        let par_e = distgnn_fault_sweep_threaded(
            &g, &timed_e, params, 4, &mtbfs, 2, 0xfa11,
            Threads::new(threads),
        );
        assert_eq!(par_e, serial_e, "distgnn threads = {threads}");
        let par_v = distdgl_fault_sweep_threaded(
            &g, &split, &timed_v, params, ModelKind::Sage, 256, 4, &mtbfs, 0xfa11,
            Threads::new(threads),
        );
        assert_eq!(par_v, serial_v, "distdgl threads = {threads}");
    }
    // The emitted CSV artifact is byte-identical too, not just f64-equal.
    let par_e =
        distgnn_fault_sweep_threaded(&g, &timed_e, params, 4, &mtbfs, 2, 0xfa11, Threads::new(4));
    assert_eq!(
        fault_sweep_table("conformance", &par_e).to_csv(),
        fault_sweep_table("conformance", &serial_e).to_csv(),
        "CSV bytes"
    );
}

#[test]
fn mitigation_sweeps_are_bit_identical_across_thread_counts() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let timed_e = timed_edge_partitions(&g, 4, 1);
    let timed_v = timed_vertex_partitions(&g, 4, 1, &split.train);
    let params = PaperParams::middle();
    let spec = mitigation_stress_spec(4, 4, 0x517a11);

    let serial_e =
        distgnn_mitigation_sweep(&g, &timed_e, params, &spec, 2, MitigationPolicy::adaptive());
    let serial_v = distdgl_mitigation_sweep(
        &g, &split, &timed_v, params, ModelKind::Sage, 256, &spec,
        MitigationPolicy::all(),
    );
    for threads in THREAD_COUNTS {
        let par_e = distgnn_mitigation_sweep_threaded(
            &g, &timed_e, params, &spec, 2, MitigationPolicy::adaptive(),
            Threads::new(threads),
        );
        assert_eq!(par_e, serial_e, "distgnn threads = {threads}");
        let par_v = distdgl_mitigation_sweep_threaded(
            &g, &split, &timed_v, params, ModelKind::Sage, 256, &spec,
            MitigationPolicy::all(),
            Threads::new(threads),
        );
        assert_eq!(par_v, serial_v, "distdgl threads = {threads}");
    }
    let par_e = distgnn_mitigation_sweep_threaded(
        &g, &timed_e, params, &spec, 2, MitigationPolicy::adaptive(), Threads::new(4),
    );
    assert_eq!(
        mitigation_sweep_table("conformance", &par_e).to_csv(),
        mitigation_sweep_table("conformance", &serial_e).to_csv(),
        "CSV bytes"
    );
}

#[test]
fn chaos_soaks_are_bit_identical_across_thread_counts() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let timed_e = timed_edge_partitions(&g, 4, 1);
    let timed_v = timed_vertex_partitions(&g, 4, 1, &split.train);
    let params = PaperParams::middle();

    let serial_e = distgnn_chaos_soak(&g, &timed_e, params, 8, 5.0, 2, 0xc4a05);
    let serial_v =
        distdgl_chaos_soak(&g, &split, &timed_v, params, ModelKind::Sage, 256, 6, 5.0, 2, 0xc4a05);
    for threads in THREAD_COUNTS {
        let par_e = distgnn_chaos_soak_threaded(
            &g, &timed_e, params, 8, 5.0, 2, 0xc4a05,
            Threads::new(threads),
        );
        assert_eq!(par_e, serial_e, "distgnn threads = {threads}");
        let par_v = distdgl_chaos_soak_threaded(
            &g, &split, &timed_v, params, ModelKind::Sage, 256, 6, 5.0, 2, 0xc4a05,
            Threads::new(threads),
        );
        assert_eq!(par_v, serial_v, "distdgl threads = {threads}");
    }
    // Both exported artifacts are byte-identical, not just f64-equal.
    let par_e =
        distgnn_chaos_soak_threaded(&g, &timed_e, params, 8, 5.0, 2, 0xc4a05, Threads::new(4));
    let par_v = distdgl_chaos_soak_threaded(
        &g, &split, &timed_v, params, ModelKind::Sage, 256, 6, 5.0, 2, 0xc4a05,
        Threads::new(4),
    );
    assert_eq!(
        chaos_table("conformance", &par_e).to_csv(),
        chaos_table("conformance", &serial_e).to_csv(),
        "CSV bytes"
    );
    assert_eq!(
        chaos_bench_json(&par_e, &par_v),
        chaos_bench_json(&serial_e, &serial_v),
        "bench JSON bytes"
    );
}

#[test]
fn netchaos_soaks_are_bit_identical_across_thread_counts() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let timed_e = timed_edge_partitions(&g, 4, 1);
    let timed_v = timed_vertex_partitions(&g, 4, 1, &split.train);
    let params = PaperParams::middle();

    // Seed 7 arms real partition windows at this scale, so the
    // conformance check covers the degraded-mode epochs too — not just
    // the window-free transport-noise path.
    let serial_e = distgnn_netchaos_soak(&g, &timed_e, params, 8, 5.0, 2, 7);
    let serial_v =
        distdgl_netchaos_soak(&g, &split, &timed_v, params, ModelKind::Sage, 256, 6, 5.0, 2, 7);
    assert!(
        serial_e.iter().chain(&serial_v).any(|r| r.windows > 0),
        "at least one cell arms a partition window"
    );
    for threads in THREAD_COUNTS {
        let par_e = distgnn_netchaos_soak_threaded(
            &g, &timed_e, params, 8, 5.0, 2, 7,
            Threads::new(threads),
        );
        assert_eq!(par_e, serial_e, "distgnn threads = {threads}");
        let par_v = distdgl_netchaos_soak_threaded(
            &g, &split, &timed_v, params, ModelKind::Sage, 256, 6, 5.0, 2, 7,
            Threads::new(threads),
        );
        assert_eq!(par_v, serial_v, "distdgl threads = {threads}");
    }
    // Both exported artifacts are byte-identical, not just f64-equal.
    let par_e =
        distgnn_netchaos_soak_threaded(&g, &timed_e, params, 8, 5.0, 2, 7, Threads::new(4));
    let par_v = distdgl_netchaos_soak_threaded(
        &g, &split, &timed_v, params, ModelKind::Sage, 256, 6, 5.0, 2, 7,
        Threads::new(4),
    );
    assert_eq!(
        netchaos_table("conformance", &par_e).to_csv(),
        netchaos_table("conformance", &serial_e).to_csv(),
        "CSV bytes"
    );
    assert_eq!(
        netchaos_bench_json(&par_e, &par_v),
        netchaos_bench_json(&serial_e, &serial_v),
        "bench JSON bytes"
    );
}

#[test]
fn stream_sweeps_are_bit_identical_across_thread_counts() {
    use gnnpart::graph::StreamSpec;

    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let params = PaperParams::middle();
    let spec = StreamSpec::paper_default(5, 0xd21f7);
    let policies = stream_policies();
    let names_e = ["Random", "HDRF"];
    let names_v = ["Random", "LDG"];

    let serial_e = distgnn_stream_sweep(&g, &names_e, 4, params, &spec, &policies, 1);
    let serial_v = distdgl_stream_sweep(
        &g, &split, &names_v, 4, params, ModelKind::Sage, 256, &spec, &policies, 1,
    );
    for r in serial_e.iter().chain(&serial_v) {
        assert!(r.holds(), "{}/{}: stream contract", r.name, r.policy);
    }
    for threads in THREAD_COUNTS {
        let par_e = distgnn_stream_sweep_threaded(
            &g, &names_e, 4, params, &spec, &policies, 1,
            Threads::new(threads),
        );
        assert_eq!(par_e, serial_e, "distgnn threads = {threads}");
        let par_v = distdgl_stream_sweep_threaded(
            &g, &split, &names_v, 4, params, ModelKind::Sage, 256, &spec, &policies, 1,
            Threads::new(threads),
        );
        assert_eq!(par_v, serial_v, "distdgl threads = {threads}");
    }
    // Nested pools (4-wide sweep x 4-wide engines) still match, and
    // both exported artifacts are byte-identical, not just f64-equal.
    let nested = Parallelism::new(Threads::new(4), Threads::new(4));
    let par_e = distgnn_stream_sweep_threaded(&g, &names_e, 4, params, &spec, &policies, 1, nested);
    let par_v = distdgl_stream_sweep_threaded(
        &g, &split, &names_v, 4, params, ModelKind::Sage, 256, &spec, &policies, 1, nested,
    );
    assert_eq!(
        stream_table("conformance", &par_e).to_csv(),
        stream_table("conformance", &serial_e).to_csv(),
        "CSV bytes"
    );
    assert_eq!(
        stream_bench_json(&par_e, &par_v),
        stream_bench_json(&serial_e, &serial_v),
        "bench JSON bytes"
    );
}

#[test]
fn trace_runs_are_bit_identical_across_thread_counts() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let timed_e = timed_edge_partitions(&g, 4, 1);
    let timed_v = timed_vertex_partitions(&g, 4, 1, &split.train);
    let gnn_config = DistGnnConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(4),
    );
    let mut dgl_config = DistDglConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(4),
    );
    dgl_config.global_batch_size = 256;

    let (serial_e, timing) =
        distgnn_trace_runs(&g, &timed_e, gnn_config, 2, None, false, Threads::serial()).unwrap();
    assert_eq!(timing.threads, 1, "serial oracle runs one worker");
    let (serial_v, _) = distdgl_trace_runs(
        &g, &split, &timed_v, dgl_config.clone(), 2, None, false,
        Threads::serial(),
    )
    .unwrap();
    for threads in THREAD_COUNTS {
        let (par_e, _) = distgnn_trace_runs(
            &g, &timed_e, gnn_config, 2, None, false,
            Threads::new(threads),
        )
        .unwrap();
        for ((pn, ps), (sn, ss)) in par_e.iter().zip(serial_e.iter()) {
            assert_eq!(pn, sn, "threads = {threads}: partitioner order");
            assert_eq!(ps.spans(), ss.spans(), "threads = {threads}: {pn} spans");
            assert_eq!(ps.phase_csv(), ss.phase_csv(), "threads = {threads}: {pn} CSV bytes");
            assert_eq!(
                ps.to_chrome_json(),
                ss.to_chrome_json(),
                "threads = {threads}: {pn} chrome JSON bytes"
            );
        }
        let (par_v, _) = distdgl_trace_runs(
            &g, &split, &timed_v, dgl_config.clone(), 2, None, false,
            Threads::new(threads),
        )
        .unwrap();
        for ((pn, ps), (sn, ss)) in par_v.iter().zip(serial_v.iter()) {
            assert_eq!(pn, sn, "threads = {threads}: partitioner order");
            assert_eq!(ps.spans(), ss.spans(), "threads = {threads}: {pn} spans");
            assert_eq!(ps.phase_csv(), ss.phase_csv(), "threads = {threads}: {pn} CSV bytes");
        }
    }
}

#[test]
fn diagnose_artifacts_are_byte_identical_across_thread_counts() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let timed_e = timed_edge_partitions(&g, 4, 1);
    let timed_v = timed_vertex_partitions(&g, 4, 1, &split.train);
    let gnn_config = DistGnnConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(4),
    );
    let mut dgl_config = DistDglConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(4),
    );
    dgl_config.global_batch_size = 256;

    let (serial_e, timing) = diagnose_distgnn_runs(
        &g, &timed_e, gnn_config, 2, None, MitigationPolicy::none(),
        Threads::serial(),
    )
    .unwrap();
    assert_eq!(timing.threads, 1, "serial oracle runs one worker");
    let (serial_v, _) = diagnose_distdgl_runs(
        &g, &split, &timed_v, dgl_config.clone(), 2, None, MitigationPolicy::none(),
        Threads::serial(),
    )
    .unwrap();
    // Every artifact the diagnose layer exports, as bytes.
    let artifacts = |e: &[RunDiagnosis], v: &[RunDiagnosis]| -> Vec<String> {
        vec![
            diagnose_report("distgnn", e),
            diagnose_report("distdgl", v),
            diagnose_prometheus(e),
            diagnose_prometheus(v),
            skew_table("conformance_skew", e).to_csv(),
            skew_table("conformance_skew", v).to_csv(),
            summary_table("conformance_summary", e).to_csv(),
            summary_table("conformance_summary", v).to_csv(),
            bench_json(e),
            bench_json(v),
        ]
    };
    let oracle = artifacts(&serial_e, &serial_v);
    for threads in THREAD_COUNTS {
        let (par_e, _) = diagnose_distgnn_runs(
            &g, &timed_e, gnn_config, 2, None, MitigationPolicy::none(),
            Threads::new(threads),
        )
        .unwrap();
        let (par_v, _) = diagnose_distdgl_runs(
            &g, &split, &timed_v, dgl_config.clone(), 2, None, MitigationPolicy::none(),
            Threads::new(threads),
        )
        .unwrap();
        assert_eq!(artifacts(&par_e, &par_v), oracle, "threads = {threads}");
    }
    // Run-to-run stability at a fixed parallel width.
    let (a_e, _) = diagnose_distgnn_runs(
        &g, &timed_e, gnn_config, 2, None, MitigationPolicy::none(), Threads::new(4),
    )
    .unwrap();
    let (a_v, _) = diagnose_distdgl_runs(
        &g, &split, &timed_v, dgl_config, 2, None, MitigationPolicy::none(), Threads::new(4),
    )
    .unwrap();
    assert_eq!(artifacts(&a_e, &a_v), oracle, "repeated 4-thread runs");
}

#[test]
fn merged_metric_snapshots_are_associative_and_order_insensitive() {
    use gnnpart::cluster::faults::DetRng;
    use gnnpart::cluster::MetricsSnapshot;

    let g = graph();
    let timed = timed_edge_partitions(&g, 4, 1);
    let config = DistGnnConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(4),
    );
    let (serial, _) = diagnose_distgnn_runs(
        &g, &timed, config, 2, None, MitigationPolicy::none(), Threads::serial(),
    )
    .unwrap();
    let oracle = merged_snapshot(&serial);
    let mut rng = DetRng::new(0xd1a6);
    for threads in [1usize, 2, 4, 8] {
        let (runs, _) = diagnose_distgnn_runs(
            &g, &timed, config, 2, None, MitigationPolicy::none(), Threads::new(threads),
        )
        .unwrap();
        let snaps: Vec<MetricsSnapshot> =
            runs.iter().map(|r| r.snapshot.clone()).collect();
        // Order insensitivity: random permutations all merge to the oracle.
        for _ in 0..5 {
            let mut order: Vec<usize> = (0..snaps.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.below(i as u64 + 1) as usize);
            }
            let mut merged = MetricsSnapshot::default();
            for &i in &order {
                merged.merge(&snaps[i]);
            }
            assert_eq!(merged, oracle, "threads = {threads}, order = {order:?}");
        }
        // Associativity: left fold == right fold == split-in-half.
        let mut right = MetricsSnapshot::default();
        for s in snaps.iter().rev() {
            let mut acc = s.clone();
            acc.merge(&right);
            right = acc;
        }
        assert_eq!(right, oracle, "threads = {threads}: right fold");
        let mid = snaps.len() / 2;
        let mut left = MetricsSnapshot::default();
        for s in &snaps[..mid] {
            left.merge(s);
        }
        let mut tail = MetricsSnapshot::default();
        for s in &snaps[mid..] {
            tail.merge(s);
        }
        left.merge(&tail);
        assert_eq!(left, oracle, "threads = {threads}: split grouping");
        // Identity: merging the empty snapshot changes nothing.
        let mut with_empty = oracle.clone();
        with_empty.merge(&MetricsSnapshot::default());
        assert_eq!(with_empty, oracle, "threads = {threads}: identity");
        // The Prometheus rendering of equal snapshots is byte-equal.
        assert_eq!(right.to_prometheus(), oracle.to_prometheus(), "threads = {threads}");
    }
}

/// Every `RunSpec` path a conformance run must cover, keyed by name so
/// failures say which scenario diverged. All five legs of the unified
/// simulate API: healthy, faulty, mitigated, elastic, partitioned.
fn conformance_specs(machines: u32, epochs: u32, seed: u64) -> Vec<(&'static str, RunSpec)> {
    let faults = FaultPlan::generate(&FaultSpec::standard(machines, epochs, 3.0, seed));
    let churn = ChurnPlan::generate(&chaos_churn_spec(machines, epochs, seed));
    let ckpt = CheckpointConfig::periodic(2);
    let net = NetFaultPlan::generate(&netchaos_net_spec(machines, epochs, seed));
    let elastic = RunSpec::healthy().epochs(epochs).faults(faults.clone()).elastic(
        churn,
        ckpt,
        ElasticOptions::default(),
    );
    vec![
        ("healthy", RunSpec::healthy().epochs(epochs)),
        ("faulty", RunSpec::healthy().epochs(epochs).faults(faults.clone())),
        (
            "mitigated",
            RunSpec::healthy().epochs(epochs).faults(faults).mitigate(MitigationPolicy::all()),
        ),
        ("elastic", elastic.clone()),
        ("partitioned", elastic.net(net, NetRunOptions::default())),
    ]
}

/// Run one spec on a DistGNN engine at the given intra-epoch width and
/// render the full outcome — every epoch report, recovery account,
/// mitigation tally and error — as its `Debug` form. Rust's `Debug` for
/// `f64` prints the shortest round-tripping decimal, so string equality
/// here is bit equality of every float in the report.
fn distgnn_outcome(g: &Graph, p: &EdgePartition, spec: &RunSpec, threads: Threads) -> String {
    let config = DistGnnConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(p.k()),
    );
    let result = DistGnnEngine::builder(g, p)
        .config(config)
        .threads(threads)
        .build()
        .expect("valid config")
        .run(spec);
    format!("{result:?}")
}

/// DistDGL twin of [`distgnn_outcome`].
fn distdgl_outcome(
    g: &Graph,
    p: &VertexPartition,
    split: &VertexSplit,
    spec: &RunSpec,
    threads: Threads,
) -> String {
    let mut config = DistDglConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(p.k()),
    );
    config.global_batch_size = 256;
    let result = DistDglEngine::builder(g, p, split)
        .config(config)
        .threads(threads)
        .build()
        .expect("valid config")
        .run(spec);
    format!("{result:?}")
}

#[test]
fn distgnn_engine_widths_are_bit_identical_on_every_runspec_path() {
    let g = graph();
    let partition = Hdrf::default().partition_edges(&g, 4, 1).unwrap();
    for (name, spec) in conformance_specs(4, 6, 7) {
        let serial = distgnn_outcome(&g, &partition, &spec, Threads::serial());
        for threads in THREAD_COUNTS {
            let par = distgnn_outcome(&g, &partition, &spec, Threads::new(threads));
            assert_eq!(par, serial, "{name}: engine threads = {threads}");
        }
        // Run-to-run stability at a fixed parallel width.
        let a = distgnn_outcome(&g, &partition, &spec, Threads::new(4));
        let b = distgnn_outcome(&g, &partition, &spec, Threads::new(4));
        assert_eq!(a, b, "{name}: repeated 4-thread runs");
    }
}

#[test]
fn distdgl_engine_widths_are_bit_identical_on_every_runspec_path() {
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let partition = Metis::default().partition_vertices(&g, 4, 1).unwrap();
    for (name, spec) in conformance_specs(4, 6, 7) {
        let serial = distdgl_outcome(&g, &partition, &split, &spec, Threads::serial());
        for threads in THREAD_COUNTS {
            let par = distdgl_outcome(&g, &partition, &split, &spec, Threads::new(threads));
            assert_eq!(par, serial, "{name}: engine threads = {threads}");
        }
        let a = distdgl_outcome(&g, &partition, &split, &spec, Threads::new(4));
        let b = distdgl_outcome(&g, &partition, &split, &spec, Threads::new(4));
        assert_eq!(a, b, "{name}: repeated 4-thread runs");
    }
}

#[test]
fn nested_sweep_and_engine_pools_match_the_serial_oracle() {
    // The two pool levels compose: a 4-wide sweep whose every cell runs
    // a 4-wide intra-epoch engine must still equal the fully-serial
    // oracle, grid and soak alike.
    let g = graph();
    let split = VertexSplit::paper_default(g.num_vertices(), 1).unwrap();
    let timed_e = timed_edge_partitions(&g, 4, 1);
    let timed_v = timed_vertex_partitions(&g, 4, 1, &split.train);
    let grid = small_grid();
    let nested = Parallelism::new(Threads::new(4), Threads::new(4));

    let serial_e = distgnn_grid(&g, &timed_e, &grid);
    let par_e = distgnn_grid_threaded(&g, &timed_e, &grid, nested);
    assert_eq!(par_e, serial_e, "distgnn grid: sweep 4 x engine 4");

    let serial_v = distdgl_grid(&g, &split, &timed_v, &grid, ModelKind::Sage, 256);
    let par_v =
        distdgl_grid_threaded(&g, &split, &timed_v, &grid, ModelKind::Sage, 256, nested);
    assert_eq!(par_v, serial_v, "distdgl grid: sweep 4 x engine 4");

    let params = PaperParams::middle();
    let soak_timed: Vec<_> = timed_e.into_iter().take(1).collect();
    let serial_soak = distgnn_chaos_soak(&g, &soak_timed, params, 8, 5.0, 2, 0xc4a05);
    let par_soak =
        distgnn_chaos_soak_threaded(&g, &soak_timed, params, 8, 5.0, 2, 0xc4a05, nested);
    assert_eq!(par_soak, serial_soak, "distgnn chaos soak: sweep 4 x engine 4");
}

#[test]
fn advisor_ranking_is_identical_across_thread_counts() {
    let g = graph();
    let serial = recommend_edge_partitioner(&g, 4, PaperParams::middle(), 100);
    for threads in THREAD_COUNTS {
        let par = recommend_edge_partitioner_threaded(
            &g,
            4,
            PaperParams::middle(),
            100,
            Threads::new(threads),
        );
        // partition_seconds (and the net_saving rank built on it) is
        // wall clock; the simulated quantities must match exactly,
        // candidate by candidate.
        assert_eq!(par.ranked.len(), serial.ranked.len());
        for s in &serial.ranked {
            let p = par
                .ranked
                .iter()
                .find(|c| c.name == s.name)
                .expect("same candidate set");
            assert_eq!(p.epoch_seconds, s.epoch_seconds, "threads = {threads}: {}", s.name);
            assert_eq!(p.speedup, s.speedup, "threads = {threads}: {}", s.name);
        }
    }
}
