//! Reproducibility: every pipeline stage is bit-for-bit deterministic
//! given its seed.

use gnnpart::core::config::PaperParams;
use gnnpart::core::experiment::distdgl_epoch;
use gnnpart::prelude::*;

#[test]
fn datasets_are_deterministic() {
    for id in DatasetId::ALL {
        let a = id.generate(GraphScale::Tiny).unwrap();
        let b = id.generate(GraphScale::Tiny).unwrap();
        assert_eq!(a, b, "{}", id.name());
    }
}

#[test]
fn all_twelve_partitioners_are_deterministic() {
    let graph = DatasetId::EU.generate(GraphScale::Tiny).unwrap();
    let split = VertexSplit::paper_default(graph.num_vertices(), 1).unwrap();
    for name in gnnpart::core::registry::edge_partitioner_names() {
        let p = gnnpart::core::registry::edge_partitioner(name).unwrap();
        let a = p.partition_edges(&graph, 4, 11).unwrap();
        let b = p.partition_edges(&graph, 4, 11).unwrap();
        assert_eq!(a.assignments(), b.assignments(), "{name}");
    }
    for name in gnnpart::core::registry::vertex_partitioner_names() {
        let p =
            gnnpart::core::registry::vertex_partitioner(name, Some(split.train.clone())).unwrap();
        let a = p.partition_vertices(&graph, 4, 11).unwrap();
        let b = p.partition_vertices(&graph, 4, 11).unwrap();
        assert_eq!(a.assignments(), b.assignments(), "{name}");
    }
}

#[test]
fn distgnn_simulation_is_deterministic() {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let partition = Hdrf::default().partition_edges(&graph, 4, 1).unwrap();
    let config = DistGnnConfig::paper(PaperParams::middle().model(ModelKind::Sage), ClusterSpec::paper(4));
    let a = DistGnnEngine::builder(&graph, &partition).config(config).build().unwrap().run(&RunSpec::healthy()).unwrap().into_healthy().remove(0);
    let b = DistGnnEngine::builder(&graph, &partition).config(config).build().unwrap().run(&RunSpec::healthy()).unwrap().into_healthy().remove(0);
    assert_eq!(a.epoch_time(), b.epoch_time());
    assert_eq!(a.counters, b.counters);
}

#[test]
fn distdgl_simulation_is_deterministic() {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
    let split = VertexSplit::paper_default(graph.num_vertices(), 1).unwrap();
    let partition = Metis::default().partition_vertices(&graph, 4, 1).unwrap();
    let run = || {
        distdgl_epoch(&graph, &partition, &split, PaperParams::middle(), ModelKind::Sage, 256)
    };
    let a = run();
    let b = run();
    assert_eq!(a.epoch_time(), b.epoch_time());
    assert_eq!(a.total_remote_vertices, b.total_remote_vertices);
    assert_eq!(a.counters, b.counters);
}

#[test]
fn training_is_deterministic() {
    use gnnpart::distgnn::train::{train_full_batch, vertex_features, vertex_labels};
    let graph = DatasetId::DI.generate(GraphScale::Tiny).unwrap();
    let features = vertex_features(&graph, 8, 5);
    let labels = vertex_labels(&graph, &features, 4);
    let config = ModelConfig {
        kind: ModelKind::Gcn,
        feature_dim: 8,
        hidden_dim: 16,
        num_layers: 2,
        num_classes: 4,
        seed: 9,
    };
    let run = || {
        let mut model = GnnModel::new(config);
        let mut opt = Adam::new(0.01);
        train_full_batch(&mut model, &graph, &features, &labels, &mut opt, 5).losses
    };
    assert_eq!(run(), run());
}
