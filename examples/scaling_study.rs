//! Scale-out study: how partitioning effectiveness changes with the
//! cluster size (paper Figures 11 and 24).
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use gnnpart::core::config::PaperParams;
use gnnpart::core::experiment::{timed_edge_partitions, timed_vertex_partitions};
use gnnpart::core::sweep::{distdgl_grid, distgnn_grid};
use gnnpart::prelude::*;

fn main() {
    let dataset = DatasetId::OR;
    let graph = dataset.generate(GraphScale::Small).expect("preset valid");
    let split = VertexSplit::paper_default(graph.num_vertices(), 1).expect("valid fractions");
    let grid = [PaperParams::middle()];
    println!("{} — speedup over Random as the cluster grows\n", dataset.name());

    println!("DistGNN (full-batch, edge partitioning): effectiveness INCREASES");
    print!("{:<10}", "name");
    for k in [4u32, 8, 16, 32] {
        print!(" {:>7}", format!("k={k}"));
    }
    println!();
    let mut rows: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for k in [4u32, 8, 16, 32] {
        let parts = timed_edge_partitions(&graph, k, 42);
        for outcome in distgnn_grid(&graph, &parts, &grid) {
            rows.entry(outcome.name.clone()).or_default().push(outcome.speedups[0]);
        }
    }
    for (name, speedups) in &rows {
        print!("{name:<10}");
        for s in speedups {
            print!(" {s:>7.2}");
        }
        println!();
    }

    println!("\nDistDGL (mini-batch, vertex partitioning): effectiveness mostly DECREASES");
    print!("{:<10}", "name");
    for k in [4u32, 8, 16, 32] {
        print!(" {:>7}", format!("k={k}"));
    }
    println!();
    let mut rows: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for k in [4u32, 8, 16, 32] {
        let parts = timed_vertex_partitions(&graph, k, 42, &split.train);
        for outcome in distdgl_grid(&graph, &split, &parts, &grid, ModelKind::Sage, 1024) {
            rows.entry(outcome.name.clone()).or_default().push(outcome.speedups[0]);
        }
    }
    for (name, speedups) in &rows {
        print!("{name:<10}");
        for s in speedups {
            print!(" {s:>7.2}");
        }
        println!();
    }
}
