//! Partitioning-time amortisation analysis (paper Tables 4 and 5).
//!
//! ```text
//! cargo run --release --example amortization
//! ```
//!
//! Measures real partitioning wall time, simulates per-epoch training
//! time with and without the partitioner, and reports after how many
//! epochs the investment pays off.

use gnnpart::core::amortize::{epochs_to_amortize, fmt_amortize};
use gnnpart::core::config::PaperParams;
use gnnpart::core::experiment::{
    distdgl_epoch, distgnn_epoch, timed_edge_partitions, timed_vertex_partitions,
};
use gnnpart::prelude::*;

fn main() {
    let machines = 8;
    let dataset = DatasetId::EN;
    let graph = dataset.generate(GraphScale::Small).expect("preset valid");
    let split = VertexSplit::paper_default(graph.num_vertices(), 1).expect("valid fractions");
    let params = PaperParams::middle();
    println!(
        "{} — |V| = {}, |E| = {}, {machines} machines, f=h=64, 3 layers\n",
        dataset.name(),
        graph.num_vertices(),
        graph.num_edges()
    );

    println!("DistGNN (full-batch):");
    println!("{:<10} {:>12} {:>12} {:>14}", "name", "part time s", "epoch ms", "amortised after");
    let edge = timed_edge_partitions(&graph, machines, 42);
    let random_epoch = {
        let random = edge.iter().find(|t| t.name == "Random").expect("baseline");
        distgnn_epoch(&graph, &random.partition, params).epoch_time()
    };
    for t in &edge {
        let epoch = distgnn_epoch(&graph, &t.partition, params).epoch_time();
        let amortised = epochs_to_amortize(t.seconds, random_epoch, epoch);
        println!(
            "{:<10} {:>12.4} {:>12.2} {:>14} epochs",
            t.name,
            t.seconds,
            epoch * 1e3,
            fmt_amortize(amortised)
        );
    }

    println!("\nDistDGL (mini-batch, GraphSage):");
    println!("{:<10} {:>12} {:>12} {:>14}", "name", "part time s", "epoch ms", "amortised after");
    let vertex = timed_vertex_partitions(&graph, machines, 42, &split.train);
    let random_epoch = {
        let random = vertex.iter().find(|t| t.name == "Random").expect("baseline");
        distdgl_epoch(&graph, &random.partition, &split, params, ModelKind::Sage, 1024)
            .epoch_time()
    };
    for t in &vertex {
        let epoch = distdgl_epoch(&graph, &t.partition, &split, params, ModelKind::Sage, 1024)
            .epoch_time();
        let amortised = epochs_to_amortize(t.seconds, random_epoch, epoch);
        println!(
            "{:<10} {:>12.4} {:>12.2} {:>14} epochs",
            t.name,
            t.seconds,
            epoch * 1e3,
            fmt_amortize(amortised)
        );
    }
    println!("\nFull-batch training runs for hundreds of epochs: partitioning pays for itself.");
}
