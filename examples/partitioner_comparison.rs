//! Compare all twelve partitioners on one dataset (paper Table 2 roster).
//!
//! ```text
//! cargo run --release --example partitioner_comparison [-- <dataset> <k>]
//! ```
//!
//! Prints the quality metrics of Section 2.1 for every edge partitioner
//! (replication factor, balances) and every vertex partitioner
//! (edge-cut ratio, balances), with real partitioning wall times.

use gnnpart::core::experiment::{timed_edge_partitions, timed_vertex_partitions};
use gnnpart::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dataset = args
        .first()
        .and_then(|s| DatasetId::parse(s))
        .unwrap_or(DatasetId::OR);
    let k: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);

    let graph = dataset.generate(GraphScale::Small).expect("preset valid");
    let split = VertexSplit::paper_default(graph.num_vertices(), 1).expect("valid fractions");
    println!(
        "{} ({}) — |V| = {}, |E| = {}, k = {k}\n",
        dataset.name(),
        dataset.category(),
        graph.num_vertices(),
        graph.num_edges()
    );

    println!("Edge partitioners (vertex-cut):");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10}",
        "name", "rf", "edge bal", "vert bal", "time ms"
    );
    for t in timed_edge_partitions(&graph, k, 42) {
        println!(
            "{:<10} {:>8.2} {:>10.3} {:>10.3} {:>10.1}",
            t.name,
            t.partition.replication_factor(),
            t.partition.edge_balance(),
            t.partition.vertex_balance(),
            t.seconds * 1e3
        );
    }

    println!("\nVertex partitioners (edge-cut):");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10}",
        "name", "cut", "vert bal", "train bal", "time ms"
    );
    for t in timed_vertex_partitions(&graph, k, 42, &split.train) {
        println!(
            "{:<10} {:>8.3} {:>10.3} {:>10.3} {:>10.1}",
            t.name,
            t.partition.edge_cut_ratio(),
            t.partition.vertex_balance(),
            t.partition.subset_balance(&split.train),
            t.seconds * 1e3
        );
    }
}
