//! Mini-batch distributed training (DistDGL-style) with real learning.
//!
//! ```text
//! cargo run --release --example minibatch_training
//! ```
//!
//! Partitions the Orkut analogue with METIS, then trains a GraphSAGE
//! model with distributed neighbourhood sampling: every step each
//! worker samples a mini-batch from its local training vertices,
//! fetches remote features, and the gradients are averaged — exactly
//! the DistDGL workflow, with every phase accounted.

use gnnpart::distdgl::train::train;
use gnnpart::distgnn::train::{vertex_features, vertex_labels};
use gnnpart::prelude::*;

fn main() {
    let machines = 4;
    let graph = DatasetId::OR.generate(GraphScale::Tiny).expect("preset valid");
    let split = VertexSplit::paper_default(graph.num_vertices(), 77).expect("valid fractions");
    println!(
        "Orkut analogue: |V| = {}, |E| = {}, train vertices = {}",
        graph.num_vertices(),
        graph.num_edges(),
        split.train.len()
    );

    let classes = 8;
    let model_config = ModelConfig {
        kind: ModelKind::Sage,
        feature_dim: 32,
        hidden_dim: 64,
        num_layers: 2,
        num_classes: classes,
        seed: 3,
    };
    let features = vertex_features(&graph, 32, 11);
    let labels = vertex_labels(&graph, &features, classes);

    for name in ["Random", "METIS"] {
        let partitioner = gnnpart::core::registry::vertex_partitioner(
            name,
            Some(split.train.clone()),
        )
        .expect("registered");
        let partition = partitioner.partition_vertices(&graph, machines, 5).expect("valid");
        let mut config =
            DistDglConfig::paper(model_config, ClusterSpec::paper(machines));
        config.global_batch_size = 128;
        let engine =
            DistDglEngine::builder(&graph, &partition, &split).config(config).build().expect("matching sizes");

        // Real training over the sampled blocks.
        let mut model = GnnModel::new(model_config);
        let mut opt = Adam::new(0.01);
        let stats = train(&engine, &mut model, &features, &labels, &mut opt, 8);

        // Simulated phase cost of one epoch.
        let summary = engine.run(&RunSpec::healthy()).unwrap().into_healthy().remove(0);
        println!(
            "\n{name}: edge-cut {:.3}, {} steps/epoch",
            partition.edge_cut_ratio(),
            summary.steps
        );
        println!(
            "  loss {:.3} -> {:.3}, final train acc {:.3}",
            stats.losses.first().expect("epochs > 0"),
            stats.losses.last().expect("epochs > 0"),
            stats.accuracies.last().expect("epochs > 0"),
        );
        println!(
            "  simulated epoch: {:.2} ms  (sample {:.2} / fetch {:.2} / fwd {:.2} / bwd {:.2} ms)",
            summary.epoch_time() * 1e3,
            summary.phases.sampling * 1e3,
            summary.phases.feature_load * 1e3,
            summary.phases.forward * 1e3,
            summary.phases.backward * 1e3,
        );
        println!(
            "  remote input vertices: {} of {} ({:.1}%)",
            summary.total_remote_vertices,
            summary.total_input_vertices,
            100.0 * summary.total_remote_vertices as f64
                / summary.total_input_vertices.max(1) as f64
        );
    }
    println!("\nMETIS keeps sampling local: fewer remote vertices, faster epochs, same learning.");
}
