//! Full-batch distributed training (DistGNN-style) with real learning.
//!
//! ```text
//! cargo run --release --example full_batch_training
//! ```
//!
//! Trains an actual GraphSAGE model full-batch on the Hollywood
//! analogue, while the engine accounts the per-machine cost the
//! equivalent distributed execution would incur under two different
//! edge partitioners.

use gnnpart::distgnn::train::{train_full_batch, vertex_features, vertex_labels};
use gnnpart::prelude::*;

fn main() {
    let machines = 4;
    let graph = DatasetId::HW.generate(GraphScale::Tiny).expect("preset valid");
    println!(
        "Hollywood analogue: |V| = {}, |E| = {}",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Synthetic node-classification task: labels derived from
    // neighbourhood features (learnable by a GNN, not by a plain MLP).
    let classes = 8;
    let features = vertex_features(&graph, 32, 11);
    let labels = vertex_labels(&graph, &features, classes);

    let model_config = ModelConfig {
        kind: ModelKind::Sage,
        feature_dim: 32,
        hidden_dim: 64,
        num_layers: 2,
        num_classes: classes,
        seed: 3,
    };

    // --- Real training (identical math regardless of partitioning). ---
    let mut model = GnnModel::new(model_config);
    let mut opt = Adam::new(0.01);
    let stats = train_full_batch(&mut model, &graph, &features, &labels, &mut opt, 30);
    println!("\nTraining (30 full-batch epochs):");
    for (i, (loss, acc)) in stats.losses.iter().zip(stats.accuracies.iter()).enumerate() {
        if i % 5 == 0 || i + 1 == stats.losses.len() {
            println!("  epoch {i:>3}: loss {loss:.4}  train acc {acc:.3}");
        }
    }

    // --- What would each epoch cost on the simulated cluster? ---
    println!("\nSimulated per-epoch cost on {machines} machines:");
    let config = DistGnnConfig::paper(model_config, ClusterSpec::paper(machines));
    for partitioner in [&RandomEdgePartitioner as &dyn EdgePartitioner, &Hep::hep100()] {
        let partition = partitioner.partition_edges(&graph, machines, 9).expect("valid");
        let report = DistGnnEngine::builder(&graph, &partition).config(config).build()
            .expect("matching cluster")
            .run(&RunSpec::healthy()).unwrap().into_healthy().remove(0);
        println!(
            "  {:<8} rf {:>5.2}  epoch {:>7.2} ms  (fwd {:.2} / bwd {:.2} / sync {:.2} ms)  mem {:.1} MB",
            partitioner.name(),
            partition.replication_factor(),
            report.epoch_time() * 1e3,
            report.phases.forward * 1e3,
            report.phases.backward * 1e3,
            report.phases.sync * 1e3,
            report.total_memory() as f64 / 1e6,
        );
    }
    println!("\nSame model, same loss curve — partitioning only changes where the time goes.");
}
