//! Quickstart: partition a graph and see why it matters for GNN training.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the Orkut analogue, partitions it with a streaming and an
//! in-memory partitioner, and compares the simulated cost of one
//! full-batch training epoch on a 8-machine cluster.

use gnnpart::prelude::*;

fn main() {
    let machines = 8;
    println!("Generating the Orkut analogue (social graph)...");
    let graph = DatasetId::OR.generate(GraphScale::Small).expect("preset valid");
    println!(
        "  |V| = {}, |E| = {}, mean degree = {:.1}\n",
        graph.num_vertices(),
        graph.num_edges(),
        2.0 * graph.mean_degree()
    );

    let model = ModelConfig {
        kind: ModelKind::Sage,
        feature_dim: 64,
        hidden_dim: 64,
        num_layers: 3,
        num_classes: 16,
        seed: 7,
    };
    let config = DistGnnConfig::paper(model, ClusterSpec::paper(machines));

    println!("Partitioning into {machines} parts and simulating one epoch:");
    println!(
        "{:<10} {:>6} {:>8} {:>12} {:>12} {:>10}",
        "partitioner", "rf", "balance", "network MB", "memory MB", "epoch ms"
    );
    let partitioners: Vec<Box<dyn EdgePartitioner>> = vec![
        Box::new(RandomEdgePartitioner),
        Box::new(Dbh),
        Box::new(Hdrf::default()),
        Box::new(TwoPsL::default()),
        Box::new(Hep::hep100()),
    ];
    let mut random_time = None;
    for p in &partitioners {
        let partition = p.partition_edges(&graph, machines, 42).expect("valid k");
        let report = DistGnnEngine::builder(&graph, &partition).config(config).build()
            .expect("matching cluster")
            .run(&RunSpec::healthy()).unwrap().into_healthy().remove(0);
        if p.name() == "Random" {
            random_time = Some(report.epoch_time());
        }
        let speedup = random_time.map(|r| r / report.epoch_time()).unwrap_or(1.0);
        println!(
            "{:<10} {:>6.2} {:>8.2} {:>12.1} {:>12.1} {:>10.1}  ({speedup:.2}x)",
            p.name(),
            partition.replication_factor(),
            partition.vertex_balance(),
            report.counters.total_network_bytes() as f64 / 1e6,
            report.total_memory() as f64 / 1e6,
            report.epoch_time() * 1e3,
        );
    }
    println!("\nLower replication factor -> less sync traffic -> faster epochs.");
    println!("Run `cargo run -p gp-bench --release --bin figures -- all` for the full study.");
}
