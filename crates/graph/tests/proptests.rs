//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use gp_graph::{Graph, GraphBuilder, VertexSplit};

/// Strategy: a random raw edge list over `n` vertices.
fn raw_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..max_m);
        (Just(n), edges)
    })
}

proptest! {
    /// Building any raw edge list succeeds and preserves invariants.
    #[test]
    fn builder_invariants((n, edges) in raw_edges(200, 400)) {
        let mut b = GraphBuilder::undirected(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build().expect("in-range edges");
        // No self loops, no duplicates.
        let mut seen = std::collections::HashSet::new();
        for (u, v) in g.edges() {
            prop_assert!(u != v);
            prop_assert!(u <= v, "undirected edges normalised");
            prop_assert!(seen.insert((u, v)), "duplicate edge ({u},{v})");
        }
        // Degree sum equals arc count.
        let total: u64 = g.vertices().map(|v| u64::from(g.out_degree(v))).sum();
        prop_assert_eq!(total, u64::from(g.num_arcs()));
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }

    /// Directed CSR: out- and in-degree sums both equal the edge count,
    /// and adjacency round-trips the edge list.
    #[test]
    fn directed_adjacency_consistent((n, edges) in raw_edges(150, 300)) {
        let mut b = GraphBuilder::directed(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build().expect("in-range edges");
        let out_sum: u64 = g.vertices().map(|v| u64::from(g.out_degree(v))).sum();
        let in_sum: u64 = g.vertices().map(|v| u64::from(g.in_degree(v))).sum();
        prop_assert_eq!(out_sum, u64::from(g.num_edges()));
        prop_assert_eq!(in_sum, u64::from(g.num_edges()));
        for (u, v) in g.edges() {
            prop_assert!(g.out_neighbors(u).contains(&v));
            prop_assert!(g.in_neighbors(v).contains(&u));
        }
    }

    /// Edge-list round trip through text preserves the graph.
    #[test]
    fn edgelist_roundtrip((n, edges) in raw_edges(100, 200)) {
        let mut b = GraphBuilder::directed(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build().expect("in-range edges");
        prop_assume!(g.num_edges() > 0);
        let mut buf = Vec::new();
        gp_graph::edgelist::write_edge_list(&g, &mut buf).expect("write");
        let g2 = gp_graph::edgelist::read_edge_list(buf.as_slice(), true).expect("read");
        // Vertex-id space may shrink to max-id+1; edges must survive.
        let a: Vec<_> = g.edges().collect();
        let b2: Vec<_> = g2.edges().collect();
        prop_assert_eq!(a, b2);
    }

    /// Splits are always disjoint and complete.
    #[test]
    fn splits_partition_vertices(
        n in 1u32..500,
        train in 0.0f64..0.6,
        val in 0.0f64..0.4,
        seed in any::<u64>()
    ) {
        let s = VertexSplit::random(n, train, val, seed).expect("valid fractions");
        let mut all: Vec<u32> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len() as u32, n, "disjoint and complete");
    }

    /// Graph construction from pre-deduplicated edges is idempotent.
    #[test]
    fn from_edges_deterministic((n, edges) in raw_edges(80, 150)) {
        let mut b1 = GraphBuilder::undirected(n);
        let mut b2 = GraphBuilder::undirected(n);
        for &(u, v) in &edges {
            b1.add_edge(u, v);
            b2.add_edge(u, v);
        }
        prop_assert_eq!(b1.build().expect("ok"), b2.build().expect("ok"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generator produces structurally valid graphs for arbitrary
    /// seeds.
    #[test]
    fn generators_always_valid(seed in any::<u64>()) {
        use gp_graph::generators::*;
        let graphs: Vec<Graph> = vec![
            gnm(200, 500, false, seed).expect("gnm"),
            rmat(RmatParams { scale: 8, edge_factor: 4, ..RmatParams::default() }, seed)
                .expect("rmat"),
            prefattach(PrefAttachParams { n: 300, out_links: 4, ..Default::default() }, seed)
                .expect("pa"),
            webcopy(WebCopyParams { n: 300, out_links: 4, ..Default::default() }, seed)
                .expect("webcopy"),
            road(RoadParams { width: 12, height: 12, ..Default::default() }, seed).expect("road"),
            affiliation(
                AffiliationParams { n: 200, groups: 80, ..Default::default() },
                seed,
            )
            .expect("affiliation"),
            community(
                CommunityParams { n: 300, m: 2000, communities: 6, ..Default::default() },
                seed,
            )
            .expect("community"),
            smallworld(SmallWorldParams { n: 200, k: 3, rewire_prob: 0.2 }, seed)
                .expect("smallworld"),
        ];
        for g in graphs {
            prop_assert!(g.num_vertices() > 0);
            for (u, v) in g.edges() {
                prop_assert!(u != v, "self loop");
                prop_assert!(u < g.num_vertices() && v < g.num_vertices());
            }
        }
    }
}
