//! Property-based tests for the graph substrate.

use proptest::prelude::*;

use gp_graph::{Graph, GraphBuilder, StreamGraph, StreamPlan, StreamSpec, VertexSplit};

/// Strategy: a random raw edge list over `n` vertices.
fn raw_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..max_m);
        (Just(n), edges)
    })
}

proptest! {
    /// Building any raw edge list succeeds and preserves invariants.
    #[test]
    fn builder_invariants((n, edges) in raw_edges(200, 400)) {
        let mut b = GraphBuilder::undirected(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build().expect("in-range edges");
        // No self loops, no duplicates.
        let mut seen = std::collections::HashSet::new();
        for (u, v) in g.edges() {
            prop_assert!(u != v);
            prop_assert!(u <= v, "undirected edges normalised");
            prop_assert!(seen.insert((u, v)), "duplicate edge ({u},{v})");
        }
        // Degree sum equals arc count.
        let total: u64 = g.vertices().map(|v| u64::from(g.out_degree(v))).sum();
        prop_assert_eq!(total, u64::from(g.num_arcs()));
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }

    /// Directed CSR: out- and in-degree sums both equal the edge count,
    /// and adjacency round-trips the edge list.
    #[test]
    fn directed_adjacency_consistent((n, edges) in raw_edges(150, 300)) {
        let mut b = GraphBuilder::directed(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build().expect("in-range edges");
        let out_sum: u64 = g.vertices().map(|v| u64::from(g.out_degree(v))).sum();
        let in_sum: u64 = g.vertices().map(|v| u64::from(g.in_degree(v))).sum();
        prop_assert_eq!(out_sum, u64::from(g.num_edges()));
        prop_assert_eq!(in_sum, u64::from(g.num_edges()));
        for (u, v) in g.edges() {
            prop_assert!(g.out_neighbors(u).contains(&v));
            prop_assert!(g.in_neighbors(v).contains(&u));
        }
    }

    /// Edge-list round trip through text preserves the graph.
    #[test]
    fn edgelist_roundtrip((n, edges) in raw_edges(100, 200)) {
        let mut b = GraphBuilder::directed(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build().expect("in-range edges");
        prop_assume!(g.num_edges() > 0);
        let mut buf = Vec::new();
        gp_graph::edgelist::write_edge_list(&g, &mut buf).expect("write");
        let g2 = gp_graph::edgelist::read_edge_list(buf.as_slice(), true).expect("read");
        // Vertex-id space may shrink to max-id+1; edges must survive.
        let a: Vec<_> = g.edges().collect();
        let b2: Vec<_> = g2.edges().collect();
        prop_assert_eq!(a, b2);
    }

    /// Splits are always disjoint and complete.
    #[test]
    fn splits_partition_vertices(
        n in 1u32..500,
        train in 0.0f64..0.6,
        val in 0.0f64..0.4,
        seed in any::<u64>()
    ) {
        let s = VertexSplit::random(n, train, val, seed).expect("valid fractions");
        let mut all: Vec<u32> = s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len() as u32, n, "disjoint and complete");
    }

    /// Graph construction from pre-deduplicated edges is idempotent.
    #[test]
    fn from_edges_deterministic((n, edges) in raw_edges(80, 150)) {
        let mut b1 = GraphBuilder::undirected(n);
        let mut b2 = GraphBuilder::undirected(n);
        for &(u, v) in &edges {
            b1.add_edge(u, v);
            b2.add_edge(u, v);
        }
        prop_assert_eq!(b1.build().expect("ok"), b2.build().expect("ok"));
    }
}

/// Strategy: a valid mutation schedule (validate() accepts it by
/// construction: at least one rate positive, arrivals always wired).
fn arb_stream_spec() -> impl Strategy<Value = StreamSpec> {
    (1u32..8, 0u32..24, 0u32..14, 0u32..4, 1u32..4, any::<u64>()).prop_map(
        |(batches, inserts, deletes, arrivals, wires, seed)| StreamSpec {
            batches,
            inserts_per_batch: if inserts == 0 && deletes == 0 && arrivals == 0 {
                1
            } else {
                inserts
            },
            deletes_per_batch: deletes,
            arrivals_per_batch: arrivals,
            edges_per_arrival: wires,
            seed,
        },
    )
}

/// Strategy: a base graph plus a schedule to stream over it.
fn arb_stream_case() -> impl Strategy<Value = (Graph, StreamSpec)> {
    (raw_edges(60, 120), arb_stream_spec()).prop_map(|((n, edges), spec)| {
        let mut b = GraphBuilder::undirected(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        (b.build().expect("in-range edges"), spec)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every deletion a generated plan schedules targets an edge that is
    /// live at that point of the replay — checked against an independent
    /// mirror of the live set, not the StreamGraph's own validation.
    #[test]
    fn stream_plan_deletions_only_target_live_edges((g, spec) in arb_stream_case()) {
        let plan = StreamPlan::generate(&g, &spec).expect("valid spec by construction");
        prop_assert_eq!(plan.len() as u32, spec.batches);
        let mut live: std::collections::HashSet<(u32, u32)> = g.edges().collect();
        for batch in plan.batches() {
            for &e in &batch.inserts {
                prop_assert!(e.0 != e.1, "self-loop scheduled");
                prop_assert!(live.insert(e), "duplicate insertion of live edge {e:?}");
            }
            for &e in &batch.deletes {
                prop_assert!(live.remove(&e), "deletion of non-live edge {e:?}");
            }
        }
        // And the StreamGraph agrees end to end.
        let mut sg = StreamGraph::new(&g);
        for batch in plan.batches() {
            sg.apply(batch).expect("plan mutations are valid by construction");
        }
        prop_assert_eq!(sg.num_live_edges() as usize, live.len());
    }

    /// Plan generation is a pure function of (base, spec): regenerating
    /// and replaying is bit-identical, down to the final snapshot.
    #[test]
    fn stream_plan_replay_is_bit_identical((g, spec) in arb_stream_case()) {
        let a = StreamPlan::generate(&g, &spec).expect("valid");
        let b = StreamPlan::generate(&g, &spec).expect("valid");
        prop_assert_eq!(&a, &b);
        let mut sa = StreamGraph::new(&g);
        let mut sb = StreamGraph::new(&g);
        for (x, y) in a.batches().iter().zip(b.batches()) {
            sa.apply(x).expect("valid");
            sb.apply(y).expect("valid");
            prop_assert_eq!(sa.num_live_edges(), sb.num_live_edges());
        }
        prop_assert_eq!(sa.snapshot().expect("ok"), sb.snapshot().expect("ok"));
    }

    /// After any interleaving of inserts and deletes, the snapshot is
    /// CSR-identical to a graph rebuilt from scratch over the same live
    /// edge sequence — the log adds no hidden state.
    #[test]
    fn stream_snapshot_equals_rebuilt_csr((g, spec) in arb_stream_case()) {
        let plan = StreamPlan::generate(&g, &spec).expect("valid");
        let mut sg = StreamGraph::new(&g);
        for batch in plan.batches() {
            sg.apply(batch).expect("valid");
            let snap = sg.snapshot().expect("ok");
            let edges: Vec<(u32, u32)> = snap.edges().collect();
            let rebuilt = Graph::from_edges(snap.num_vertices(), &edges, snap.is_directed())
                .expect("ok");
            prop_assert_eq!(snap, rebuilt);
        }
    }

    /// Deleting any prefix of the base edges and reinserting them in the
    /// same relative order restores the exact edge set, and the snapshot
    /// round-trips through from_edges CSR-identically.
    #[test]
    fn stream_delete_reinsert_roundtrip_restores_edge_set(
        (n, edges) in raw_edges(60, 120),
        take in 0usize..40,
    ) {
        let mut b = GraphBuilder::undirected(n);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build().expect("in-range edges");
        let victims: Vec<(u32, u32)> = g.edges().take(take).collect();
        let mut sg = StreamGraph::new(&g);
        for &(u, v) in &victims {
            sg.delete(u, v).expect("base edges are live");
        }
        for &(u, v) in &victims {
            sg.insert(u, v).expect("deleted edges are free to reinsert");
        }
        prop_assert_eq!(sg.num_live_edges(), g.num_edges());
        prop_assert_eq!(sg.log_len() as usize, g.num_edges() as usize + victims.len());
        let snap = sg.snapshot().expect("ok");
        let mut a: Vec<_> = snap.edges().collect();
        let mut b2: Vec<_> = g.edges().collect();
        a.sort_unstable();
        b2.sort_unstable();
        prop_assert_eq!(a, b2, "same edge set as the base");
        let rebuilt = Graph::from_edges(
            snap.num_vertices(),
            &snap.edges().collect::<Vec<_>>(),
            snap.is_directed(),
        )
        .expect("ok");
        prop_assert_eq!(snap, rebuilt);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every generator produces structurally valid graphs for arbitrary
    /// seeds.
    #[test]
    fn generators_always_valid(seed in any::<u64>()) {
        use gp_graph::generators::*;
        let graphs: Vec<Graph> = vec![
            gnm(200, 500, false, seed).expect("gnm"),
            rmat(RmatParams { scale: 8, edge_factor: 4, ..RmatParams::default() }, seed)
                .expect("rmat"),
            prefattach(PrefAttachParams { n: 300, out_links: 4, ..Default::default() }, seed)
                .expect("pa"),
            webcopy(WebCopyParams { n: 300, out_links: 4, ..Default::default() }, seed)
                .expect("webcopy"),
            road(RoadParams { width: 12, height: 12, ..Default::default() }, seed).expect("road"),
            affiliation(
                AffiliationParams { n: 200, groups: 80, ..Default::default() },
                seed,
            )
            .expect("affiliation"),
            community(
                CommunityParams { n: 300, m: 2000, communities: 6, ..Default::default() },
                seed,
            )
            .expect("community"),
            smallworld(SmallWorldParams { n: 200, k: 3, rewire_prob: 0.2 }, seed)
                .expect("smallworld"),
        ];
        for g in graphs {
            prop_assert!(g.num_vertices() > 0);
            for (u, v) in g.edges() {
                prop_assert!(u != v, "self loop");
                prop_assert!(u < g.num_vertices() && v < g.num_vertices());
            }
        }
    }
}
