//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while constructing or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a vertex id `>= num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The number of vertices in the graph.
        num_vertices: u64,
    },
    /// The graph would exceed the `u32` id space.
    TooLarge {
        /// What overflowed ("vertices" or "edges").
        what: &'static str,
        /// The requested count.
        requested: u64,
    },
    /// An I/O error while reading or writing an edge list.
    Io(std::io::Error),
    /// A malformed line in an edge-list file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A generator was given parameters it cannot satisfy.
    InvalidParameter(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, num_vertices } => write!(
                f,
                "vertex id {vertex} out of range (graph has {num_vertices} vertices)"
            ),
            GraphError::TooLarge { what, requested } => {
                write!(f, "too many {what}: {requested} exceeds u32 id space")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_vertex_out_of_range() {
        let e = GraphError::VertexOutOfRange { vertex: 10, num_vertices: 5 };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn display_too_large() {
        let e = GraphError::TooLarge { what: "edges", requested: 1 << 40 };
        assert!(e.to_string().contains("too many edges"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = GraphError::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn parse_error_mentions_line() {
        let e = GraphError::Parse { line: 7, message: "bad".into() };
        assert!(e.to_string().contains("line 7"));
    }
}
