//! Compact immutable CSR graph.
//!
//! [`Graph`] stores a canonical edge list plus CSR adjacency. For an
//! undirected graph each edge `{u, v}` is stored once in the edge list
//! (normalised so `u <= v`) and twice in the out-adjacency (as arcs
//! `u -> v` and `v -> u`); the in-adjacency is not materialised because it
//! equals the out-adjacency. For a directed graph both out- and
//! in-adjacency are materialised.

use crate::error::GraphError;

/// Vertex identifier. The study's scaled-down graphs fit comfortably in
/// `u32`, which halves adjacency memory compared to `usize`.
pub type VertexId = u32;

/// Immutable graph in CSR form.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    directed: bool,
    num_vertices: u32,
    /// Canonical edge list: sources. One entry per *unique* edge.
    src: Vec<u32>,
    /// Canonical edge list: destinations.
    dst: Vec<u32>,
    /// CSR offsets for out-adjacency (`num_vertices + 1` entries).
    out_offsets: Vec<u32>,
    /// CSR targets for out-adjacency.
    out_targets: Vec<u32>,
    /// CSR offsets for in-adjacency (empty for undirected graphs).
    in_offsets: Vec<u32>,
    /// CSR targets for in-adjacency (empty for undirected graphs).
    in_targets: Vec<u32>,
}

impl Graph {
    /// Build a graph from a deduplicated edge list.
    ///
    /// `edges` must already be free of duplicates and self-loops (use
    /// [`crate::GraphBuilder`] for raw input). For undirected graphs each
    /// pair must appear exactly once (in either orientation).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is
    /// `>= num_vertices` and [`GraphError::TooLarge`] if the arc count
    /// would overflow `u32`.
    pub fn from_edges(
        num_vertices: u32,
        edges: &[(u32, u32)],
        directed: bool,
    ) -> Result<Self, GraphError> {
        for &(u, v) in edges {
            if u >= num_vertices || v >= num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u64::from(u.max(v)),
                    num_vertices: u64::from(num_vertices),
                });
            }
        }
        let arc_factor: u64 = if directed { 1 } else { 2 };
        let arcs = edges.len() as u64 * arc_factor;
        if arcs > u64::from(u32::MAX) {
            return Err(GraphError::TooLarge { what: "edges", requested: arcs });
        }

        let n = num_vertices as usize;
        let mut src = Vec::with_capacity(edges.len());
        let mut dst = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if directed {
                src.push(u);
                dst.push(v);
            } else {
                // Normalise undirected edges so (src, dst) is unique.
                src.push(u.min(v));
                dst.push(u.max(v));
            }
        }

        // Out-adjacency via counting sort.
        let mut out_deg = vec![0u32; n];
        for i in 0..src.len() {
            out_deg[src[i] as usize] += 1;
            if !directed {
                out_deg[dst[i] as usize] += 1;
            }
        }
        let mut out_offsets = vec![0u32; n + 1];
        for v in 0..n {
            out_offsets[v + 1] = out_offsets[v] + out_deg[v];
        }
        let mut out_targets = vec![0u32; out_offsets[n] as usize];
        let mut cursor = out_offsets[..n].to_vec();
        for i in 0..src.len() {
            let (u, v) = (src[i], dst[i]);
            out_targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            if !directed {
                out_targets[cursor[v as usize] as usize] = u;
                cursor[v as usize] += 1;
            }
        }

        // In-adjacency (directed only).
        let (in_offsets, in_targets) = if directed {
            let mut in_deg = vec![0u32; n];
            for &v in &dst {
                in_deg[v as usize] += 1;
            }
            let mut offs = vec![0u32; n + 1];
            for v in 0..n {
                offs[v + 1] = offs[v] + in_deg[v];
            }
            let mut tgts = vec![0u32; offs[n] as usize];
            let mut cur = offs[..n].to_vec();
            for i in 0..src.len() {
                let (u, v) = (src[i], dst[i]);
                tgts[cur[v as usize] as usize] = u;
                cur[v as usize] += 1;
            }
            (offs, tgts)
        } else {
            (Vec::new(), Vec::new())
        };

        Ok(Graph {
            directed,
            num_vertices,
            src,
            dst,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        })
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of *unique* edges (an undirected edge counts once).
    #[inline]
    pub fn num_edges(&self) -> u32 {
        self.src.len() as u32
    }

    /// Number of adjacency arcs (`2 * num_edges` for undirected graphs).
    #[inline]
    pub fn num_arcs(&self) -> u32 {
        self.out_targets.len() as u32
    }

    /// Mean degree `|E| / |V|`.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            f64::from(self.num_edges()) / f64::from(self.num_vertices)
        }
    }

    /// The `i`-th canonical edge.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_edges()`.
    #[inline]
    pub fn edge(&self, i: u32) -> (u32, u32) {
        (self.src[i as usize], self.dst[i as usize])
    }

    /// Iterator over canonical edges `(src, dst)`.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = (u32, u32)> + '_ {
        self.src.iter().copied().zip(self.dst.iter().copied())
    }

    /// Out-neighbours of `v` (for undirected graphs: all neighbours).
    #[inline]
    pub fn out_neighbors(&self, v: u32) -> &[u32] {
        let lo = self.out_offsets[v as usize] as usize;
        let hi = self.out_offsets[v as usize + 1] as usize;
        &self.out_targets[lo..hi]
    }

    /// In-neighbours of `v` (for undirected graphs: all neighbours).
    #[inline]
    pub fn in_neighbors(&self, v: u32) -> &[u32] {
        if self.directed {
            let lo = self.in_offsets[v as usize] as usize;
            let hi = self.in_offsets[v as usize + 1] as usize;
            &self.in_targets[lo..hi]
        } else {
            self.out_neighbors(v)
        }
    }

    /// Neighbours a GNN layer aggregates *from* when computing `v`'s
    /// representation: in-neighbours for directed graphs (messages flow
    /// along edge direction), all neighbours for undirected graphs.
    #[inline]
    pub fn message_neighbors(&self, v: u32) -> &[u32] {
        self.in_neighbors(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: u32) -> u32 {
        self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]
    }

    /// In-degree of `v` (equals [`Self::out_degree`] for undirected graphs).
    #[inline]
    pub fn in_degree(&self, v: u32) -> u32 {
        if self.directed {
            self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]
        } else {
            self.out_degree(v)
        }
    }

    /// Total degree: `out + in` for directed graphs, neighbour count for
    /// undirected graphs.
    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        if self.directed {
            self.out_degree(v) + self.in_degree(v)
        } else {
            self.out_degree(v)
        }
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = u32> {
        0..self.num_vertices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_directed() -> Graph {
        // 0 -> 1, 1 -> 2, 2 -> 0
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], true).unwrap()
    }

    fn path_undirected() -> Graph {
        // 0 - 1 - 2 - 3
        Graph::from_edges(4, &[(0, 1), (2, 1), (2, 3)], false).unwrap()
    }

    #[test]
    fn directed_counts() {
        let g = triangle_directed();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 3);
        assert!(g.is_directed());
    }

    #[test]
    fn directed_adjacency() {
        let g = triangle_directed();
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.in_neighbors(0), &[2]);
        assert_eq!(g.message_neighbors(1), &[0]);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.in_degree(2), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn undirected_counts_arcs_doubled() {
        let g = path_undirected();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert!(!g.is_directed());
    }

    #[test]
    fn undirected_adjacency_symmetric() {
        let g = path_undirected();
        let mut n1 = g.out_neighbors(1).to_vec();
        n1.sort_unstable();
        assert_eq!(n1, vec![0, 2]);
        assert_eq!(g.in_neighbors(1), g.out_neighbors(1));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn undirected_edges_normalised() {
        let g = path_undirected();
        // (2, 1) was normalised to (1, 2).
        let edges: Vec<_> = g.edges().collect();
        assert!(edges.contains(&(1, 2)));
        assert!(!edges.contains(&(2, 1)));
    }

    #[test]
    fn vertex_out_of_range_rejected() {
        let err = Graph::from_edges(2, &[(0, 2)], true).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { vertex: 2, .. }));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(5, &[], false).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_neighbors(4), &[] as &[u32]);
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::from_edges(0, &[], true).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn edge_accessor_matches_iterator() {
        let g = triangle_directed();
        for (i, e) in g.edges().enumerate() {
            assert_eq!(g.edge(i as u32), e);
        }
    }

    #[test]
    fn degrees_sum_to_arcs() {
        let g = path_undirected();
        let total: u32 = g.vertices().map(|v| g.out_degree(v)).sum();
        assert_eq!(total, g.num_arcs());
    }

    #[test]
    fn directed_in_degrees_sum_to_edges() {
        let g = triangle_directed();
        let total: u32 = g.vertices().map(|v| g.in_degree(v)).sum();
        assert_eq!(total, g.num_edges());
    }
}
