//! Deduplicating graph builder.
//!
//! Generators and loaders produce raw edge streams that may contain
//! duplicates and self-loops; [`GraphBuilder`] normalises them into the
//! canonical form [`Graph`] expects.

use crate::csr::Graph;
use crate::error::GraphError;

/// Accumulates raw edges and produces a clean [`Graph`].
///
/// Self-loops are always dropped. Duplicate edges are dropped (for
/// undirected graphs, `(u, v)` and `(v, u)` are considered the same edge).
///
/// ```
/// use gp_graph::GraphBuilder;
/// let mut b = GraphBuilder::undirected(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate of (0, 1)
/// b.add_edge(2, 2); // self-loop, dropped
/// b.add_edge(1, 2);
/// let g = b.build().unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    directed: bool,
    num_vertices: u32,
    edges: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// New builder for a directed graph with `num_vertices` vertices.
    pub fn directed(num_vertices: u32) -> Self {
        GraphBuilder { directed: true, num_vertices, edges: Vec::new() }
    }

    /// New builder for an undirected graph with `num_vertices` vertices.
    pub fn undirected(num_vertices: u32) -> Self {
        GraphBuilder { directed: false, num_vertices, edges: Vec::new() }
    }

    /// Pre-allocate space for `n` edges.
    pub fn reserve(&mut self, n: usize) {
        self.edges.reserve(n);
    }

    /// Number of raw edges added so far (before dedup).
    pub fn raw_len(&self) -> usize {
        self.edges.len()
    }

    /// Add one edge. Self-loops are silently dropped; duplicates are
    /// removed at [`Self::build`] time.
    #[inline]
    pub fn add_edge(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        if self.directed {
            self.edges.push((u, v));
        } else {
            self.edges.push((u.min(v), u.max(v)));
        }
    }

    /// Grow the vertex-id space to at least `n` vertices.
    pub fn ensure_vertices(&mut self, n: u32) {
        self.num_vertices = self.num_vertices.max(n);
    }

    /// Deduplicate and produce the final [`Graph`].
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from [`Graph::from_edges`] (out-of-range
    /// endpoints, overflow).
    pub fn build(mut self) -> Result<Graph, GraphError> {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_edges(self.num_vertices, &self.edges, self.directed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_directed_edges() {
        let mut b = GraphBuilder::directed(3);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // distinct direction: kept
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn dedups_undirected_both_orientations() {
        let mut b = GraphBuilder::undirected(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn drops_self_loops() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(1, 1);
        b.add_edge(0, 1);
        assert_eq!(b.raw_len(), 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn ensure_vertices_grows_only() {
        let mut b = GraphBuilder::directed(5);
        b.ensure_vertices(3);
        b.add_edge(0, 4);
        assert!(b.build().is_ok());
    }

    #[test]
    fn out_of_range_edge_fails_at_build() {
        let mut b = GraphBuilder::directed(2);
        b.add_edge(0, 5);
        assert!(b.build().is_err());
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::undirected(10).build().unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 0);
    }
}
