//! Affiliation-network generator (the Hollywood-2011 analogue `HW`).
//!
//! Collaboration graphs are unions of cliques: every movie contributes a
//! clique among its cast. Cast sizes follow a truncated power law, and
//! actor popularity is Zipf-distributed (stars appear in many casts),
//! which yields the extreme density (|E|/|V| > 100 in the original) and
//! heavy degree tail of Hollywood-2011.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;

/// Parameters for the affiliation generator.
#[derive(Debug, Clone, Copy)]
pub struct AffiliationParams {
    /// Number of actors (vertices).
    pub n: u32,
    /// Number of movies (cliques).
    pub groups: u32,
    /// Minimum cast size.
    pub min_cast: u32,
    /// Maximum cast size.
    pub max_cast: u32,
    /// Power-law exponent for cast sizes (larger = smaller casts).
    pub cast_exponent: f64,
    /// Zipf skew of actor popularity (0 = uniform).
    pub popularity_skew: f64,
    /// Probability that a cast member is drawn from the movie's local
    /// actor window instead of globally. Real collaboration networks are
    /// strongly clustered by era/region/genre; without this the cliques
    /// overlap uniformly and the graph loses all separable structure.
    pub cast_locality: f64,
    /// Width of the local actor window.
    pub cast_window: u32,
}

impl Default for AffiliationParams {
    fn default() -> Self {
        AffiliationParams {
            n: 10_000,
            groups: 4_000,
            min_cast: 3,
            max_cast: 60,
            cast_exponent: 2.2,
            popularity_skew: 0.8,
            cast_locality: 0.8,
            cast_window: 500,
        }
    }
}

/// Generate an undirected collaboration graph as a union of cliques.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for degenerate parameters.
pub fn affiliation(params: AffiliationParams, seed: u64) -> Result<Graph, GraphError> {
    let AffiliationParams {
        n,
        groups,
        min_cast,
        max_cast,
        cast_exponent,
        popularity_skew,
        cast_locality,
        cast_window,
    } = params;
    if !(0.0..=1.0).contains(&cast_locality) || cast_window == 0 {
        return Err(GraphError::InvalidParameter(format!(
            "cast_locality={cast_locality}, cast_window={cast_window}"
        )));
    }
    if n < 2 {
        return Err(GraphError::InvalidParameter(format!("n={n} < 2")));
    }
    if min_cast < 2 || max_cast < min_cast {
        return Err(GraphError::InvalidParameter(format!(
            "cast range [{min_cast}, {max_cast}] invalid"
        )));
    }
    if cast_exponent <= 1.0 {
        return Err(GraphError::InvalidParameter("cast_exponent must be > 1".into()));
    }
    if popularity_skew < 0.0 {
        return Err(GraphError::InvalidParameter("popularity_skew must be >= 0".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    let mut cast: Vec<u32> = Vec::with_capacity(max_cast as usize);
    for _ in 0..groups {
        let size = sample_powerlaw(min_cast, max_cast.min(n), cast_exponent, &mut rng);
        // Each movie is anchored at a random point of the actor space;
        // most of the cast comes from the surrounding window.
        let center = rng.random_range(0..n);
        cast.clear();
        let mut attempts = 0u32;
        while cast.len() < size as usize && attempts < 40 * size {
            attempts += 1;
            let actor = if rng.random_bool(cast_locality) {
                let lo = center.saturating_sub(cast_window / 2);
                let hi = (center + cast_window / 2).min(n - 1);
                lo + sample_zipfish(hi - lo + 1, popularity_skew, &mut rng)
            } else {
                sample_zipfish(n, popularity_skew, &mut rng)
            };
            if !cast.contains(&actor) {
                cast.push(actor);
            }
        }
        for i in 0..cast.len() {
            for j in (i + 1)..cast.len() {
                b.add_edge(cast[i], cast[j]);
            }
        }
    }
    b.build()
}

/// Sample from a truncated discrete power law on `[lo, hi]` via inverse
/// transform of the continuous Pareto distribution.
fn sample_powerlaw(lo: u32, hi: u32, exponent: f64, rng: &mut StdRng) -> u32 {
    let a = 1.0 - exponent;
    let lo_f = f64::from(lo);
    let hi_f = f64::from(hi) + 1.0;
    let u: f64 = rng.random();
    let x = (lo_f.powf(a) + u * (hi_f.powf(a) - lo_f.powf(a))).powf(1.0 / a);
    (x as u32).clamp(lo, hi)
}

/// Sample a vertex with Zipf-like popularity: vertex ids near 0 are more
/// popular. Uses the standard `u^(1/(1-s))`-style transform, clamped.
fn sample_zipfish(n: u32, skew: f64, rng: &mut StdRng) -> u32 {
    if skew <= f64::EPSILON {
        return rng.random_range(0..n);
    }
    let u: f64 = rng.random::<f64>().max(1e-12);
    // Map uniform u to a rank with density ~ rank^(-skew).
    let x = u.powf(1.0 / (1.0 - skew.min(0.99)));
    ((x * f64::from(n)) as u32).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AffiliationParams {
        AffiliationParams { n: 1500, groups: 800, ..AffiliationParams::default() }
    }

    #[test]
    fn scale_and_undirected() {
        let g = affiliation(small(), 1).unwrap();
        assert_eq!(g.num_vertices(), 1500);
        assert!(!g.is_directed());
        assert!(g.num_edges() > 3_000);
    }

    #[test]
    fn deterministic() {
        assert_eq!(affiliation(small(), 2).unwrap(), affiliation(small(), 2).unwrap());
    }

    #[test]
    fn dense_relative_to_vertices() {
        let g = affiliation(small(), 3).unwrap();
        assert!(g.mean_degree() > 3.0, "mean degree {}", g.mean_degree());
    }

    #[test]
    fn heavy_tail() {
        let g = affiliation(small(), 4).unwrap();
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let mean = 2.0 * g.mean_degree();
        assert!(f64::from(max_deg) > 4.0 * mean, "max {max_deg} mean {mean}");
    }

    #[test]
    fn rejects_bad_cast_range() {
        assert!(affiliation(AffiliationParams { min_cast: 1, ..small() }, 0).is_err());
        assert!(affiliation(AffiliationParams { max_cast: 2, min_cast: 5, ..small() }, 0).is_err());
    }

    #[test]
    fn powerlaw_sample_in_range() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let x = sample_powerlaw(3, 60, 2.2, &mut rng);
            assert!((3..=60).contains(&x));
        }
    }

    #[test]
    fn zipf_sample_in_range_and_skewed() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut low_half = 0;
        for _ in 0..2000 {
            let x = sample_zipfish(1000, 0.8, &mut rng);
            assert!(x < 1000);
            if x < 500 {
                low_half += 1;
            }
        }
        assert!(low_half > 1200, "skew missing: {low_half}/2000 in low half");
    }
}
