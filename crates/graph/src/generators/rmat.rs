//! R-MAT recursive matrix generator (Chakrabarti et al., SDM 2004).
//!
//! R-MAT graphs have the skewed, community-structured degree
//! distributions typical of social networks; we use it for the Orkut
//! analogue (`OR`).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;

/// Parameters for the R-MAT generator.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Average (raw) edges per vertex; final count is lower after dedup.
    pub edge_factor: u32,
    /// Probability mass of the top-left quadrant.
    pub a: f64,
    /// Probability mass of the top-right quadrant.
    pub b: f64,
    /// Probability mass of the bottom-left quadrant.
    pub c: f64,
    /// Whether to produce a directed graph.
    pub directed: bool,
}

impl Default for RmatParams {
    /// Graph500 defaults: `a=0.57, b=0.19, c=0.19, d=0.05`.
    fn default() -> Self {
        RmatParams { scale: 14, edge_factor: 16, a: 0.57, b: 0.19, c: 0.19, directed: false }
    }
}

/// Generate an R-MAT graph.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if the quadrant probabilities
/// are not a valid distribution or `scale > 31`.
pub fn rmat(params: RmatParams, seed: u64) -> Result<Graph, GraphError> {
    let RmatParams { scale, edge_factor, a, b, c, directed } = params;
    if scale > 31 {
        return Err(GraphError::InvalidParameter(format!("scale {scale} > 31")));
    }
    let d = 1.0 - a - b - c;
    if !(0.0..=1.0).contains(&a)
        || !(0.0..=1.0).contains(&b)
        || !(0.0..=1.0).contains(&c)
        || d < -1e-12
    {
        return Err(GraphError::InvalidParameter(format!(
            "quadrant probabilities a={a} b={b} c={c} d={d} invalid"
        )));
    }
    let n: u32 = 1 << scale;
    let m = u64::from(n) * u64::from(edge_factor);
    if m > u64::from(u32::MAX) / 2 {
        return Err(GraphError::TooLarge { what: "edges", requested: m });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = if directed { GraphBuilder::directed(n) } else { GraphBuilder::undirected(n) };
    builder.reserve(m as usize);
    for _ in 0..m {
        let (u, v) = sample_cell(scale, a, b, c, &mut rng);
        builder.add_edge(u, v);
    }
    builder.build()
}

/// Recursively descend the adjacency matrix, picking a quadrant per level.
/// A small per-level noise (+/- 10%) avoids the grid artefacts of pure
/// R-MAT (as recommended by the Graph500 specification).
fn sample_cell(scale: u32, a: f64, b: f64, c: f64, rng: &mut StdRng) -> (u32, u32) {
    let mut u = 0u32;
    let mut v = 0u32;
    for level in 0..scale {
        let bit = 1u32 << (scale - 1 - level);
        let noise = 0.9 + 0.2 * rng.random::<f64>();
        let a_n = a * noise;
        let b_n = b * (2.0 - noise);
        let c_n = c * (2.0 - noise);
        let total = a_n + b_n + c_n + (1.0 - a - b - c) * noise;
        let r: f64 = rng.random::<f64>() * total;
        if r < a_n {
            // top-left: no bits set
        } else if r < a_n + b_n {
            v |= bit;
        } else if r < a_n + b_n + c_n {
            u |= bit;
        } else {
            u |= bit;
            v |= bit;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RmatParams {
        RmatParams { scale: 10, edge_factor: 8, ..RmatParams::default() }
    }

    #[test]
    fn generates_scale() {
        let g = rmat(small(), 1).unwrap();
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 1024, "got {}", g.num_edges());
    }

    #[test]
    fn deterministic() {
        assert_eq!(rmat(small(), 5).unwrap(), rmat(small(), 5).unwrap());
    }

    #[test]
    fn skewed_degrees() {
        let g = rmat(small(), 2).unwrap();
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let mean = 2.0 * g.mean_degree();
        // A power-law-ish graph has a hub far above the mean degree.
        assert!(f64::from(max_deg) > 5.0 * mean, "max {max_deg} mean {mean}");
    }

    #[test]
    fn rejects_bad_probabilities() {
        let p = RmatParams { a: 0.9, b: 0.3, c: 0.3, ..small() };
        assert!(rmat(p, 0).is_err());
    }

    #[test]
    fn rejects_huge_scale() {
        let p = RmatParams { scale: 40, ..small() };
        assert!(rmat(p, 0).is_err());
    }

    #[test]
    fn directed_variant() {
        let p = RmatParams { directed: true, ..small() };
        let g = rmat(p, 3).unwrap();
        assert!(g.is_directed());
    }
}
