//! Directed preferential attachment (Barabási–Albert style).
//!
//! Models wiki-like graphs (the Enwiki analogue `EN`): new articles link
//! to existing articles with probability proportional to their in-degree,
//! producing a power-law in-degree distribution with a long tail of
//! highly-cited hub pages.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;

/// Parameters for the preferential-attachment generator.
#[derive(Debug, Clone, Copy)]
pub struct PrefAttachParams {
    /// Total number of vertices.
    pub n: u32,
    /// Out-links created per new vertex.
    pub out_links: u32,
    /// Probability of attaching uniformly at random instead of
    /// preferentially (adds noise; `0.0` = pure preferential attachment).
    pub uniform_prob: f64,
    /// Probability of a *topical* link: attach within the recent
    /// `locality_window` instead of globally (wiki articles link heavily
    /// within their topic cluster, which is what makes real wiki graphs
    /// partitionable at all).
    pub locality: f64,
    /// Window of recent vertices for topical links.
    pub locality_window: u32,
    /// Whether the output is directed (wiki graphs are).
    pub directed: bool,
}

impl Default for PrefAttachParams {
    fn default() -> Self {
        PrefAttachParams {
            n: 10_000,
            out_links: 15,
            uniform_prob: 0.15,
            locality: 0.45,
            locality_window: 256,
            directed: true,
        }
    }
}

/// Generate a preferential-attachment graph.
///
/// Uses the classic "repeated endpoints" trick: keeping a flat list of
/// every edge target ever chosen makes sampling proportional-to-degree an
/// O(1) array index.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for degenerate parameters
/// (`n < 2`, zero out-links, probability outside `[0, 1]`).
pub fn prefattach(params: PrefAttachParams, seed: u64) -> Result<Graph, GraphError> {
    let PrefAttachParams { n, out_links, uniform_prob, locality, locality_window, directed } =
        params;
    if !(0.0..=1.0).contains(&locality) || locality_window == 0 {
        return Err(GraphError::InvalidParameter(format!(
            "locality={locality}, locality_window={locality_window}"
        )));
    }
    if n < 2 {
        return Err(GraphError::InvalidParameter(format!("n={n} < 2")));
    }
    if out_links == 0 {
        return Err(GraphError::InvalidParameter("out_links must be > 0".into()));
    }
    if !(0.0..=1.0).contains(&uniform_prob) {
        return Err(GraphError::InvalidParameter(format!("uniform_prob={uniform_prob}")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder =
        if directed { GraphBuilder::directed(n) } else { GraphBuilder::undirected(n) };
    builder.reserve(n as usize * out_links as usize);
    // Flat multiset of past targets; sampling from it is sampling
    // proportional to in-degree.
    let mut targets: Vec<u32> = Vec::with_capacity(n as usize * out_links as usize);
    targets.push(0);
    for v in 1..n {
        let links = out_links.min(v);
        for _ in 0..links {
            let t = if rng.random_bool(locality) {
                // Topical link within the recent window.
                let lo = v.saturating_sub(locality_window);
                rng.random_range(lo..v)
            } else if rng.random_bool(uniform_prob) || targets.is_empty() {
                rng.random_range(0..v)
            } else {
                targets[rng.random_range(0..targets.len())]
            };
            if t != v {
                builder.add_edge(v, t);
                targets.push(t);
            }
        }
        // The new vertex itself becomes attachable.
        targets.push(v);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PrefAttachParams {
        PrefAttachParams { n: 2000, out_links: 8, ..PrefAttachParams::default() }
    }

    #[test]
    fn scale_roughly_n_times_m() {
        let g = prefattach(small(), 1).unwrap();
        assert_eq!(g.num_vertices(), 2000);
        let expected = 2000 * 8;
        assert!(g.num_edges() as f64 > 0.8 * f64::from(expected));
    }

    #[test]
    fn deterministic() {
        assert_eq!(prefattach(small(), 9).unwrap(), prefattach(small(), 9).unwrap());
    }

    #[test]
    fn power_law_in_degree() {
        let g = prefattach(small(), 2).unwrap();
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let mean_in = f64::from(g.num_edges()) / f64::from(g.num_vertices());
        assert!(f64::from(max_in) > 10.0 * mean_in, "max {max_in} mean {mean_in}");
    }

    #[test]
    fn rejects_degenerate() {
        assert!(prefattach(PrefAttachParams { n: 1, ..small() }, 0).is_err());
        assert!(prefattach(PrefAttachParams { out_links: 0, ..small() }, 0).is_err());
        assert!(prefattach(PrefAttachParams { uniform_prob: 1.5, ..small() }, 0).is_err());
    }

    #[test]
    fn directed_flag_respected() {
        let g = prefattach(PrefAttachParams { directed: false, ..small() }, 1).unwrap();
        assert!(!g.is_directed());
    }
}
