//! Synthetic graph generators.
//!
//! The paper evaluates on five graph *categories* — collaboration, road,
//! wiki, web, and social — whose structural differences (degree skew,
//! mean degree, locality, direction) drive the partitioning results. Each
//! generator here reproduces one category's structure at laptop scale:
//!
//! | Generator | Category | Structure |
//! |---|---|---|
//! | [`affiliation`](mod@affiliation) | collaboration (HW) | union of cast cliques, heavy clustering, heavy-tailed degrees |
//! | [`road`](mod@road) | road (DI) | near-planar grid, tiny mean degree, huge diameter |
//! | [`prefattach`](mod@prefattach) | wiki (EN) | directed preferential attachment, power-law in-degree |
//! | [`webcopy`](mod@webcopy) | web (EU) | copying model with host locality, power-law + locality |
//! | [`community`](mod@community) | social (OR) | degree-corrected SBM, heavy tail + communities |
//! | [`rmat`](mod@rmat) | — (ablation) | R-MAT, skew without community structure |
//! | [`gnm`](mod@gnm) | — (baseline) | uniform random G(n, m) |
//! | [`smallworld`](mod@smallworld) | — (ablation) | Watts–Strogatz ring rewiring |
//!
//! All generators are deterministic given their seed.

pub mod affiliation;
pub mod community;
pub mod gnm;
pub mod prefattach;
pub mod rmat;
pub mod road;
pub mod smallworld;
pub mod webcopy;

pub use affiliation::{affiliation, AffiliationParams};
pub use community::{community, CommunityParams};
pub use gnm::gnm;
pub use prefattach::{prefattach, PrefAttachParams};
pub use rmat::{rmat, RmatParams};
pub use road::{road, RoadParams};
pub use smallworld::{smallworld, SmallWorldParams};
pub use webcopy::{webcopy, WebCopyParams};
