//! Uniform random graph G(n, m).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;

/// Generate a uniform random graph with `n` vertices and (approximately)
/// `m` edges. Duplicates and self-loops are dropped, so the resulting
/// edge count can be slightly below `m` for dense requests.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m` exceeds the number of
/// possible edges.
pub fn gnm(n: u32, m: u32, directed: bool, seed: u64) -> Result<Graph, GraphError> {
    let possible = if directed {
        u64::from(n) * u64::from(n.saturating_sub(1))
    } else {
        u64::from(n) * u64::from(n.saturating_sub(1)) / 2
    };
    if u64::from(m) > possible {
        return Err(GraphError::InvalidParameter(format!(
            "requested {m} edges but only {possible} are possible"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = if directed { GraphBuilder::directed(n) } else { GraphBuilder::undirected(n) };
    b.reserve(m as usize);
    // Oversample slightly to compensate for the duplicates and self-loops
    // removed at build time.
    let oversample = (f64::from(m) * 1.05) as u32 + 8;
    for _ in 0..oversample {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_scale() {
        let g = gnm(1000, 5000, false, 1).unwrap();
        assert_eq!(g.num_vertices(), 1000);
        // Dedup can only shrink; oversampling keeps us near the target.
        assert!(g.num_edges() > 4500, "got {}", g.num_edges());
        assert!(g.num_edges() <= 5300);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = gnm(200, 800, true, 7).unwrap();
        let b = gnm(200, 800, true, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = gnm(200, 800, true, 7).unwrap();
        let b = gnm(200, 800, true, 8).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn impossible_density_rejected() {
        assert!(gnm(3, 100, false, 0).is_err());
    }

    #[test]
    fn no_self_loops() {
        let g = gnm(50, 200, true, 3).unwrap();
        assert!(g.edges().all(|(u, v)| u != v));
    }
}
