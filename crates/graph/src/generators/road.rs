//! Road-network generator (the Dimacs9-USA analogue `DI`).
//!
//! Road networks are near-planar: tiny mean degree (~2.4 arcs per
//! vertex), almost no degree skew, and enormous diameter. We model them
//! as a 2-D grid where each adjacent pair is connected by two directed
//! arcs (roads run both ways), a fraction of segments is removed
//! (rivers, mountains), and a few long-range highways are added.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;

/// Parameters for the road-network generator.
#[derive(Debug, Clone, Copy)]
pub struct RoadParams {
    /// Grid width.
    pub width: u32,
    /// Grid height.
    pub height: u32,
    /// Probability that a grid segment is removed.
    pub removal_prob: f64,
    /// Number of long-range highway segments to add.
    pub highways: u32,
}

impl Default for RoadParams {
    fn default() -> Self {
        RoadParams { width: 160, height: 150, removal_prob: 0.4, highways: 200 }
    }
}

/// Generate a directed road-like network.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for empty grids or
/// out-of-range probabilities.
pub fn road(params: RoadParams, seed: u64) -> Result<Graph, GraphError> {
    let RoadParams { width, height, removal_prob, highways } = params;
    if width == 0 || height == 0 {
        return Err(GraphError::InvalidParameter("grid must be non-empty".into()));
    }
    if !(0.0..=1.0).contains(&removal_prob) {
        return Err(GraphError::InvalidParameter(format!("removal_prob={removal_prob}")));
    }
    let n = u64::from(width) * u64::from(height);
    if n > u64::from(u32::MAX) {
        return Err(GraphError::TooLarge { what: "vertices", requested: n });
    }
    let n = n as u32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::directed(n);
    let id = |x: u32, y: u32| y * width + x;
    for y in 0..height {
        for x in 0..width {
            // Right neighbour.
            if x + 1 < width && !rng.random_bool(removal_prob) {
                b.add_edge(id(x, y), id(x + 1, y));
                b.add_edge(id(x + 1, y), id(x, y));
            }
            // Down neighbour.
            if y + 1 < height && !rng.random_bool(removal_prob) {
                b.add_edge(id(x, y), id(x, y + 1));
                b.add_edge(id(x, y + 1), id(x, y));
            }
        }
    }
    for _ in 0..highways {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        b.add_edge(u, v);
        b.add_edge(v, u);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RoadParams {
        RoadParams { width: 40, height: 30, removal_prob: 0.4, highways: 20 }
    }

    #[test]
    fn scale_and_direction() {
        let g = road(small(), 1).unwrap();
        assert_eq!(g.num_vertices(), 1200);
        assert!(g.is_directed());
    }

    #[test]
    fn low_mean_degree() {
        let g = road(small(), 1).unwrap();
        // Full grid would have ratio ~4 arcs/vertex; 40% removal gives ~2.4.
        let ratio = g.mean_degree();
        assert!(ratio > 1.5 && ratio < 3.2, "ratio {ratio}");
    }

    #[test]
    fn no_degree_skew() {
        let g = road(small(), 2).unwrap();
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        // Max possible is 4 grid neighbours x 2 directions + highways.
        assert!(max_deg <= 12, "max {max_deg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(road(small(), 3).unwrap(), road(small(), 3).unwrap());
    }

    #[test]
    fn rejects_empty_grid() {
        assert!(road(RoadParams { width: 0, ..small() }, 0).is_err());
    }

    #[test]
    fn roads_are_bidirectional() {
        let g = road(small(), 4).unwrap();
        for (u, v) in g.edges().take(500) {
            assert!(g.out_neighbors(v).contains(&u), "missing reverse arc {v}->{u}");
        }
    }
}
