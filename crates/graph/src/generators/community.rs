//! Community-structured social-network generator (the Orkut analogue `OR`).
//!
//! A degree-corrected stochastic block model: vertices are divided into
//! communities with power-law sizes; each edge keeps both endpoints in
//! the same community with probability `intra_prob`, otherwise it spans
//! communities. Per-vertex degree propensities follow a power law, which
//! gives the heavy-tailed degrees of real social networks while keeping
//! the strong community structure that makes graphs like Orkut
//! partitionable (plain R-MAT lacks this structure).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;

/// Parameters for the community-structured generator.
#[derive(Debug, Clone, Copy)]
pub struct CommunityParams {
    /// Number of vertices.
    pub n: u32,
    /// Target number of edges (pre-dedup).
    pub m: u32,
    /// Number of communities.
    pub communities: u32,
    /// Probability that an edge is intra-community.
    pub intra_prob: f64,
    /// Power-law exponent of per-vertex degree propensity (> 1).
    pub degree_exponent: f64,
}

impl Default for CommunityParams {
    fn default() -> Self {
        CommunityParams {
            n: 10_000,
            m: 300_000,
            communities: 64,
            intra_prob: 0.8,
            degree_exponent: 2.5,
        }
    }
}

/// Generate an undirected community-structured graph.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for degenerate parameters.
pub fn community(params: CommunityParams, seed: u64) -> Result<Graph, GraphError> {
    let CommunityParams { n, m, communities, intra_prob, degree_exponent } = params;
    if n < 2 || communities == 0 || communities > n {
        return Err(GraphError::InvalidParameter(format!(
            "n={n}, communities={communities} invalid"
        )));
    }
    if !(0.0..=1.0).contains(&intra_prob) {
        return Err(GraphError::InvalidParameter(format!("intra_prob={intra_prob}")));
    }
    if degree_exponent <= 1.0 {
        return Err(GraphError::InvalidParameter("degree_exponent must be > 1".into()));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Community sizes ~ power law, assigned contiguously over vertex ids.
    // (Contiguity is irrelevant to partitioners, which see only topology.)
    let mut boundaries: Vec<u32> = Vec::with_capacity(communities as usize + 1);
    boundaries.push(0);
    let mut raw: Vec<f64> = (0..communities)
        .map(|_| rng.random::<f64>().max(1e-9).powf(-1.0 / degree_exponent))
        .collect();
    let total: f64 = raw.iter().sum();
    let mut acc = 0.0f64;
    for r in &mut raw {
        acc += *r / total;
        boundaries.push(((acc * f64::from(n)) as u32).min(n));
    }
    *boundaries.last_mut().expect("non-empty") = n;

    // Per-vertex degree propensity (power law), cumulative within each
    // community for alias-free sampling via binary search.
    let propensity: Vec<f64> = (0..n)
        .map(|_| rng.random::<f64>().max(1e-9).powf(-1.0 / degree_exponent).min(1e4))
        .collect();
    // Global cumulative distribution.
    let mut global_cdf: Vec<f64> = Vec::with_capacity(n as usize);
    let mut s = 0.0;
    for &p in &propensity {
        s += p;
        global_cdf.push(s);
    }
    // Per-community cumulative distributions.
    let mut comm_cdf: Vec<Vec<f64>> = Vec::with_capacity(communities as usize);
    for c in 0..communities as usize {
        let (lo, hi) = (boundaries[c] as usize, boundaries[c + 1] as usize);
        let mut cdf = Vec::with_capacity(hi - lo);
        let mut s = 0.0;
        for &p in &propensity[lo..hi] {
            s += p;
            cdf.push(s);
        }
        comm_cdf.push(cdf);
    }
    let sample_global = |rng: &mut StdRng| -> u32 {
        let total = *global_cdf.last().expect("n >= 2");
        let x = rng.random::<f64>() * total;
        global_cdf.partition_point(|&c| c < x) as u32
    };

    let mut b = GraphBuilder::undirected(n);
    b.reserve(m as usize);
    for _ in 0..m {
        let u = sample_global(&mut rng);
        // Find u's community by binary search over boundaries.
        let c = boundaries.partition_point(|&bd| bd <= u) - 1;
        let cdf = &comm_cdf[c];
        let v = if rng.random_bool(intra_prob) && cdf.len() > 1 {
            let total = *cdf.last().expect("non-empty");
            let x = rng.random::<f64>() * total;
            boundaries[c] + cdf.partition_point(|&cc| cc < x) as u32
        } else {
            sample_global(&mut rng)
        };
        b.add_edge(u, v.min(n - 1));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CommunityParams {
        CommunityParams { n: 1000, m: 20_000, communities: 16, ..CommunityParams::default() }
    }

    #[test]
    fn scale() {
        let g = community(small(), 1).unwrap();
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() > 10_000, "m = {}", g.num_edges());
        assert!(!g.is_directed());
    }

    #[test]
    fn deterministic() {
        assert_eq!(community(small(), 2).unwrap(), community(small(), 2).unwrap());
    }

    #[test]
    fn heavy_tail() {
        let g = community(small(), 3).unwrap();
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let mean = 2.0 * g.mean_degree();
        assert!(f64::from(max_deg) > 3.0 * mean, "max {max_deg} mean {mean}");
    }

    #[test]
    fn has_community_structure() {
        // Cutting along community boundaries must beat a random cut:
        // count intra-community edges.
        let g = community(small(), 4).unwrap();
        // Communities are contiguous id ranges; use a crude 2-coloring by
        // vertex id halves as a proxy for "some locality exists".
        let intra = g.edges().filter(|&(u, v)| (u < 500) == (v < 500)).count();
        assert!(
            intra as f64 > 0.6 * g.num_edges() as f64,
            "intra fraction {}",
            intra as f64 / g.num_edges() as f64
        );
    }

    #[test]
    fn rejects_bad_params() {
        assert!(community(CommunityParams { intra_prob: 1.5, ..small() }, 0).is_err());
        assert!(community(CommunityParams { communities: 0, ..small() }, 0).is_err());
        assert!(community(CommunityParams { degree_exponent: 0.5, ..small() }, 0).is_err());
    }
}
