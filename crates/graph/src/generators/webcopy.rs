//! Copying-model web-graph generator (Kumar et al., FOCS 2000).
//!
//! Models web crawls (the Eu-2015 analogue `EU`): each new page picks a
//! random *prototype* page and copies each of the prototype's out-links
//! with probability `copy_prob`, otherwise linking uniformly at random.
//! Copying creates the dense bipartite cores and strong locality of real
//! web graphs. An optional host structure confines most uniform links to
//! a local window of recently created pages, mimicking intra-host links.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;

/// Parameters for the copying-model generator.
#[derive(Debug, Clone, Copy)]
pub struct WebCopyParams {
    /// Total number of pages.
    pub n: u32,
    /// Out-links per new page.
    pub out_links: u32,
    /// Probability of copying a prototype link instead of a random link.
    pub copy_prob: f64,
    /// Size of the "host window": uniform links land within the last
    /// `host_window` pages with probability `locality`.
    pub host_window: u32,
    /// Probability that a uniform link is local to the host window.
    pub locality: f64,
}

impl Default for WebCopyParams {
    fn default() -> Self {
        WebCopyParams { n: 10_000, out_links: 14, copy_prob: 0.7, host_window: 64, locality: 0.8 }
    }
}

/// Generate a directed web-like graph with the copying model.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for degenerate parameters.
pub fn webcopy(params: WebCopyParams, seed: u64) -> Result<Graph, GraphError> {
    let WebCopyParams { n, out_links, copy_prob, host_window, locality } = params;
    if n < 2 {
        return Err(GraphError::InvalidParameter(format!("n={n} < 2")));
    }
    if out_links == 0 {
        return Err(GraphError::InvalidParameter("out_links must be > 0".into()));
    }
    if !(0.0..=1.0).contains(&copy_prob) || !(0.0..=1.0).contains(&locality) {
        return Err(GraphError::InvalidParameter(format!(
            "copy_prob={copy_prob} locality={locality} must be in [0,1]"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::directed(n);
    builder.reserve(n as usize * out_links as usize);
    // Adjacency so far, used for prototype copying.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n as usize];
    for v in 1..n {
        // Prototypes are picked near the new page with probability
        // `locality` (pages copy link lists of same-host pages), which
        // produces the strong separability of real web crawls.
        let prototype = if rng.random_bool(locality) {
            let lo = v.saturating_sub(host_window);
            rng.random_range(lo..v)
        } else {
            rng.random_range(0..v)
        };
        let proto_links = adj[prototype as usize].clone();
        let links = out_links.min(v);
        let mut out = Vec::with_capacity(links as usize);
        for j in 0..links {
            let copied = (j as usize) < proto_links.len() && rng.random_bool(copy_prob);
            let t = if copied {
                proto_links[j as usize]
            } else if rng.random_bool(locality) {
                // Intra-host link: land in the recent window.
                let lo = v.saturating_sub(host_window);
                rng.random_range(lo..v)
            } else {
                rng.random_range(0..v)
            };
            if t != v {
                builder.add_edge(v, t);
                out.push(t);
            }
        }
        adj[v as usize] = out;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WebCopyParams {
        WebCopyParams { n: 2000, out_links: 8, ..WebCopyParams::default() }
    }

    #[test]
    fn scale() {
        let g = webcopy(small(), 1).unwrap();
        assert_eq!(g.num_vertices(), 2000);
        assert!(g.num_edges() as f64 > 0.7 * 2000.0 * 8.0);
        assert!(g.is_directed());
    }

    #[test]
    fn deterministic() {
        assert_eq!(webcopy(small(), 4).unwrap(), webcopy(small(), 4).unwrap());
    }

    #[test]
    fn skewed_in_degree() {
        let g = webcopy(small(), 2).unwrap();
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let mean_in = f64::from(g.num_edges()) / f64::from(g.num_vertices());
        assert!(f64::from(max_in) > 8.0 * mean_in, "max {max_in} mean {mean_in}");
    }

    #[test]
    fn locality_present() {
        let g = webcopy(small(), 3).unwrap();
        // Count edges that stay within the host window distance.
        let local = g
            .edges()
            .filter(|&(u, v)| u.abs_diff(v) <= small().host_window)
            .count();
        assert!(local as f64 > 0.2 * g.num_edges() as f64);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(webcopy(WebCopyParams { copy_prob: 1.4, ..small() }, 0).is_err());
        assert!(webcopy(WebCopyParams { n: 0, ..small() }, 0).is_err());
    }
}
