//! Watts–Strogatz small-world generator.
//!
//! Not one of the paper's five categories; used in ablation benches and
//! property tests as a graph with high clustering but *no* degree skew,
//! isolating the effect of skew on partitioner behaviour.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;

/// Parameters for the Watts–Strogatz generator.
#[derive(Debug, Clone, Copy)]
pub struct SmallWorldParams {
    /// Number of vertices on the ring.
    pub n: u32,
    /// Each vertex connects to `k` nearest neighbours on each side.
    pub k: u32,
    /// Probability of rewiring each edge to a random endpoint.
    pub rewire_prob: f64,
}

impl Default for SmallWorldParams {
    fn default() -> Self {
        SmallWorldParams { n: 10_000, k: 4, rewire_prob: 0.1 }
    }
}

/// Generate an undirected Watts–Strogatz small-world graph.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k >= n / 2` or the
/// rewiring probability is out of range.
pub fn smallworld(params: SmallWorldParams, seed: u64) -> Result<Graph, GraphError> {
    let SmallWorldParams { n, k, rewire_prob } = params;
    if n < 4 || k == 0 || 2 * k >= n {
        return Err(GraphError::InvalidParameter(format!("n={n}, k={k} invalid (need 2k < n)")));
    }
    if !(0.0..=1.0).contains(&rewire_prob) {
        return Err(GraphError::InvalidParameter(format!("rewire_prob={rewire_prob}")));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    b.reserve(n as usize * k as usize);
    for v in 0..n {
        for j in 1..=k {
            let mut t = (v + j) % n;
            if rng.random_bool(rewire_prob) {
                t = rng.random_range(0..n);
            }
            b.add_edge(v, t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SmallWorldParams {
        SmallWorldParams { n: 500, k: 3, rewire_prob: 0.1 }
    }

    #[test]
    fn scale() {
        let g = smallworld(small(), 1).unwrap();
        assert_eq!(g.num_vertices(), 500);
        // n*k raw edges minus a few rewiring collisions.
        assert!(g.num_edges() > 1400);
    }

    #[test]
    fn no_skew() {
        let g = smallworld(small(), 2).unwrap();
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg < 20, "max degree {max_deg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(smallworld(small(), 3).unwrap(), smallworld(small(), 3).unwrap());
    }

    #[test]
    fn rejects_k_too_large() {
        assert!(smallworld(SmallWorldParams { n: 10, k: 5, rewire_prob: 0.0 }, 0).is_err());
    }

    #[test]
    fn zero_rewire_is_ring_lattice() {
        let g = smallworld(SmallWorldParams { n: 100, k: 2, rewire_prob: 0.0 }, 0).unwrap();
        assert_eq!(g.num_edges(), 200);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
    }
}
