//! Degree-distribution statistics.
//!
//! Used in tests and in the dataset registry to check that each synthetic
//! analogue reproduces the structural signature of its category (mean
//! degree, tail skew).

use crate::csr::Graph;

/// Summary statistics over a graph's (total) degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: u32,
    /// Maximum degree.
    pub max: u32,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: u32,
    /// 99th-percentile degree.
    pub p99: u32,
    /// Gini coefficient of the degree distribution in `[0, 1]`;
    /// 0 = perfectly uniform, close to 1 = extremely skewed.
    pub gini: f64,
}

impl DegreeStats {
    /// Compute the statistics for `graph`.
    pub fn compute(graph: &Graph) -> Self {
        let mut degrees: Vec<u32> = graph.vertices().map(|v| graph.degree(v)).collect();
        if degrees.is_empty() {
            return DegreeStats { min: 0, max: 0, mean: 0.0, median: 0, p99: 0, gini: 0.0 };
        }
        degrees.sort_unstable();
        let n = degrees.len();
        let sum: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
        let mean = sum as f64 / n as f64;
        let median = degrees[n / 2];
        let p99 = degrees[((n as f64 * 0.99) as usize).min(n - 1)];
        // Gini from the sorted degrees: G = (2 * sum(i * x_i) / (n * sum(x)))
        // - (n + 1) / n, with 1-based ranks i.
        let gini = if sum == 0 {
            0.0
        } else {
            let weighted: f64 = degrees
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64 + 1.0) * f64::from(d))
                .sum();
            (2.0 * weighted) / (n as f64 * sum as f64) - (n as f64 + 1.0) / n as f64
        };
        DegreeStats { min: degrees[0], max: degrees[n - 1], mean, median, p99, gini }
    }

    /// Whether the distribution is heavy-tailed: the maximum degree is at
    /// least `factor` times the mean.
    pub fn is_heavy_tailed(&self, factor: f64) -> bool {
        f64::from(self.max) > factor * self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn uniform_ring_has_low_gini() {
        // 0-1-2-3-0 ring: every vertex has degree 2.
        let g =
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], false).unwrap();
        let s = DegreeStats::compute(&g);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.mean, 2.0);
        assert!(s.gini.abs() < 1e-9, "gini {}", s.gini);
        assert!(!s.is_heavy_tailed(2.0));
    }

    #[test]
    fn star_is_skewed() {
        // Star: center 0 connected to 1..=5.
        let edges: Vec<(u32, u32)> = (1..=5).map(|v| (0, v)).collect();
        let g = Graph::from_edges(6, &edges, false).unwrap();
        let s = DegreeStats::compute(&g);
        assert_eq!(s.max, 5);
        assert_eq!(s.min, 1);
        assert!(s.gini > 0.3);
        assert!(s.is_heavy_tailed(2.0));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[], false).unwrap();
        let s = DegreeStats::compute(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.gini, 0.0);
    }

    #[test]
    fn isolated_vertices_counted() {
        let g = Graph::from_edges(10, &[(0, 1)], false).unwrap();
        let s = DegreeStats::compute(&g);
        assert_eq!(s.min, 0);
        assert_eq!(s.median, 0);
    }

    #[test]
    fn directed_degree_is_in_plus_out() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0)], true).unwrap();
        let s = DegreeStats::compute(&g);
        assert_eq!(s.max, 2);
        assert_eq!(s.min, 2);
    }
}
