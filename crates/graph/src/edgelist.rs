//! Plain-text edge-list I/O.
//!
//! The format is the de-facto standard used by SNAP / KONECT dumps: one
//! edge per line, whitespace-separated endpoint ids, `#`-prefixed comment
//! lines. Vertex ids are used as-is (the id space is the maximum id + 1).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;

/// Read an edge list from any reader.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines and
/// [`GraphError::Io`] on reader failures.
pub fn read_edge_list<R: Read>(reader: R, directed: bool) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id: u32 = 0;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u = parse_id(it.next(), idx + 1)?;
        let v = parse_id(it.next(), idx + 1)?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = if edges.is_empty() { 0 } else { max_id + 1 };
    let mut b = if directed { GraphBuilder::directed(n) } else { GraphBuilder::undirected(n) };
    b.reserve(edges.len());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

fn parse_id(tok: Option<&str>, line: usize) -> Result<u32, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex ids".into(),
    })?;
    tok.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("bad vertex id {tok:?}: {e}"),
    })
}

/// Read an edge list from a file path.
///
/// # Errors
///
/// See [`read_edge_list`]; additionally fails if the file cannot be opened.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P, directed: bool) -> Result<Graph, GraphError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f, directed)
}

/// Write a graph's canonical edge list to any writer.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on writer failures.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# gnnpart edge list: {} vertices, {} edges, directed={}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.is_directed()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Write a graph's canonical edge list to a file path.
///
/// # Errors
///
/// See [`write_edge_list`]; additionally fails if the file cannot be
/// created.
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    let f = std::fs::File::create(path)?;
    write_edge_list(graph, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_edge_list() {
        let text = "# comment\n0 1\n1 2\n\n% another comment\n2 0\n";
        let g = read_edge_list(text.as_bytes(), true).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn rejects_single_token_line() {
        let err = read_edge_list("0\n".as_bytes(), true).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_non_numeric() {
        let err = read_edge_list("a b\n".as_bytes(), true).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edge_list("".as_bytes(), false).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn roundtrip_preserves_graph() {
        let g = crate::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], true).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), true).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_undirected() {
        let g = crate::Graph::from_edges(3, &[(0, 1), (1, 2)], false).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(buf.as_slice(), false).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn tab_separated_accepted() {
        let g = read_edge_list("0\t1\n".as_bytes(), true).unwrap();
        assert_eq!(g.num_edges(), 1);
    }
}
