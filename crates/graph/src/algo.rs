//! Classic graph algorithms used for dataset validation, partition
//! diagnostics and the CLI's `stats` command.

use std::collections::VecDeque;

use crate::csr::Graph;

/// Connected components (weakly connected for directed graphs).
///
/// Returns `(component_id_per_vertex, component_count)`.
pub fn connected_components(graph: &Graph) -> (Vec<u32>, u32) {
    const UNVISITED: u32 = u32::MAX;
    let n = graph.num_vertices() as usize;
    let mut component = vec![UNVISITED; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in graph.vertices() {
        if component[start as usize] != UNVISITED {
            continue;
        }
        let id = count;
        count += 1;
        component[start as usize] = id;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            // Weak connectivity: follow both directions.
            for &w in graph.out_neighbors(v) {
                if component[w as usize] == UNVISITED {
                    component[w as usize] = id;
                    queue.push_back(w);
                }
            }
            if graph.is_directed() {
                for &w in graph.in_neighbors(v) {
                    if component[w as usize] == UNVISITED {
                        component[w as usize] = id;
                        queue.push_back(w);
                    }
                }
            }
        }
    }
    (component, count)
}

/// Size of the largest (weakly) connected component.
pub fn largest_component_size(graph: &Graph) -> u32 {
    let (components, count) = connected_components(graph);
    if count == 0 {
        return 0;
    }
    let mut sizes = vec![0u32; count as usize];
    for &c in &components {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// The lowest-id vertex of the largest (weakly) connected component —
/// a deterministic BFS seed guaranteed not to land in a satellite
/// component (`None` on the empty graph). [`diameter_lower_bound`]
/// started from an arbitrary seed only explores that seed's component,
/// so callers measuring the *graph's* diameter should seed here.
pub fn largest_component_vertex(graph: &Graph) -> Option<u32> {
    let (components, count) = connected_components(graph);
    if count == 0 {
        return None;
    }
    let mut sizes = vec![0u32; count as usize];
    for &c in &components {
        sizes[c as usize] += 1;
    }
    let biggest = (0..count).max_by_key(|&c| sizes[c as usize])?;
    components.iter().position(|&c| c == biggest).map(|v| v as u32)
}

/// BFS hop distances from `source` (undirected traversal), `u32::MAX`
/// for unreachable vertices.
pub fn bfs_distances(graph: &Graph, source: u32) -> Vec<u32> {
    const INF: u32 = u32::MAX;
    let mut dist = vec![INF; graph.num_vertices() as usize];
    dist[source as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        let visit = |w: u32, dist: &mut Vec<u32>, queue: &mut VecDeque<u32>| {
            if dist[w as usize] == INF {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        };
        for &w in graph.out_neighbors(v) {
            visit(w, &mut dist, &mut queue);
        }
        if graph.is_directed() {
            for &w in graph.in_neighbors(v) {
                visit(w, &mut dist, &mut queue);
            }
        }
    }
    dist
}

/// Estimate the diameter by double-sweep BFS: the eccentricity of the
/// farthest vertex from `seed` lower-bounds the true diameter and is
/// exact on trees; good enough to distinguish road networks (huge
/// diameter) from social networks (tiny diameter).
pub fn diameter_lower_bound(graph: &Graph, seed: u32) -> u32 {
    if graph.num_vertices() == 0 {
        return 0;
    }
    let first = bfs_distances(graph, seed);
    let far = first
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != u32::MAX)
        .max_by_key(|(_, &d)| d)
        .map(|(v, _)| v as u32)
        .unwrap_or(seed);
    let second = bfs_distances(graph, far);
    second.into_iter().filter(|&d| d != u32::MAX).max().unwrap_or(0)
}

/// Global clustering proxy: the fraction of sampled length-2 paths that
/// close into triangles. Deterministic sampling of up to
/// `sample_vertices` centres keeps this O(sample · deg²).
pub fn clustering_coefficient(graph: &Graph, sample_vertices: u32) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let step = (n / sample_vertices.max(1)).max(1);
    let mut wedges = 0u64;
    let mut closed = 0u64;
    let mut v = 0u32;
    while v < n {
        let nbrs = graph.out_neighbors(v);
        // Cap hub work: quadratic in degree.
        let lim = nbrs.len().min(64);
        for i in 0..lim {
            for j in (i + 1)..lim {
                wedges += 1;
                let (a, b) = (nbrs[i], nbrs[j]);
                if graph.out_neighbors(a).contains(&b) || graph.in_neighbors(a).contains(&b) {
                    closed += 1;
                }
            }
        }
        v = v.saturating_add(step);
    }
    if wedges == 0 {
        0.0
    } else {
        closed as f64 / wedges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn two_triangles() -> Graph {
        // Components {0,1,2} and {3,4,5}, each a triangle.
        Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)], false).unwrap()
    }

    #[test]
    fn components_counted() {
        let g = two_triangles();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = Graph::from_edges(4, &[(0, 1)], false).unwrap();
        let (_, count) = connected_components(&g);
        assert_eq!(count, 3);
    }

    #[test]
    fn directed_weak_connectivity() {
        // 0 -> 1 <- 2 : weakly connected.
        let g = Graph::from_edges(3, &[(0, 1), (2, 1)], true).unwrap();
        let (_, count) = connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], false).unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bfs_unreachable_is_inf() {
        let g = Graph::from_edges(3, &[(0, 1)], false).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn diameter_of_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)], false).unwrap();
        assert_eq!(diameter_lower_bound(&g, 2), 4);
    }

    #[test]
    fn road_has_larger_diameter_than_social() {
        use crate::{DatasetId, GraphScale};
        // Seed the double sweep inside the largest component: vertex 0
        // may sit in a tiny satellite component, whose eccentricity
        // says nothing about the graph's diameter.
        let road = DatasetId::DI.generate(GraphScale::Tiny).unwrap();
        let social = DatasetId::OR.generate(GraphScale::Tiny).unwrap();
        let road_d = diameter_lower_bound(&road, largest_component_vertex(&road).unwrap());
        let social_d = diameter_lower_bound(&social, largest_component_vertex(&social).unwrap());
        assert!(
            road_d >= 3 * social_d.max(1),
            "road {road_d} vs social {social_d}"
        );
    }

    #[test]
    fn largest_component_vertex_picks_the_big_one() {
        // Components {0,1} and {2,3,4}: the seed must come from the
        // triangle, and it is the lowest id there.
        let g =
            Graph::from_edges(5, &[(0, 1), (2, 3), (3, 4), (2, 4)], false).unwrap();
        assert_eq!(largest_component_vertex(&g), Some(2));
        let empty = Graph::from_edges(0, &[], false).unwrap();
        assert_eq!(largest_component_vertex(&empty), None);
    }

    #[test]
    fn clustering_high_on_cliques() {
        let g = two_triangles();
        assert!(clustering_coefficient(&g, 10) > 0.9);
    }

    #[test]
    fn clustering_zero_on_star() {
        let edges: Vec<(u32, u32)> = (1..6).map(|v| (0, v)).collect();
        let g = Graph::from_edges(6, &edges, false).unwrap();
        assert_eq!(clustering_coefficient(&g, 10), 0.0);
    }

    #[test]
    fn collaboration_graph_is_clustered() {
        use crate::{DatasetId, GraphScale};
        let hw = DatasetId::HW.generate(GraphScale::Tiny).unwrap();
        let en = DatasetId::EN.generate(GraphScale::Tiny).unwrap();
        assert!(
            clustering_coefficient(&hw, 200) > 2.0 * clustering_coefficient(&en, 200),
            "HW {} vs EN {}",
            clustering_coefficient(&hw, 200),
            clustering_coefficient(&en, 200)
        );
    }
}
