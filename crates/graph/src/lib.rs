//! # gp-graph — graph substrate for the partitioning study
//!
//! This crate provides everything the study needs from a graph library:
//!
//! * [`Graph`] — a compact, immutable CSR graph (directed or undirected)
//!   with `u32` vertex ids, out-/in-adjacency and a canonical edge list.
//! * [`GraphBuilder`] — deduplicating builder used by loaders and generators.
//! * [`generators`] — synthetic graph generators covering the five graph
//!   *categories* of the paper (collaboration, road, wiki, web, social).
//! * [`datasets`] — registry of the five scaled-down analogue datasets
//!   (HW, DI, EN, EU, OR) with reproducible seeds.
//! * [`splits`] — random train/validation/test vertex splits (10/10/80 in
//!   the paper).
//! * [`stats`] — degree-distribution statistics used to validate that the
//!   generated analogues have the right structural shape.
//! * [`stream`] — seeded dynamic-graph mutation streams (insertions,
//!   deletions, vertex arrivals) with replayable batch plans and a
//!   mutable [`StreamGraph`] that snapshots back to CSR (extension).
//! * [`edgelist`] — plain-text edge-list reading/writing.
//! * [`algo`] — connected components, BFS, diameter and clustering
//!   estimates used for validation and diagnostics.
//!
//! The whole crate is deterministic: every random operation takes an
//! explicit seed.

pub mod algo;
pub mod builder;
pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod error;
pub mod generators;
pub mod splits;
pub mod stats;
pub mod stream;

pub use builder::GraphBuilder;
pub use csr::{Graph, VertexId};
pub use datasets::{DatasetId, GraphScale};
pub use error::GraphError;
pub use splits::VertexSplit;
pub use stats::DegreeStats;
pub use stream::{MutationBatch, StreamGraph, StreamPlan, StreamSpec};
