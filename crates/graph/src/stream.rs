//! Seeded, deterministic dynamic-graph mutation streams.
//!
//! The paper treats every graph as static; this module supplies the
//! dynamic workload for the streaming extension (ROADMAP item 2). A
//! [`StreamSpec`] describes a batched mutation schedule — edge
//! insertions, edge deletions and vertex arrivals layered over any
//! existing graph — and [`StreamPlan::generate`] expands it into an
//! explicit, replayable [`MutationBatch`] list. Generation is a pure
//! function of `(base graph, spec)`: replaying the same plan (or
//! regenerating it from the same inputs) is bit-identical, which is
//! what lets the incremental partitioners and both engines be
//! conformance-tested at every thread count.
//!
//! [`StreamGraph`] is the mutable counterpart of [`Graph`]: an
//! append-only edge log with liveness flags. [`StreamGraph::snapshot`]
//! materialises the current live edges — in **log order**, which
//! [`Graph::from_edges`] preserves — so the snapshot's canonical edge
//! order equals arrival order. Incremental partitioners rely on that
//! property for the exact incremental-vs-batch oracle.
//!
//! Sampling model: new-edge endpoints are drawn degree-proportionally
//! (pick a uniform live edge, then one of its endpoints), which keeps
//! the generated churn power-law-shaped like the base generators;
//! deletions are uniform over live edges, so deletions only ever
//! target live edges *by construction*.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::csr::Graph;
use crate::error::GraphError;

/// How many rejection-sampling attempts to spend on one fresh edge
/// before giving up on it (duplicates and self-loops are rejected).
/// Dense graphs near saturation simply yield fewer inserts per batch.
const INSERT_ATTEMPTS: u32 = 64;

/// Parameters of a seeded mutation stream.
///
/// All counts are *per batch*; the plan runs `batches` batches. Vertex
/// arrivals add brand-new vertex ids (appended past the current id
/// range), each wired to the existing graph with `edges_per_arrival`
/// degree-proportional edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSpec {
    /// Number of mutation batches.
    pub batches: u32,
    /// Edge insertions per batch (between existing vertices).
    pub inserts_per_batch: u32,
    /// Edge deletions per batch (uniform over live edges).
    pub deletes_per_batch: u32,
    /// New vertices per batch.
    pub arrivals_per_batch: u32,
    /// Edges wiring each arriving vertex to the existing graph.
    pub edges_per_arrival: u32,
    /// Seed for the whole stream.
    pub seed: u64,
}

impl StreamSpec {
    /// A small default schedule: growth-biased churn (more insertions
    /// than deletions) with a trickle of vertex arrivals.
    pub fn paper_default(batches: u32, seed: u64) -> Self {
        StreamSpec {
            batches,
            inserts_per_batch: 64,
            deletes_per_batch: 32,
            arrivals_per_batch: 4,
            edges_per_arrival: 3,
            seed,
        }
    }

    /// Validate the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if `batches` is zero or
    /// every mutation rate is zero (a stream that never mutates is
    /// almost certainly a configuration mistake), or if arrivals are
    /// requested with `edges_per_arrival == 0` (isolated arrivals never
    /// influence partitioning quality, so they are rejected too).
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.batches == 0 {
            return Err(GraphError::InvalidParameter("stream: batches must be >= 1".into()));
        }
        if self.inserts_per_batch == 0
            && self.deletes_per_batch == 0
            && self.arrivals_per_batch == 0
        {
            return Err(GraphError::InvalidParameter(
                "stream: at least one of inserts/deletes/arrivals per batch must be > 0".into(),
            ));
        }
        if self.arrivals_per_batch > 0 && self.edges_per_arrival == 0 {
            return Err(GraphError::InvalidParameter(
                "stream: arrivals_per_batch > 0 requires edges_per_arrival >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// One batch of explicit mutations. All edges are normalised the way
/// the target graph normalises them (undirected: `u <= v`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationBatch {
    /// Number of brand-new vertices this batch appends.
    pub new_vertices: u32,
    /// Edges inserted this batch (wiring edges of arrivals included),
    /// in insertion order.
    pub inserts: Vec<(u32, u32)>,
    /// Live edges deleted this batch, in deletion order. Deletions are
    /// applied after this batch's insertions.
    pub deletes: Vec<(u32, u32)>,
}

impl MutationBatch {
    /// Total mutation count of the batch.
    pub fn num_mutations(&self) -> usize {
        self.inserts.len() + self.deletes.len() + self.new_vertices as usize
    }
}

/// A fully expanded, replayable mutation plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamPlan {
    spec: StreamSpec,
    batches: Vec<MutationBatch>,
}

impl StreamPlan {
    /// Expand `spec` into explicit batches against `base`.
    ///
    /// Pure function of its inputs: equal `(base, spec)` pairs yield
    /// bit-identical plans.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if the spec is invalid
    /// and [`GraphError::TooLarge`] if arrivals would overflow the
    /// `u32` id space.
    pub fn generate(base: &Graph, spec: &StreamSpec) -> Result<StreamPlan, GraphError> {
        spec.validate()?;
        let grown = u64::from(base.num_vertices())
            + u64::from(spec.batches) * u64::from(spec.arrivals_per_batch);
        if grown > u64::from(u32::MAX) {
            return Err(GraphError::TooLarge { what: "vertices", requested: grown });
        }

        let mut rng = StdRng::seed_from_u64(spec.seed);
        let directed = base.is_directed();
        let mut num_vertices = base.num_vertices();
        // Live edge set with O(1) membership and uniform sampling.
        let mut live: Vec<(u32, u32)> = base.edges().collect();
        let mut pos: HashMap<(u32, u32), usize> =
            live.iter().enumerate().map(|(i, &e)| (e, i)).collect();

        let norm = |u: u32, v: u32| if directed || u <= v { (u, v) } else { (v, u) };
        let mut batches = Vec::with_capacity(spec.batches as usize);
        for _ in 0..spec.batches {
            let mut batch = MutationBatch::default();

            // Endpoint sampling: degree-proportional via a uniform live
            // edge; uniform over vertices when no edge is live yet.
            let mut endpoint = |rng: &mut StdRng, live: &[(u32, u32)], n: u32| -> Option<u32> {
                if live.is_empty() {
                    (n > 0).then(|| rng.random_range(0..n))
                } else {
                    let (u, v) = live[rng.random_range(0..live.len())];
                    Some(if rng.random_range(0..2u32) == 0 { u } else { v })
                }
            };

            // Plain insertions between existing vertices.
            for _ in 0..spec.inserts_per_batch {
                if num_vertices < 2 {
                    break;
                }
                for _ in 0..INSERT_ATTEMPTS {
                    let (Some(u), Some(v)) = (
                        endpoint(&mut rng, &live, num_vertices),
                        endpoint(&mut rng, &live, num_vertices),
                    ) else {
                        break;
                    };
                    if u == v {
                        continue;
                    }
                    let e = norm(u, v);
                    if pos.contains_key(&e) {
                        continue;
                    }
                    pos.insert(e, live.len());
                    live.push(e);
                    batch.inserts.push(e);
                    break;
                }
            }

            // Vertex arrivals, wired degree-proportionally to the graph
            // as it stood before this batch's arrivals (plus earlier
            // wiring edges of the same batch, which are live already).
            for _ in 0..spec.arrivals_per_batch {
                let fresh = num_vertices;
                num_vertices += 1;
                batch.new_vertices += 1;
                for _ in 0..spec.edges_per_arrival {
                    for _ in 0..INSERT_ATTEMPTS {
                        let Some(t) = endpoint(&mut rng, &live, fresh) else { break };
                        if t == fresh {
                            continue;
                        }
                        let e = norm(fresh, t);
                        if pos.contains_key(&e) {
                            continue;
                        }
                        pos.insert(e, live.len());
                        live.push(e);
                        batch.inserts.push(e);
                        break;
                    }
                }
            }

            // Deletions: uniform over the live set (which already
            // includes this batch's insertions), swap-removed so the
            // sampling pool stays compact.
            for _ in 0..spec.deletes_per_batch {
                if live.is_empty() {
                    break;
                }
                let i = rng.random_range(0..live.len());
                let e = live.swap_remove(i);
                pos.remove(&e);
                if let Some(moved) = live.get(i) {
                    pos.insert(*moved, i);
                }
                batch.deletes.push(e);
            }

            batches.push(batch);
        }
        Ok(StreamPlan { spec: *spec, batches })
    }

    /// The spec this plan was generated from.
    pub fn spec(&self) -> &StreamSpec {
        &self.spec
    }

    /// The expanded batches, in order.
    pub fn batches(&self) -> &[MutationBatch] {
        &self.batches
    }

    /// Number of batches (equals `spec().batches`).
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the plan has no batches (never true for a generated
    /// plan; specs validate `batches >= 1`).
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }
}

/// A mutable graph: append-only edge log + liveness flags.
///
/// The log preserves arrival order; [`StreamGraph::snapshot`] emits
/// live edges in log order, so the snapshot's canonical edge list is
/// ordered by arrival. A deleted-then-reinserted edge occupies a fresh
/// log slot (the old one stays dead), matching how a streaming
/// partitioner would observe it.
#[derive(Debug, Clone)]
pub struct StreamGraph {
    directed: bool,
    num_vertices: u32,
    /// Append-only normalised edge log.
    log: Vec<(u32, u32)>,
    /// Liveness flag per log entry.
    alive: Vec<bool>,
    /// Live edge -> log index (the *latest* slot for reinserted edges).
    live: HashMap<(u32, u32), u32>,
}

impl StreamGraph {
    /// Start from a static base graph (its canonical edge order seeds
    /// the log).
    pub fn new(base: &Graph) -> Self {
        let log: Vec<(u32, u32)> = base.edges().collect();
        let live = log.iter().enumerate().map(|(i, &e)| (e, i as u32)).collect();
        StreamGraph {
            directed: base.is_directed(),
            num_vertices: base.num_vertices(),
            alive: vec![true; log.len()],
            log,
            live,
        }
    }

    /// Whether the graph is directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Current vertex count (grows with arrivals, never shrinks).
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Current live edge count.
    pub fn num_live_edges(&self) -> u32 {
        self.live.len() as u32
    }

    /// Total log length (live + dead entries).
    pub fn log_len(&self) -> u32 {
        self.log.len() as u32
    }

    /// Whether the normalised edge `e` is currently live.
    pub fn is_live(&self, u: u32, v: u32) -> bool {
        self.live.contains_key(&self.norm(u, v))
    }

    /// Live edges in log (arrival) order.
    pub fn live_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.log.iter().zip(self.alive.iter()).filter(|(_, &a)| a).map(|(&e, _)| e)
    }

    fn norm(&self, u: u32, v: u32) -> (u32, u32) {
        if self.directed || u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Apply one mutation batch: grow the id space, insert, delete.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] for an endpoint outside
    /// the (grown) id space and [`GraphError::InvalidParameter`] for a
    /// self-loop, a duplicate insertion or a deletion of a non-live
    /// edge. Plans from [`StreamPlan::generate`] never trigger these.
    pub fn apply(&mut self, batch: &MutationBatch) -> Result<(), GraphError> {
        let grown = u64::from(self.num_vertices) + u64::from(batch.new_vertices);
        if grown > u64::from(u32::MAX) {
            return Err(GraphError::TooLarge { what: "vertices", requested: grown });
        }
        self.num_vertices = grown as u32;
        for &(u, v) in &batch.inserts {
            self.insert(u, v)?;
        }
        for &(u, v) in &batch.deletes {
            self.delete(u, v)?;
        }
        Ok(())
    }

    /// Insert one edge (appends a live log entry).
    ///
    /// # Errors
    ///
    /// See [`StreamGraph::apply`].
    pub fn insert(&mut self, u: u32, v: u32) -> Result<(), GraphError> {
        if u >= self.num_vertices || v >= self.num_vertices {
            return Err(GraphError::VertexOutOfRange {
                vertex: u64::from(u.max(v)),
                num_vertices: u64::from(self.num_vertices),
            });
        }
        if u == v {
            return Err(GraphError::InvalidParameter(format!("stream: self-loop ({u}, {v})")));
        }
        let e = self.norm(u, v);
        if self.live.contains_key(&e) {
            return Err(GraphError::InvalidParameter(format!(
                "stream: duplicate insertion of live edge ({}, {})",
                e.0, e.1
            )));
        }
        self.live.insert(e, self.log.len() as u32);
        self.log.push(e);
        self.alive.push(true);
        Ok(())
    }

    /// Delete one live edge (marks its latest log entry dead).
    ///
    /// # Errors
    ///
    /// See [`StreamGraph::apply`].
    pub fn delete(&mut self, u: u32, v: u32) -> Result<(), GraphError> {
        let e = self.norm(u, v);
        match self.live.remove(&e) {
            Some(idx) => {
                self.alive[idx as usize] = false;
                Ok(())
            }
            None => Err(GraphError::InvalidParameter(format!(
                "stream: deletion of non-live edge ({}, {})",
                e.0, e.1
            ))),
        }
    }

    /// Materialise the current live graph. Live edges are emitted in
    /// log order and [`Graph::from_edges`] preserves edge order, so
    /// `snapshot().edges()` enumerates edges by arrival.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::TooLarge`] if the live arc count would
    /// overflow `u32` (the log itself guards vertex ids).
    pub fn snapshot(&self) -> Result<Graph, GraphError> {
        let edges: Vec<(u32, u32)> = self.live_edges().collect();
        Graph::from_edges(self.num_vertices, &edges, self.directed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{DatasetId, GraphScale};

    fn base() -> Graph {
        DatasetId::OR.generate(GraphScale::Tiny).unwrap()
    }

    fn spec(seed: u64) -> StreamSpec {
        StreamSpec {
            batches: 8,
            inserts_per_batch: 10,
            deletes_per_batch: 6,
            arrivals_per_batch: 2,
            edges_per_arrival: 2,
            seed,
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        let g = base();
        let mut s = spec(1);
        s.batches = 0;
        assert!(StreamPlan::generate(&g, &s).is_err());
        let mut s = spec(1);
        s.inserts_per_batch = 0;
        s.deletes_per_batch = 0;
        s.arrivals_per_batch = 0;
        assert!(StreamPlan::generate(&g, &s).is_err());
        let mut s = spec(1);
        s.edges_per_arrival = 0;
        assert!(StreamPlan::generate(&g, &s).is_err());
    }

    #[test]
    fn generation_is_deterministic() {
        let g = base();
        let a = StreamPlan::generate(&g, &spec(7)).unwrap();
        let b = StreamPlan::generate(&g, &spec(7)).unwrap();
        assert_eq!(a, b);
        let c = StreamPlan::generate(&g, &spec(8)).unwrap();
        assert_ne!(a, c, "different seeds should mutate differently");
    }

    #[test]
    fn apply_tracks_live_set_and_snapshots_are_valid() {
        let g = base();
        let plan = StreamPlan::generate(&g, &spec(3)).unwrap();
        let mut sg = StreamGraph::new(&g);
        assert_eq!(sg.num_live_edges(), g.num_edges());
        for batch in plan.batches() {
            // Plan deletions must always be live when applied.
            sg.apply(batch).expect("plan mutations are valid by construction");
            let snap = sg.snapshot().unwrap();
            assert_eq!(snap.num_edges(), sg.num_live_edges());
            assert_eq!(snap.num_vertices(), sg.num_vertices());
        }
        assert_eq!(
            sg.num_vertices(),
            g.num_vertices() + 8 * 2,
            "arrivals appended each batch"
        );
        assert!(sg.log_len() >= sg.num_live_edges());
    }

    #[test]
    fn snapshot_preserves_log_order() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2)], false).unwrap();
        let mut sg = StreamGraph::new(&g);
        sg.insert(3, 0).unwrap();
        sg.delete(1, 2).unwrap();
        sg.insert(2, 3).unwrap();
        let snap = sg.snapshot().unwrap();
        let edges: Vec<_> = snap.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (2, 3)], "live edges in arrival order");
    }

    #[test]
    fn reinsertion_takes_a_fresh_log_slot() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], false).unwrap();
        let mut sg = StreamGraph::new(&g);
        sg.delete(0, 1).unwrap();
        sg.insert(1, 0).unwrap();
        assert_eq!(sg.log_len(), 3);
        assert_eq!(sg.num_live_edges(), 2);
        let edges: Vec<_> = sg.snapshot().unwrap().edges().collect();
        assert_eq!(edges, vec![(1, 2), (0, 1)], "reinserted edge is newest");
    }

    #[test]
    fn duplicate_insert_and_dead_delete_rejected() {
        let g = Graph::from_edges(3, &[(0, 1)], false).unwrap();
        let mut sg = StreamGraph::new(&g);
        assert!(sg.insert(1, 0).is_err(), "duplicate (normalised) insert");
        assert!(sg.insert(1, 1).is_err(), "self-loop");
        assert!(sg.insert(0, 3).is_err(), "out of range");
        assert!(sg.delete(1, 2).is_err(), "never-live edge");
        sg.delete(0, 1).unwrap();
        assert!(sg.delete(0, 1).is_err(), "already dead");
    }

    #[test]
    fn roundtrip_restores_exact_csr() {
        let g = base();
        let mut sg = StreamGraph::new(&g);
        let edges: Vec<(u32, u32)> = g.edges().take(5).collect();
        for &(u, v) in &edges {
            sg.delete(u, v).unwrap();
        }
        // Reinsert in original relative order; the snapshot's *edge
        // order* changes (they moved to the tail of the log) but the
        // rebuilt-from-scratch graph over the same edge sequence must
        // be identical CSR-wise.
        for &(u, v) in &edges {
            sg.insert(u, v).unwrap();
        }
        let snap = sg.snapshot().unwrap();
        let rebuilt =
            Graph::from_edges(snap.num_vertices(), &snap.edges().collect::<Vec<_>>(), false)
                .unwrap();
        assert_eq!(snap, rebuilt);
        assert_eq!(snap.num_edges(), g.num_edges());
        // Same *set* of edges as the base.
        let mut a: Vec<_> = snap.edges().collect();
        let mut b: Vec<_> = g.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_base_arrival_only_stream_grows_a_graph() {
        let g = Graph::from_edges(0, &[], false).unwrap();
        let s = StreamSpec {
            batches: 5,
            inserts_per_batch: 0,
            deletes_per_batch: 0,
            arrivals_per_batch: 3,
            edges_per_arrival: 2,
            seed: 11,
        };
        let plan = StreamPlan::generate(&g, &s).unwrap();
        let mut sg = StreamGraph::new(&g);
        for b in plan.batches() {
            sg.apply(b).unwrap();
        }
        assert_eq!(sg.num_vertices(), 15);
        assert!(sg.num_live_edges() > 0, "arrivals wire themselves in");
        sg.snapshot().unwrap();
    }

    #[test]
    fn directed_base_streams_directed_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1), (3, 2)], true).unwrap();
        let s = StreamSpec {
            batches: 4,
            inserts_per_batch: 3,
            deletes_per_batch: 2,
            arrivals_per_batch: 1,
            edges_per_arrival: 1,
            seed: 5,
        };
        let plan = StreamPlan::generate(&g, &s).unwrap();
        let mut sg = StreamGraph::new(&g);
        for b in plan.batches() {
            sg.apply(b).unwrap();
        }
        let snap = sg.snapshot().unwrap();
        assert!(snap.is_directed());
    }
}
