//! Train/validation/test vertex splits.
//!
//! The paper randomly splits every graph into 10% training, 10%
//! validation and 80% test vertices; the training vertices are the seeds
//! of mini-batch sampling in the DistDGL experiments.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::GraphError;

/// A disjoint partition of the vertex set into train/val/test roles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexSplit {
    /// Training vertices (sorted).
    pub train: Vec<u32>,
    /// Validation vertices (sorted).
    pub val: Vec<u32>,
    /// Test vertices (sorted).
    pub test: Vec<u32>,
    num_vertices: u32,
}

impl VertexSplit {
    /// Randomly split `num_vertices` vertices with the given fractions.
    /// The remainder (`1 - train_frac - val_frac`) becomes the test set.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameter`] if the fractions are
    /// negative or sum to more than 1.
    pub fn random(
        num_vertices: u32,
        train_frac: f64,
        val_frac: f64,
        seed: u64,
    ) -> Result<Self, GraphError> {
        if train_frac < 0.0 || val_frac < 0.0 || train_frac + val_frac > 1.0 {
            return Err(GraphError::InvalidParameter(format!(
                "fractions train={train_frac} val={val_frac} invalid"
            )));
        }
        let mut ids: Vec<u32> = (0..num_vertices).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ids.shuffle(&mut rng);
        let n_train = (f64::from(num_vertices) * train_frac).round() as usize;
        let n_val = (f64::from(num_vertices) * val_frac).round() as usize;
        let n_val_end = (n_train + n_val).min(ids.len());
        let mut train = ids[..n_train.min(ids.len())].to_vec();
        let mut val = ids[n_train.min(ids.len())..n_val_end].to_vec();
        let mut test = ids[n_val_end..].to_vec();
        train.sort_unstable();
        val.sort_unstable();
        test.sort_unstable();
        Ok(VertexSplit { train, val, test, num_vertices })
    }

    /// The paper's default 10/10/80 split with a fixed seed derived from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Never fails for the fixed fractions; the `Result` mirrors
    /// [`Self::random`].
    pub fn paper_default(num_vertices: u32, seed: u64) -> Result<Self, GraphError> {
        Self::random(num_vertices, 0.10, 0.10, seed)
    }

    /// Number of vertices covered by the split.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Boolean mask over all vertices: `true` where the vertex is a
    /// training vertex.
    pub fn train_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.num_vertices as usize];
        for &v in &self.train {
            mask[v as usize] = true;
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_respected() {
        let s = VertexSplit::random(1000, 0.1, 0.1, 1).unwrap();
        assert_eq!(s.train.len(), 100);
        assert_eq!(s.val.len(), 100);
        assert_eq!(s.test.len(), 800);
    }

    #[test]
    fn disjoint_and_complete() {
        let s = VertexSplit::random(500, 0.2, 0.3, 2).unwrap();
        let mut all: Vec<u32> =
            s.train.iter().chain(&s.val).chain(&s.test).copied().collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..500).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn deterministic() {
        let a = VertexSplit::random(300, 0.1, 0.1, 7).unwrap();
        let b = VertexSplit::random(300, 0.1, 0.1, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_differs() {
        let a = VertexSplit::random(300, 0.1, 0.1, 7).unwrap();
        let b = VertexSplit::random(300, 0.1, 0.1, 8).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn rejects_bad_fractions() {
        assert!(VertexSplit::random(10, 0.8, 0.5, 0).is_err());
        assert!(VertexSplit::random(10, -0.1, 0.5, 0).is_err());
    }

    #[test]
    fn train_mask_matches() {
        let s = VertexSplit::random(100, 0.1, 0.1, 3).unwrap();
        let mask = s.train_mask();
        assert_eq!(mask.iter().filter(|&&b| b).count(), s.train.len());
        for &v in &s.train {
            assert!(mask[v as usize]);
        }
    }

    #[test]
    fn zero_vertices() {
        let s = VertexSplit::random(0, 0.1, 0.1, 0).unwrap();
        assert!(s.train.is_empty() && s.val.is_empty() && s.test.is_empty());
    }
}
