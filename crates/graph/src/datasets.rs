//! Dataset registry: the five scaled-down analogues of the paper's graphs.
//!
//! | Id | Paper graph | Category | Dir. | Generator |
//! |----|-------------|----------|------|-----------|
//! | HW | Hollywood-2011 | collaboration | no | [`affiliation`] |
//! | DI | Dimacs9-USA | road | yes | [`road`] |
//! | EN | Enwiki-2021 | wiki | yes | [`prefattach`] |
//! | EU | Eu-2015-tpd | web | yes | [`webcopy`] |
//! | OR | Orkut | social | no | [`community`] |
//!
//! The analogues preserve each category's structural signature — degree
//! ordering HW > OR > EN ≈ EU ≫ DI, direction, skew and locality — at
//! roughly 1/200 of the original scale so the full experiment grid runs
//! on a single machine.
//!
//! [`affiliation`]: fn@crate::generators::affiliation::affiliation
//! [`road`]: fn@crate::generators::road::road
//! [`prefattach`]: fn@crate::generators::prefattach::prefattach
//! [`webcopy`]: fn@crate::generators::webcopy::webcopy
//! [`community`]: fn@crate::generators::community::community

use crate::csr::Graph;
use crate::error::GraphError;
use crate::generators::{
    affiliation, community, prefattach, road, webcopy, AffiliationParams, CommunityParams,
    PrefAttachParams, RoadParams, WebCopyParams,
};

/// Identifier of one of the five analogue datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Hollywood-2011 analogue (collaboration, undirected, densest).
    HW,
    /// Dimacs9-USA analogue (road, directed, sparsest).
    DI,
    /// Enwiki-2021 analogue (wiki, directed).
    EN,
    /// Eu-2015-tpd analogue (web, directed, high locality).
    EU,
    /// Orkut analogue (social, undirected, dense).
    OR,
}

/// Size preset for dataset generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphScale {
    /// ~1–3k vertices; unit/integration tests.
    Tiny,
    /// ~8–24k vertices; the default experiment scale.
    Small,
    /// ~2x Small; benchmark runs.
    Medium,
}

impl GraphScale {
    fn factor(self) -> f64 {
        match self {
            GraphScale::Tiny => 0.125,
            GraphScale::Small => 1.0,
            GraphScale::Medium => 2.0,
        }
    }
}

impl DatasetId {
    /// All five datasets in the paper's table order.
    pub const ALL: [DatasetId; 5] =
        [DatasetId::HW, DatasetId::DI, DatasetId::EN, DatasetId::EU, DatasetId::OR];

    /// Two-letter short name used throughout the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::HW => "HW",
            DatasetId::DI => "DI",
            DatasetId::EN => "EN",
            DatasetId::EU => "EU",
            DatasetId::OR => "OR",
        }
    }

    /// Graph category as listed in Table 1.
    pub fn category(self) -> &'static str {
        match self {
            DatasetId::HW => "collaboration",
            DatasetId::DI => "road",
            DatasetId::EN => "wiki",
            DatasetId::EU => "web",
            DatasetId::OR => "social",
        }
    }

    /// Whether the graph is directed (Table 1's "Dir." column).
    pub fn is_directed(self) -> bool {
        matches!(self, DatasetId::DI | DatasetId::EN | DatasetId::EU)
    }

    /// Parse a short name (case-insensitive).
    pub fn parse(s: &str) -> Option<DatasetId> {
        match s.to_ascii_uppercase().as_str() {
            "HW" => Some(DatasetId::HW),
            "DI" => Some(DatasetId::DI),
            "EN" => Some(DatasetId::EN),
            "EU" => Some(DatasetId::EU),
            "OR" => Some(DatasetId::OR),
            _ => None,
        }
    }

    /// Deterministic seed for this dataset's generator.
    fn seed(self) -> u64 {
        match self {
            DatasetId::HW => 0x4857,
            DatasetId::DI => 0x4449,
            DatasetId::EN => 0x454e,
            DatasetId::EU => 0x4555,
            DatasetId::OR => 0x4f52,
        }
    }

    /// Generate the analogue graph at the given scale.
    ///
    /// # Errors
    ///
    /// Propagates generator parameter errors (should not occur for the
    /// built-in presets).
    pub fn generate(self, scale: GraphScale) -> Result<Graph, GraphError> {
        let f = scale.factor();
        let seed = self.seed();
        match self {
            DatasetId::HW => affiliation(
                AffiliationParams {
                    n: scaled(8_000, f),
                    groups: scaled(15_000, f),
                    min_cast: 3,
                    max_cast: 70,
                    cast_exponent: 2.2,
                    popularity_skew: 0.9,
                    cast_locality: 0.75,
                    cast_window: scaled(600, f.sqrt()),
                },
                seed,
            ),
            DatasetId::DI => {
                // Keep the grid roughly square while scaling the area.
                let side = (f64::from(160u32) * f.sqrt()) as u32;
                road(
                    RoadParams {
                        width: side.max(8),
                        height: (side * 15 / 16).max(8),
                        removal_prob: 0.4,
                        highways: scaled(200, f),
                    },
                    seed,
                )
            }
            DatasetId::EN => prefattach(
                PrefAttachParams {
                    n: scaled(24_000, f),
                    out_links: 15,
                    uniform_prob: 0.15,
                    locality: 0.45,
                    locality_window: scaled(256, f.sqrt()),
                    directed: true,
                },
                seed,
            ),
            DatasetId::EU => webcopy(
                WebCopyParams {
                    n: scaled(20_000, f),
                    out_links: 14,
                    copy_prob: 0.7,
                    host_window: 64,
                    locality: 0.8,
                },
                seed,
            ),
            DatasetId::OR => community(
                CommunityParams {
                    n: scaled(10_000, f),
                    m: scaled(320_000, f),
                    // Communities stay much larger than the mean degree so
                    // hubs keep their heavy tail after deduplication.
                    communities: scaled(24, f.sqrt()).min(scaled(10_000, f) / 64),
                    intra_prob: 0.78,
                    degree_exponent: 2.2,
                },
                seed,
            ),
        }
    }
}

fn scaled(base: u32, f: f64) -> u32 {
    ((f64::from(base) * f) as u32).max(16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeStats;

    #[test]
    fn all_datasets_generate_tiny() {
        for id in DatasetId::ALL {
            let g = id.generate(GraphScale::Tiny).unwrap();
            assert!(g.num_vertices() > 100, "{}: n={}", id.name(), g.num_vertices());
            assert!(g.num_edges() > 100, "{}: m={}", id.name(), g.num_edges());
            assert_eq!(g.is_directed(), id.is_directed(), "{}", id.name());
        }
    }

    #[test]
    fn direction_matches_table1() {
        assert!(!DatasetId::HW.is_directed());
        assert!(DatasetId::DI.is_directed());
        assert!(DatasetId::EN.is_directed());
        assert!(DatasetId::EU.is_directed());
        assert!(!DatasetId::OR.is_directed());
    }

    #[test]
    fn density_ordering_preserved() {
        // HW and OR must be the densest, DI by far the sparsest.
        let ratios: Vec<(DatasetId, f64)> = DatasetId::ALL
            .iter()
            .map(|&id| (id, id.generate(GraphScale::Tiny).unwrap().mean_degree()))
            .collect();
        let get = |want: DatasetId| ratios.iter().find(|(id, _)| *id == want).unwrap().1;
        assert!(get(DatasetId::DI) < 4.0, "DI ratio {}", get(DatasetId::DI));
        assert!(get(DatasetId::HW) > get(DatasetId::EN));
        assert!(get(DatasetId::OR) > get(DatasetId::EN));
        assert!(get(DatasetId::EN) > get(DatasetId::DI));
        assert!(get(DatasetId::EU) > get(DatasetId::DI));
    }

    #[test]
    fn road_has_no_skew_others_do() {
        let di = DatasetId::DI.generate(GraphScale::Tiny).unwrap();
        assert!(!DegreeStats::compute(&di).is_heavy_tailed(5.0));
        for id in [DatasetId::HW, DatasetId::EN, DatasetId::EU, DatasetId::OR] {
            let g = id.generate(GraphScale::Tiny).unwrap();
            assert!(
                DegreeStats::compute(&g).is_heavy_tailed(5.0),
                "{} should be heavy tailed",
                id.name()
            );
        }
    }

    #[test]
    fn parse_roundtrip() {
        for id in DatasetId::ALL {
            assert_eq!(DatasetId::parse(id.name()), Some(id));
            assert_eq!(DatasetId::parse(&id.name().to_lowercase()), Some(id));
        }
        assert_eq!(DatasetId::parse("XX"), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetId::EN.generate(GraphScale::Tiny).unwrap();
        let b = DatasetId::EN.generate(GraphScale::Tiny).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scales_are_ordered() {
        let tiny = DatasetId::EU.generate(GraphScale::Tiny).unwrap();
        let small = DatasetId::EU.generate(GraphScale::Small).unwrap();
        assert!(small.num_vertices() > 4 * tiny.num_vertices());
    }
}
