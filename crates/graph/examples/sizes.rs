use gp_graph::{DatasetId, GraphScale};
fn main() {
    for scale in [GraphScale::Tiny, GraphScale::Small] {
        for id in DatasetId::ALL {
            let t = std::time::Instant::now();
            let g = id.generate(scale).unwrap();
            println!(
                "{:?} {}: |V|={} |E|={} ratio={:.1} gen={:?}",
                scale, id.name(), g.num_vertices(), g.num_edges(), g.mean_degree(), t.elapsed()
            );
        }
    }
}
