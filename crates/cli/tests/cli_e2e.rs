//! Black-box end-to-end tests: spawn the real `gnnpart` binary and
//! assert on its stdout/stderr/exit codes, exactly as a shell user
//! would experience it.

use std::path::PathBuf;
use std::process::{Command, Output};

fn gnnpart(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gnnpart"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(o: &Output) -> String {
    String::from_utf8_lossy(&o.stdout).into_owned()
}

fn stderr(o: &Output) -> String {
    String::from_utf8_lossy(&o.stderr).into_owned()
}

fn workdir() -> PathBuf {
    // Unique per call: tests run concurrently and some remove their
    // directory when done, so sharing one pid-keyed directory races.
    static NEXT: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
    let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gnnpart_e2e_{}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn help_lists_all_commands() {
    let out = gnnpart(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in
        ["generate", "stats", "partition", "simulate", "trace", "diagnose", "chaos",
         "netchaos", "stream", "bench", "recommend", "list"]
    {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn list_names_all_twelve_partitioners() {
    let out = gnnpart(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in
        ["Random", "DBH", "HDRF", "2PS-L", "HEP-10", "HEP-100", "LDG", "Spinner", "METIS",
         "ByteGNN", "KaHIP"]
    {
        assert!(text.contains(name), "list missing {name}");
    }
}

#[test]
fn full_pipeline_generate_stats_partition_simulate() {
    let dir = workdir();
    let el = dir.join("pipeline.el");
    let el_str = el.to_str().expect("utf8 path");

    let out = gnnpart(&["generate", "DI", "--scale", "tiny", "--out", el_str]);
    assert!(out.status.success(), "generate failed: {}", stderr(&out));
    assert!(el.exists());

    let out = gnnpart(&["stats", el_str, "--directed"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("mean degree"));

    let parts = dir.join("parts.txt");
    let out = gnnpart(&[
        "partition", el_str, "--algo", "METIS", "-k", "4", "--directed", "--out",
        parts.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "partition failed: {}", stderr(&out));
    assert!(stdout(&out).contains("edge-cut ratio"));
    let lines = std::fs::read_to_string(&parts).expect("assignments written");
    assert!(lines.lines().all(|l| l.parse::<u32>().map(|p| p < 4).unwrap_or(false)));

    let out = gnnpart(&["simulate", el_str, "--algo", "HDRF", "-k", "4", "--directed"]);
    assert!(out.status.success(), "simulate failed: {}", stderr(&out));
    assert!(stdout(&out).contains("epoch time"));

    let out = gnnpart(&[
        "recommend", el_str, "-k", "4", "--epochs", "100", "--directed",
    ]);
    assert!(out.status.success(), "recommend failed: {}", stderr(&out));
    assert!(stdout(&out).contains("Best partitioner"));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn trace_emits_wellformed_chrome_json() {
    let dir = workdir();
    let el = dir.join("trace.el");
    let el_str = el.to_str().expect("utf8 path");
    let out = gnnpart(&["generate", "OR", "--scale", "tiny", "--out", el_str]);
    assert!(out.status.success(), "generate failed: {}", stderr(&out));

    // DistGNN under faults with full mitigation, both export formats.
    let json = dir.join("trace.json");
    let csv = dir.join("phases.csv");
    let out = gnnpart(&[
        "trace", el_str, "--algo", "HDRF", "-k", "4", "--epochs", "4", "--faults", "--mtbf",
        "4.0", "--checkpoint-every", "2", "--mitigate", "all", "--trace-out",
        json.to_str().expect("utf8"), "--phase-csv", csv.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "trace failed: {}", stderr(&out));
    assert!(stdout(&out).contains("spans"));
    let text = std::fs::read_to_string(&json).expect("trace written");
    let stats = gp_cli::jsonlint::validate_json(&text).expect("well-formed Chrome JSON");
    assert!(stats.top_level_array_len > 0, "trace has events");
    assert!(stats.objects > stats.top_level_array_len, "events carry args objects");
    let rows = std::fs::read_to_string(&csv).expect("phase CSV written");
    assert!(rows.starts_with("worker,phase,spans,seconds,bytes,flops"));
    assert!(rows.lines().count() > 1, "phase CSV has data rows");

    // DistDGL healthy baseline.
    let json2 = dir.join("trace_dgl.json");
    let out = gnnpart(&[
        "trace", el_str, "--algo", "METIS", "-k", "4", "--system", "distdgl", "--epochs", "2",
        "--trace-out", json2.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "distdgl trace failed: {}", stderr(&out));
    let text = std::fs::read_to_string(&json2).expect("trace written");
    let stats = gp_cli::jsonlint::validate_json(&text).expect("well-formed Chrome JSON");
    assert!(stats.top_level_array_len > 0);

    // Clean up only this test's files: the work dir is shared by
    // concurrently running tests.
    for f in [el, json, csv, json2] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn chaos_soak_holds_and_rejects_degenerate_flags() {
    let dir = workdir();
    let el = dir.join("chaos.el");
    let el_str = el.to_str().expect("utf8 path");
    let out = gnnpart(&["generate", "OR", "--scale", "tiny", "--out", el_str]);
    assert!(out.status.success(), "generate failed: {}", stderr(&out));

    let bench = dir.join("chaos.json");
    let out = gnnpart(&[
        "chaos", el_str, "--algo", "HDRF", "-k", "4", "--epochs", "6", "--mtbf", "4.0",
        "--checkpoint-every", "2", "--threads", "2", "--bench-out",
        bench.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "chaos failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("rows green"), "verdict line missing: {text}");
    let json = std::fs::read_to_string(&bench).expect("bench written");
    gp_cli::jsonlint::validate_json(&json).expect("well-formed chaos JSON");
    assert!(json.contains("\"invariants_hold\":true"));

    // Degenerate soak parameters are usage errors (exit 2), not runs.
    let out = gnnpart(&["chaos", el_str, "--epochs", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--epochs must be at least 1"));
    let out = gnnpart(&["chaos", el_str, "--checkpoint-every", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--checkpoint-every must be at least 1"));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn netchaos_soak_holds_and_rejects_draining_compositions() {
    let dir = workdir();
    let el = dir.join("netchaos.el");
    let el_str = el.to_str().expect("utf8 path");
    let out = gnnpart(&["generate", "OR", "--scale", "tiny", "--out", el_str]);
    assert!(out.status.success(), "generate failed: {}", stderr(&out));

    let bench = dir.join("netchaos.json");
    let csv = dir.join("netchaos.csv");
    let prom = dir.join("netchaos.prom");
    let out = gnnpart(&[
        "netchaos", el_str, "--algo", "HDRF", "-k", "4", "--epochs", "8", "--mtbf", "4.0",
        "--checkpoint-every", "2", "--threads", "2", "--bench-out",
        bench.to_str().expect("utf8"), "--csv-out", csv.to_str().expect("utf8"),
        "--prom-out", prom.to_str().expect("utf8"),
    ]);
    assert!(out.status.success(), "netchaos failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("rows green"), "verdict line missing: {text}");
    let json = std::fs::read_to_string(&bench).expect("bench written");
    gp_cli::jsonlint::validate_json(&json).expect("well-formed netchaos JSON");
    assert!(json.contains("\"bench\":\"netchaos\""));
    assert!(json.contains("\"invariants_hold\":true"));
    assert!(std::fs::read_to_string(&csv).expect("csv written").lines().count() > 1);
    // The Prometheus exposition of the traced run carries the network
    // counter families — the loss/dup noise fires on every schedule.
    let exposition = std::fs::read_to_string(&prom).expect("prom written");
    for family in ["gnnpart_net_retries_total", "gnnpart_net_dup_discarded_total"] {
        assert!(
            exposition.contains(&format!("# TYPE {family} counter")),
            "{family} missing from exposition:\n{exposition}"
        );
    }

    // A crash schedule dense enough to drain the fleet below the churn
    // floor is rejected up front (runtime error, exit 1) — no soak
    // cell runs against an unsurvivable composition.
    let out = gnnpart(&[
        "netchaos", el_str, "--algo", "HDRF", "-k", "4", "--epochs", "8", "--mtbf", "0.4",
        "--fault-seed", "7",
    ]);
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("invalid fault/churn composition"));

    // Degenerate soak parameters stay usage errors (exit 2).
    let out = gnnpart(&["netchaos", el_str, "--epochs", "0"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--epochs must be at least 1"));

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn deterministic_across_invocations() {
    // Two separate processes produce byte-identical edge lists.
    let dir = workdir();
    let a = dir.join("a.el");
    let b = dir.join("b.el");
    for f in [&a, &b] {
        let out = gnnpart(&["generate", "OR", "--scale", "tiny", "--out", f.to_str().unwrap()]);
        assert!(out.status.success());
    }
    assert_eq!(
        std::fs::read(&a).expect("a written"),
        std::fs::read(&b).expect("b written"),
        "process-level determinism"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn exit_codes_distinguish_usage_and_runtime_errors() {
    // Usage error -> exit 2.
    let out = gnnpart(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));

    // Runtime error (missing file) -> exit 1.
    let out = gnnpart(&["stats", "/nonexistent/x.el"]);
    assert_eq!(out.status.code(), Some(1));

    // Bad value -> exit 2 with the flag named.
    let out = gnnpart(&["partition", "x.el", "-k", "zebra"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("-k"));
}

#[test]
fn no_args_prints_help_and_succeeds() {
    let out = gnnpart(&[]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}
