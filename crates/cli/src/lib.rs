//! # gp-cli — the `gnnpart` command-line tool
//!
//! A practitioner-facing front end to the library:
//!
//! ```text
//! gnnpart generate OR --scale small --out or.el       # synthesise a dataset
//! gnnpart stats or.el                                  # degree statistics
//! gnnpart partition or.el --algo HDRF -k 8 --out p.txt # partition an edge list
//! gnnpart simulate or.el --algo METIS -k 8 --system distdgl
//! gnnpart trace or.el --algo HDRF -k 8 --trace-out trace.json
//! gnnpart diagnose or.el --algo HDRF -k 8 --prom-out m.prom --report-out r.md
//! gnnpart chaos or.el -k 8 --epochs 20                 # elastic-membership soak
//! gnnpart netchaos or.el -k 8 --epochs 20              # + message-level net faults
//! gnnpart stream or.el -k 8 --batches 12               # dynamic-graph decay sweep
//! gnnpart recommend or.el -k 8 --epochs 200               # best partitioner
//! gnnpart list                                         # available partitioners
//! ```
//!
//! All commands work on plain-text edge lists (`u v` per line, `#`
//! comments), the format used by SNAP and KONECT dumps.

pub mod args;
pub mod commands;
pub mod jsonlint;

pub use args::{parse_args, Command, ParseError};

/// Run a parsed command; returns a process exit code.
pub fn run(command: Command) -> i32 {
    let result = match command {
        Command::Generate(c) => commands::generate(c),
        Command::Stats(c) => commands::stats(c),
        Command::Partition(c) => commands::partition(c),
        Command::Simulate(c) => commands::simulate(c),
        Command::Trace(c) => commands::trace(&c),
        Command::Diagnose(c) => commands::diagnose(&c),
        Command::Chaos(c) => commands::chaos(&c),
        Command::NetChaos(c) => commands::netchaos(&c),
        Command::Stream(c) => commands::stream(&c),
        Command::Bench(c) => commands::bench(&c),
        Command::Recommend(c) => commands::recommend(c),
        Command::List => {
            commands::list();
            Ok(())
        }
        Command::Help => {
            print!("{}", args::USAGE);
            Ok(())
        }
    };
    match result {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}
