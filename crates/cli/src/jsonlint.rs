//! Minimal hand-rolled JSON well-formedness checker.
//!
//! The trace layer *emits* Chrome-trace JSON by hand (the workspace
//! deliberately carries no serialisation dependency); this is the
//! matching hand-rolled *reader*. It validates the full JSON grammar —
//! strings with escapes, numbers, nesting, literals — without building
//! a document tree, and reports a few counts so tests can assert a
//! trace is not just parseable but non-trivial. Used by the `gnnpart
//! trace` unit and end-to-end tests.

/// Counts gathered while validating; all zero only for trivial inputs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct JsonStats {
    /// Number of elements in the top-level array (0 if the top-level
    /// value is not an array). For a Chrome trace this is the event
    /// count, metadata records included.
    pub top_level_array_len: usize,
    /// Total number of objects at any depth.
    pub objects: usize,
    /// Total number of strings at any depth, object keys included.
    pub strings: usize,
}

/// Validate that `text` is exactly one well-formed JSON document.
///
/// # Errors
///
/// A human-readable message naming the problem and the byte offset.
pub fn validate_json(text: &str) -> Result<JsonStats, String> {
    let mut p = Parser { s: text.as_bytes(), i: 0, objects: 0, strings: 0 };
    p.ws();
    let top_level_array_len = if p.peek() == Some(b'[') {
        p.array()?
    } else {
        p.value()?;
        0
    };
    p.ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(JsonStats { top_level_array_len, objects: p.objects, strings: p.strings })
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    objects: usize,
    strings: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array().map(|_| ()),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("bad literal, expected {lit}")))
        }
    }

    fn digits(&mut self) -> usize {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        self.i - start
    }

    // The exact JSON number grammar,
    // `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`, rather than a
    // delegated f64 parse: f64 syntax is a strict superset that also
    // accepts `01`, `1.`, `.5`, `inf` — none of which are JSON.
    // Exponent forms with an explicit sign (`1e+9`) are valid JSON and
    // accepted.
    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.i += 1;
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    return Err(self.err("leading zero in number"));
                }
            }
            Some(c) if c.is_ascii_digit() => {
                self.digits();
            }
            _ => return Err(self.err("missing digits in number")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if self.digits() == 0 {
                return Err(self.err("missing digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("missing digits in exponent"));
            }
        }
        Ok(())
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    self.strings += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => self.i += 1,
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn array(&mut self) -> Result<usize, String> {
        self.expect(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(0);
        }
        let mut n = 0;
        loop {
            self.value()?;
            n += 1;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(n);
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.objects += 1;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.expect(b':')?;
            self.value()?;
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        assert_eq!(validate_json("[]").unwrap().top_level_array_len, 0);
        assert_eq!(validate_json("{}").unwrap().objects, 1);
        let stats = validate_json(
            r#"[1, -2.5e3, "x\nA", true, false, null, {"a": [1, {"b": 2}]}]"#,
        )
        .unwrap();
        assert_eq!(stats.top_level_array_len, 7);
        assert_eq!(stats.objects, 2);
        assert_eq!(stats.strings, 3);
        assert_eq!(validate_json("  42 ").unwrap(), JsonStats::default());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "[1,]", "[1 2]", "{\"a\"}", "{\"a\":}", "\"unterminated", "[] []", "nul",
            "1.2.3", "-", "{1: 2}", "[\"\u{0009}\"]",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accepts_exact_json_numbers_including_signed_exponents() {
        for good in [
            "0", "-0", "10", "0.001", "1e9", "1e+9", "1E+10", "1e-9", "2.5e3", "-2.5E-3",
            "[1e+9, -0.5E-2, 0e0]",
        ] {
            assert!(validate_json(good).is_ok(), "rejected {good:?}");
        }
    }

    #[test]
    fn rejects_f64_superset_number_forms() {
        for bad in [
            "01", "-01", "1.", "1.e3", ".5", "+1", "1e", "1e+", "1E-", "--1", "1e1.5",
            "0x10", "NaN", "inf", "1..2", "[01]", "{\"a\": 1.}", "[1e+]",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn chrome_trace_export_is_well_formed() {
        use gp_cluster::{TracePhase, TraceSink};
        let sink = TraceSink::enabled();
        sink.span(0, 0, TracePhase::Forward, 0.0, 1.5e-3, 128, 1 << 20);
        sink.span(1, 0, TracePhase::Sync, 1.5e-3, 2.5e-4, 4096, 0);
        sink.counter(0, "bytes_sent", 4096.0);
        let stats = validate_json(&sink.to_chrome_json()).expect("well-formed export");
        // 2 process-name metadata records + 2 spans + 1 counter sample.
        assert_eq!(stats.top_level_array_len, 5);
        assert!(stats.objects >= 5, "events plus args objects");
    }
}
