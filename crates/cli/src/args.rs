//! Hand-rolled argument parsing (no external dependency needed for a
//! handful of subcommands).

use std::path::PathBuf;

use gp_exec::Threads;
use gp_graph::GraphScale;

/// Usage text shown by `gnnpart help`.
pub const USAGE: &str = "\
gnnpart — partitioning strategies for distributed GNN training

USAGE:
    gnnpart <command> [options]

COMMANDS:
    generate <HW|DI|EN|EU|OR>   synthesise an analogue dataset
        --scale tiny|small|medium   (default small)
        --out FILE                  (default <id>.el)
    stats <edge-list>           graph + degree statistics
        --directed                  treat input as directed
    partition <edge-list>       partition an edge list
        --algo NAME                 partitioner (see `gnnpart list`);
                                    the name Random resolves to the
                                    edge (vertex-cut) variant
        -k N                        number of partitions (default 8)
        --seed N                    (default 42)
        --directed                  treat input as directed
        --out FILE                  write assignments (one id per line)
    recommend <edge-list>       recommend the best partitioner
        -k N                        machines (default 8)
        --system distgnn|distdgl    (default distgnn)
        --epochs N                  training budget (default 100)
        --features N --hidden N --layers N   (default 64/64/3)
        --directed                  treat input as directed
        --threads N|auto            gp-exec pool width for candidate
                                    runs (default auto; 1 = serial,
                                    the ranking is identical either way)
    simulate <edge-list>        simulate one training epoch
        --algo NAME                 partitioner (see `gnnpart list`)
        -k N                        machines (default 8)
        --system distgnn|distdgl    (default distgnn)
        --model sage|gcn|gat        (distdgl only, default sage)
        --features N --hidden N --layers N   (default 64/64/3)
        --directed                  treat input as directed
        --faults                    inject a seeded fault schedule
                                    (crashes + stragglers + brownouts)
                                    and report recovery overhead
        --mtbf N                    mean epochs between crashes
                                    (default 5, with --faults)
        --epochs N                  fault-run horizon (default 10,
                                    must be at least 1)
        --checkpoint-every N        DistGNN checkpoint period in epochs
                                    (at least 1; omit the flag to run
                                    without checkpoints)
        --fault-seed N              fault-schedule seed (default 42)
        --mitigate MODE             straggler mitigation, with --faults:
                                    none|steal|speculate|adaptive|all
                                    (default none; steal/speculate are
                                    DistDGL, adaptive cd-r is DistGNN)
        --engine-threads N|auto     intra-epoch gp-exec pool width for
                                    the engines' per-worker compute
                                    (default 1; reports are identical
                                    for every width)
    trace <edge-list>           simulate epochs and record a span trace
                                (accepts every simulate option, incl.
                                --faults and --mitigate, plus:)
        --trace-out FILE            Chrome-tracing JSON output (default
                                    trace.json; open in chrome://tracing)
        --phase-csv FILE            per-(worker, phase) aggregate CSV
    diagnose <edge-list>        simulate epochs, aggregate metrics and
                                diagnose the run: phase percentiles,
                                load-imbalance indices, straggler
                                attribution and ranked causes of epoch
                                time, cross-checked exactly against the
                                engine report (accepts every simulate
                                option, incl. --faults and --mitigate,
                                plus:)
        --prom-out FILE             Prometheus text exposition output
                                    (default metrics.prom)
        --report-out FILE           markdown run-report output
                                    (default report.md)
    chaos <edge-list>           elastic-membership soak: every
                                partitioner of the chosen system runs
                                a multi-epoch churn + fault +
                                checkpoint schedule through the
                                elastic engine path, and the elastic
                                contract is verified per partitioner:
                                bit-identical reruns, traced ==
                                untraced, handoffs never worse than
                                crash-only recovery, exact span sums.
                                Exits non-zero if any invariant fails.
                                (accepts every simulate option except
                                --faults/--mitigate — faults are
                                always on; --algo narrows the roster,
                                --fault-seed seeds faults AND churn,
                                --epochs defaults to 20 and
                                --checkpoint-every to 4, plus:)
        --threads N|auto            gp-exec pool width (default auto;
                                    rows identical for every width)
        --bench-out FILE            machine-readable JSON verdict
        --csv-out FILE              per-partitioner CSV table
    netchaos <edge-list>        network-fault soak: chaos plus a
                                seeded message-level fault plan (loss,
                                duplication, reorder, partition
                                windows) through the engines'
                                partitioned path, checking per
                                partitioner: bit-identical reruns,
                                traced == untraced, exactly-once
                                delivery, exact span sums, and the
                                bounded-staleness degraded mode never
                                worse than abort-and-recover. Exits
                                non-zero if any invariant fails.
                                (same options and defaults as chaos:)
        --threads N|auto            gp-exec pool width (default auto;
                                    rows identical for every width)
        --bench-out FILE            machine-readable JSON verdict
        --csv-out FILE              per-partitioner CSV table
        --prom-out FILE             Prometheus text exposition of one
                                    traced partitioned run (includes
                                    the gnnpart_net_* counter families)
    stream <edge-list>          streaming dynamic-graph sweep: every
                                partitioner of the chosen system
                                replays the same seeded mutation
                                stream (edge inserts/deletes + vertex
                                arrivals) once per repartition policy
                                (never / threshold / periodic),
                                training one epoch per batch while the
                                partition is maintained incrementally;
                                full repartitions are charged their
                                modeled cost in simulated seconds and
                                adopted only when not worse. Verifies
                                per row: bit-identical reruns, traced
                                == untraced, and no policy worse than
                                never-repartition. Exits non-zero if
                                any invariant fails. (accepts every
                                simulate option except the fault
                                family — the stream runs on a healthy
                                cluster; --algo narrows the roster,
                                default all, plus:)
        --batches N                 stream length in batches
                                    (default 8, must be at least 1)
        --stream-seed N             mutation-stream seed (default 42)
        --threads N|auto            gp-exec pool width (default auto;
                                    rows identical for every width)
        --bench-out FILE            machine-readable JSON verdict
        --csv-out FILE              per-(partitioner, policy) CSV table
    bench                       host-time benchmark of the pinned
                                workload matrix: generate the OR
                                analogue, run all 12 partitioners,
                                then one healthy epoch per
                                (partitioner, engine) at engine
                                threads 1 and auto — measuring real
                                wall seconds, throughput and allocator
                                peaks via gp-prof (values vary run to
                                run; the JSON *structure* is pinned
                                for scripts/bench_diff.py). Exits
                                non-zero if any dual-width pair
                                diverges.
        --scale tiny|small|medium   generation scale (default small)
        --quick                     shorthand for --scale tiny
        --parts N                   machines / parts (default 8)
        --out FILE                  single-line JSON output
                                    (default BENCH_perf.json)
        --report-out FILE           markdown report incl. the
                                    hierarchical host-time profile
        --profile                   print the host-time profile tree
                                    to stdout
    list                        list the 12 partitioners
    help                        this text
";

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `gnnpart generate`.
    Generate(GenerateCmd),
    /// `gnnpart stats`.
    Stats(StatsCmd),
    /// `gnnpart partition`.
    Partition(PartitionCmd),
    /// `gnnpart simulate`.
    Simulate(SimulateCmd),
    /// `gnnpart trace`.
    Trace(TraceCmd),
    /// `gnnpart diagnose`.
    Diagnose(DiagnoseCmd),
    /// `gnnpart chaos`.
    Chaos(ChaosCmd),
    /// `gnnpart netchaos`.
    NetChaos(NetChaosCmd),
    /// `gnnpart stream`.
    Stream(StreamCmd),
    /// `gnnpart bench`.
    Bench(BenchCmd),
    /// `gnnpart recommend`.
    Recommend(RecommendCmd),
    /// `gnnpart list`.
    List,
    /// `gnnpart help`.
    Help,
}

/// Options of `gnnpart generate`.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateCmd {
    /// Dataset id (HW/DI/EN/EU/OR).
    pub dataset: String,
    /// Size preset.
    pub scale: GraphScale,
    /// Output path (default `<id>.el`).
    pub out: Option<PathBuf>,
}

/// Options of `gnnpart stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsCmd {
    /// Edge-list path.
    pub input: PathBuf,
    /// Whether the input is directed.
    pub directed: bool,
}

/// Options of `gnnpart partition`.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionCmd {
    /// Edge-list path.
    pub input: PathBuf,
    /// Partitioner name.
    pub algo: String,
    /// Partition count.
    pub k: u32,
    /// RNG seed.
    pub seed: u64,
    /// Whether the input is directed.
    pub directed: bool,
    /// Output assignment path.
    pub out: Option<PathBuf>,
}

/// Options of `gnnpart simulate`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateCmd {
    /// Edge-list path.
    pub input: PathBuf,
    /// Partitioner name.
    pub algo: String,
    /// Machine count.
    pub k: u32,
    /// Which engine: `"distgnn"` or `"distdgl"`.
    pub system: String,
    /// Model kind (distdgl only).
    pub model: String,
    /// Feature dimension.
    pub features: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Layer count.
    pub layers: usize,
    /// Whether the input is directed.
    pub directed: bool,
    /// Whether to run under a seeded fault schedule.
    pub faults: bool,
    /// Mean epochs between crashes (used with `faults`).
    pub mtbf: f64,
    /// Fault-run horizon in epochs.
    pub epochs: u32,
    /// DistGNN checkpoint period in epochs (0 = no checkpoints).
    pub checkpoint_every: u32,
    /// Seed of the fault schedule.
    pub fault_seed: u64,
    /// Mitigation mode (`none|steal|speculate|adaptive|all`), validated
    /// at parse time against [`gp_cluster::MitigationPolicy::parse`].
    pub mitigate: String,
    /// Intra-epoch `gp-exec` pool width for the engines' per-worker
    /// compute (reports are bit-identical for every width).
    pub engine_threads: Threads,
}

/// Options of `gnnpart trace`: a full simulation plus trace-export
/// destinations. Every `simulate` option (including `--faults` and
/// `--mitigate`) composes with the trace flags.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCmd {
    /// The simulation to run (same options as `gnnpart simulate`).
    pub sim: SimulateCmd,
    /// Chrome-tracing JSON output path.
    pub trace_out: PathBuf,
    /// Optional per-(worker, phase) aggregate CSV output path.
    pub phase_csv: Option<PathBuf>,
}

/// Options of `gnnpart diagnose`: a full simulation plus metrics /
/// diagnosis export destinations. Every `simulate` option (including
/// `--faults` and `--mitigate`) composes with the diagnose flags.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnoseCmd {
    /// The simulation to run (same options as `gnnpart simulate`).
    pub sim: SimulateCmd,
    /// Prometheus text exposition output path.
    pub prom_out: PathBuf,
    /// Markdown run-report output path.
    pub report_out: PathBuf,
}

/// Options of `gnnpart chaos`: an elastic-membership soak over the
/// partitioner roster, with the elastic contract (determinism, trace
/// transparency, never-worse handoffs, exact span sums) checked per
/// row.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCmd {
    /// The simulation environment (same options as `gnnpart simulate`).
    /// `algo` narrows the roster (`"all"` soaks every partitioner of
    /// the chosen system); `fault_seed` seeds both the fault and the
    /// churn schedules; `faults` is always true.
    pub sim: SimulateCmd,
    /// `gp-exec` pool width for the per-partitioner cells (rows are
    /// bit-identical for every width).
    pub threads: Threads,
    /// Optional machine-readable JSON verdict output path.
    pub bench_out: Option<PathBuf>,
    /// Optional per-partitioner CSV table output path.
    pub csv_out: Option<PathBuf>,
}

/// Options of `gnnpart netchaos`: the chaos soak composed with a
/// seeded message-level network-fault plan (loss, duplication,
/// reorder, partition windows), with the network contract
/// (determinism, trace transparency, exactly-once delivery, exact
/// span sums, degraded mode never worse than abort-and-recover)
/// checked per row.
#[derive(Debug, Clone, PartialEq)]
pub struct NetChaosCmd {
    /// The simulation environment (same options as `gnnpart simulate`).
    /// `algo` narrows the roster (`"all"` soaks every partitioner of
    /// the chosen system); `fault_seed` seeds the fault, churn AND
    /// network-fault schedules; `faults` is always true.
    pub sim: SimulateCmd,
    /// `gp-exec` pool width for the per-partitioner cells (rows are
    /// bit-identical for every width).
    pub threads: Threads,
    /// Optional machine-readable JSON verdict output path.
    pub bench_out: Option<PathBuf>,
    /// Optional per-partitioner CSV table output path.
    pub csv_out: Option<PathBuf>,
    /// Optional Prometheus text exposition output path: the metrics
    /// snapshot of one traced partitioned run (the roster's first
    /// partitioner), including the `gnnpart_net_*` counter families.
    pub prom_out: Option<PathBuf>,
}

/// Options of `gnnpart stream`: a streaming dynamic-graph sweep over
/// the partitioner roster × the repartition-policy trio, with the
/// stream contract (determinism, trace transparency, policies never
/// worse than `never`) checked per row.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCmd {
    /// The simulation environment (same options as `gnnpart simulate`
    /// minus the fault family — the stream runs on a healthy cluster).
    /// `algo` narrows the roster (`"all"` sweeps every partitioner of
    /// the chosen system); `epochs` is ignored — the horizon is
    /// `batches`.
    pub sim: SimulateCmd,
    /// Stream length in batches (one training epoch each).
    pub batches: u32,
    /// Seed of the mutation stream.
    pub stream_seed: u64,
    /// `gp-exec` pool width for the per-partitioner cells (rows are
    /// bit-identical for every width).
    pub threads: Threads,
    /// Optional machine-readable JSON verdict output path.
    pub bench_out: Option<PathBuf>,
    /// Optional per-(partitioner, policy) CSV table output path.
    pub csv_out: Option<PathBuf>,
}

/// Options of `gnnpart bench`: the host-time benchmark of the pinned
/// workload matrix (generated OR analogue → all 12 partitioners → one
/// healthy epoch per (partitioner, engine) at both pool widths),
/// measured with `gp-prof` scoped timers and the counting allocator.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCmd {
    /// Generation scale of the pinned OR workload.
    pub scale: GraphScale,
    /// Machines / parts.
    pub k: u32,
    /// Single-line `BENCH_perf.json` output path.
    pub out: PathBuf,
    /// Optional markdown report output path (tables + profile tree).
    pub report_out: Option<PathBuf>,
    /// Print the hierarchical host-time profile to stdout.
    pub profile: bool,
}

/// Options of `gnnpart recommend`.
#[derive(Debug, Clone, PartialEq)]
pub struct RecommendCmd {
    /// Edge-list path.
    pub input: PathBuf,
    /// Machine count.
    pub k: u32,
    /// Which engine: `"distgnn"` or `"distdgl"`.
    pub system: String,
    /// Training budget in epochs.
    pub epochs: u32,
    /// Feature dimension.
    pub features: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Layer count.
    pub layers: usize,
    /// Whether the input is directed.
    pub directed: bool,
    /// `gp-exec` pool width for the candidate runs (ranking identical
    /// for every choice).
    pub threads: Threads,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// A tiny option cursor over the argument list.
struct Opts {
    args: Vec<String>,
    cursor: usize,
}

impl Opts {
    fn next(&mut self) -> Option<String> {
        let v = self.args.get(self.cursor).cloned();
        if v.is_some() {
            self.cursor += 1;
        }
        v
    }

    fn value_for(&mut self, flag: &str) -> Result<String, ParseError> {
        self.next().ok_or_else(|| ParseError(format!("{flag} requires a value")))
    }
}

/// Parse a full argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, ParseError> {
    let mut opts = Opts { args: args.to_vec(), cursor: 0 };
    let Some(cmd) = opts.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "generate" => parse_generate(&mut opts),
        "stats" => parse_stats(&mut opts),
        "partition" => parse_partition(&mut opts),
        "simulate" => parse_simulate(&mut opts),
        "trace" => parse_trace(&mut opts),
        "diagnose" => parse_diagnose(&mut opts),
        "chaos" => parse_chaos(&mut opts),
        "netchaos" => parse_netchaos(&mut opts),
        "stream" => parse_stream(&mut opts),
        "bench" => parse_bench(&mut opts),
        "recommend" => parse_recommend(&mut opts),
        "list" => Ok(Command::List),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => err(format!("unknown command {other:?}; try `gnnpart help`")),
    }
}

fn parse_scale(s: &str) -> Result<GraphScale, ParseError> {
    match s {
        "tiny" => Ok(GraphScale::Tiny),
        "small" => Ok(GraphScale::Small),
        "medium" => Ok(GraphScale::Medium),
        other => err(format!("unknown scale {other:?} (tiny|small|medium)")),
    }
}

fn parse_generate(opts: &mut Opts) -> Result<Command, ParseError> {
    let Some(dataset) = opts.next() else {
        return err("generate requires a dataset id (HW|DI|EN|EU|OR)");
    };
    let mut cmd =
        GenerateCmd { dataset, scale: GraphScale::Small, out: None };
    while let Some(flag) = opts.next() {
        match flag.as_str() {
            "--scale" => cmd.scale = parse_scale(&opts.value_for("--scale")?)?,
            "--out" => cmd.out = Some(PathBuf::from(opts.value_for("--out")?)),
            other => return err(format!("unknown option {other:?}")),
        }
    }
    Ok(Command::Generate(cmd))
}

fn parse_stats(opts: &mut Opts) -> Result<Command, ParseError> {
    let Some(input) = opts.next() else {
        return err("stats requires an edge-list path");
    };
    let mut cmd = StatsCmd { input: PathBuf::from(input), directed: false };
    while let Some(flag) = opts.next() {
        match flag.as_str() {
            "--directed" => cmd.directed = true,
            other => return err(format!("unknown option {other:?}")),
        }
    }
    Ok(Command::Stats(cmd))
}

fn parse_partition(opts: &mut Opts) -> Result<Command, ParseError> {
    let Some(input) = opts.next() else {
        return err("partition requires an edge-list path");
    };
    let mut cmd = PartitionCmd {
        input: PathBuf::from(input),
        algo: "HDRF".into(),
        k: 8,
        seed: 42,
        directed: false,
        out: None,
    };
    while let Some(flag) = opts.next() {
        match flag.as_str() {
            "--algo" => cmd.algo = opts.value_for("--algo")?,
            "-k" => {
                cmd.k = opts
                    .value_for("-k")?
                    .parse()
                    .map_err(|e| ParseError(format!("bad -k: {e}")))?;
            }
            "--seed" => {
                cmd.seed = opts
                    .value_for("--seed")?
                    .parse()
                    .map_err(|e| ParseError(format!("bad --seed: {e}")))?;
            }
            "--directed" => cmd.directed = true,
            "--out" => cmd.out = Some(PathBuf::from(opts.value_for("--out")?)),
            other => return err(format!("unknown option {other:?}")),
        }
    }
    Ok(Command::Partition(cmd))
}

fn default_simulate(input: PathBuf) -> SimulateCmd {
    SimulateCmd {
        input,
        algo: "HDRF".into(),
        k: 8,
        system: "distgnn".into(),
        model: "sage".into(),
        features: 64,
        hidden: 64,
        layers: 3,
        directed: false,
        faults: false,
        mtbf: 5.0,
        epochs: 10,
        checkpoint_every: 0,
        fault_seed: 42,
        mitigate: "none".into(),
        engine_threads: Threads::serial(),
    }
}

/// Apply one simulation flag shared between `simulate` and `trace`.
/// Returns `Ok(false)` when the flag is not a simulation option (the
/// caller decides whether that is an error or one of its own flags).
fn apply_simulate_flag(
    cmd: &mut SimulateCmd,
    flag: &str,
    opts: &mut Opts,
) -> Result<bool, ParseError> {
    let numeric = |opts: &mut Opts, flag: &str| -> Result<usize, ParseError> {
        opts.value_for(flag)?.parse().map_err(|e| ParseError(format!("bad {flag}: {e}")))
    };
    match flag {
        "--algo" => cmd.algo = opts.value_for("--algo")?,
        "-k" => cmd.k = numeric(opts, "-k")? as u32,
        "--system" => cmd.system = opts.value_for("--system")?,
        "--model" => cmd.model = opts.value_for("--model")?,
        "--features" => cmd.features = numeric(opts, "--features")?,
        "--hidden" => cmd.hidden = numeric(opts, "--hidden")?,
        "--layers" => cmd.layers = numeric(opts, "--layers")?,
        "--directed" => cmd.directed = true,
        "--faults" => cmd.faults = true,
        "--mtbf" => {
            cmd.mtbf = opts
                .value_for("--mtbf")?
                .parse()
                .map_err(|e| ParseError(format!("bad --mtbf: {e}")))?;
            if cmd.mtbf.is_nan() || cmd.mtbf <= 0.0 {
                return err("--mtbf must be positive");
            }
        }
        "--epochs" => {
            cmd.epochs = numeric(opts, "--epochs")? as u32;
            if cmd.epochs == 0 {
                return err("--epochs must be at least 1");
            }
        }
        "--checkpoint-every" => {
            cmd.checkpoint_every = numeric(opts, "--checkpoint-every")? as u32;
            if cmd.checkpoint_every == 0 {
                return err(
                    "--checkpoint-every must be at least 1 \
                     (omit the flag to run without checkpoints)",
                );
            }
        }
        "--fault-seed" => {
            cmd.fault_seed = opts
                .value_for("--fault-seed")?
                .parse()
                .map_err(|e| ParseError(format!("bad --fault-seed: {e}")))?;
        }
        "--mitigate" => {
            let mode = opts.value_for("--mitigate")?;
            if gp_cluster::MitigationPolicy::parse(&mode).is_none() {
                return err(format!(
                    "unknown mitigation mode {mode:?} \
                     (none|steal|speculate|adaptive|all)"
                ));
            }
            cmd.mitigate = mode;
        }
        "--engine-threads" => {
            let value = opts.value_for("--engine-threads")?;
            cmd.engine_threads = Threads::parse(&value).ok_or_else(|| {
                ParseError(format!(
                    "--engine-threads expects a count or \"auto\", got {value:?}"
                ))
            })?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_simulate(opts: &mut Opts) -> Result<Command, ParseError> {
    let Some(input) = opts.next() else {
        return err("simulate requires an edge-list path");
    };
    let mut cmd = default_simulate(PathBuf::from(input));
    while let Some(flag) = opts.next() {
        if !apply_simulate_flag(&mut cmd, &flag, opts)? {
            return err(format!("unknown option {flag:?}"));
        }
    }
    Ok(Command::Simulate(cmd))
}

fn parse_trace(opts: &mut Opts) -> Result<Command, ParseError> {
    let Some(input) = opts.next() else {
        return err("trace requires an edge-list path");
    };
    let mut cmd = TraceCmd {
        sim: default_simulate(PathBuf::from(input)),
        trace_out: PathBuf::from("trace.json"),
        phase_csv: None,
    };
    while let Some(flag) = opts.next() {
        match flag.as_str() {
            "--trace-out" => cmd.trace_out = PathBuf::from(opts.value_for("--trace-out")?),
            "--phase-csv" => {
                cmd.phase_csv = Some(PathBuf::from(opts.value_for("--phase-csv")?));
            }
            other => {
                if !apply_simulate_flag(&mut cmd.sim, other, opts)? {
                    return err(format!("unknown option {other:?}"));
                }
            }
        }
    }
    Ok(Command::Trace(cmd))
}

fn parse_diagnose(opts: &mut Opts) -> Result<Command, ParseError> {
    let Some(input) = opts.next() else {
        return err("diagnose requires an edge-list path");
    };
    let mut cmd = DiagnoseCmd {
        sim: default_simulate(PathBuf::from(input)),
        prom_out: PathBuf::from("metrics.prom"),
        report_out: PathBuf::from("report.md"),
    };
    while let Some(flag) = opts.next() {
        match flag.as_str() {
            "--prom-out" => cmd.prom_out = PathBuf::from(opts.value_for("--prom-out")?),
            "--report-out" => {
                cmd.report_out = PathBuf::from(opts.value_for("--report-out")?);
            }
            other => {
                if !apply_simulate_flag(&mut cmd.sim, other, opts)? {
                    return err(format!("unknown option {other:?}"));
                }
            }
        }
    }
    Ok(Command::Diagnose(cmd))
}

fn parse_chaos(opts: &mut Opts) -> Result<Command, ParseError> {
    let Some(input) = opts.next() else {
        return err("chaos requires an edge-list path");
    };
    let mut sim = default_simulate(PathBuf::from(input));
    // A soak without churn-and-crash pressure proves nothing: faults
    // are always on, the horizon is longer than `simulate`'s, and
    // checkpoints are mandatory (the restore path is under test).
    sim.algo = "all".into();
    sim.faults = true;
    sim.epochs = 20;
    sim.checkpoint_every = 4;
    let mut cmd =
        ChaosCmd { sim, threads: Threads::auto(), bench_out: None, csv_out: None };
    while let Some(flag) = opts.next() {
        match flag.as_str() {
            "--threads" => {
                let value = opts.value_for("--threads")?;
                cmd.threads = Threads::parse(&value).ok_or_else(|| {
                    ParseError(format!(
                        "--threads expects a count or \"auto\", got {value:?}"
                    ))
                })?;
            }
            "--bench-out" => {
                cmd.bench_out = Some(PathBuf::from(opts.value_for("--bench-out")?));
            }
            "--csv-out" => cmd.csv_out = Some(PathBuf::from(opts.value_for("--csv-out")?)),
            // Silently accepting these would suggest the soak can run
            // fault-free or mitigated; it can't.
            "--faults" => return err("chaos always injects faults; drop --faults"),
            "--mitigate" => {
                return err("chaos runs unmitigated; `gnnpart simulate` takes --mitigate");
            }
            other => {
                if !apply_simulate_flag(&mut cmd.sim, other, opts)? {
                    return err(format!("unknown option {other:?}"));
                }
            }
        }
    }
    Ok(Command::Chaos(cmd))
}

fn parse_netchaos(opts: &mut Opts) -> Result<Command, ParseError> {
    let Some(input) = opts.next() else {
        return err("netchaos requires an edge-list path");
    };
    let mut sim = default_simulate(PathBuf::from(input));
    // Same rationale as chaos: the soak is pointless without fault
    // pressure, and the network-fault plan is derived from the same
    // seed so one --fault-seed moves every schedule together.
    sim.algo = "all".into();
    sim.faults = true;
    sim.epochs = 20;
    sim.checkpoint_every = 4;
    let mut cmd = NetChaosCmd {
        sim,
        threads: Threads::auto(),
        bench_out: None,
        csv_out: None,
        prom_out: None,
    };
    while let Some(flag) = opts.next() {
        match flag.as_str() {
            "--threads" => {
                let value = opts.value_for("--threads")?;
                cmd.threads = Threads::parse(&value).ok_or_else(|| {
                    ParseError(format!(
                        "--threads expects a count or \"auto\", got {value:?}"
                    ))
                })?;
            }
            "--bench-out" => {
                cmd.bench_out = Some(PathBuf::from(opts.value_for("--bench-out")?));
            }
            "--csv-out" => cmd.csv_out = Some(PathBuf::from(opts.value_for("--csv-out")?)),
            "--prom-out" => cmd.prom_out = Some(PathBuf::from(opts.value_for("--prom-out")?)),
            "--faults" => return err("netchaos always injects faults; drop --faults"),
            "--mitigate" => {
                return err("netchaos runs unmitigated; `gnnpart simulate` takes --mitigate");
            }
            other => {
                if !apply_simulate_flag(&mut cmd.sim, other, opts)? {
                    return err(format!("unknown option {other:?}"));
                }
            }
        }
    }
    Ok(Command::NetChaos(cmd))
}

fn parse_bench(opts: &mut Opts) -> Result<Command, ParseError> {
    let mut cmd = BenchCmd {
        scale: GraphScale::Small,
        k: 8,
        out: PathBuf::from("BENCH_perf.json"),
        report_out: None,
        profile: false,
    };
    while let Some(flag) = opts.next() {
        match flag.as_str() {
            "--scale" => cmd.scale = parse_scale(&opts.value_for("--scale")?)?,
            "--quick" => cmd.scale = GraphScale::Tiny,
            "--parts" => {
                cmd.k = opts
                    .value_for("--parts")?
                    .parse()
                    .map_err(|e| ParseError(format!("bad --parts: {e}")))?;
                if cmd.k < 2 {
                    return err("--parts must be at least 2");
                }
            }
            "--out" => cmd.out = PathBuf::from(opts.value_for("--out")?),
            "--report-out" => {
                cmd.report_out = Some(PathBuf::from(opts.value_for("--report-out")?));
            }
            "--profile" => cmd.profile = true,
            other => return err(format!("unknown option {other:?}")),
        }
    }
    Ok(Command::Bench(cmd))
}

fn parse_stream(opts: &mut Opts) -> Result<Command, ParseError> {
    let Some(input) = opts.next() else {
        return err("stream requires an edge-list path");
    };
    let mut sim = default_simulate(PathBuf::from(input));
    // The sweep's point is the roster-wide decay comparison, and the
    // stream leg composes with nothing else: the fault knobs are
    // rejected below rather than silently ignored.
    sim.algo = "all".into();
    let mut cmd = StreamCmd {
        sim,
        batches: 8,
        stream_seed: 42,
        threads: Threads::auto(),
        bench_out: None,
        csv_out: None,
    };
    while let Some(flag) = opts.next() {
        match flag.as_str() {
            "--batches" => {
                cmd.batches = opts
                    .value_for("--batches")?
                    .parse()
                    .map_err(|e| ParseError(format!("bad --batches: {e}")))?;
                if cmd.batches == 0 {
                    return err("--batches must be at least 1");
                }
            }
            "--stream-seed" => {
                cmd.stream_seed = opts
                    .value_for("--stream-seed")?
                    .parse()
                    .map_err(|e| ParseError(format!("bad --stream-seed: {e}")))?;
            }
            "--threads" => {
                let value = opts.value_for("--threads")?;
                cmd.threads = Threads::parse(&value).ok_or_else(|| {
                    ParseError(format!(
                        "--threads expects a count or \"auto\", got {value:?}"
                    ))
                })?;
            }
            "--bench-out" => {
                cmd.bench_out = Some(PathBuf::from(opts.value_for("--bench-out")?));
            }
            "--csv-out" => cmd.csv_out = Some(PathBuf::from(opts.value_for("--csv-out")?)),
            // The stream leg composes with no other RunSpec leg, and
            // its horizon is the batch count — accepting these would
            // suggest otherwise.
            "--faults" | "--mtbf" | "--fault-seed" | "--checkpoint-every" => {
                return err(format!(
                    "stream runs on a healthy cluster; {flag} belongs to \
                     `gnnpart simulate --faults`"
                ));
            }
            "--mitigate" => {
                return err("stream runs unmitigated; `gnnpart simulate` takes --mitigate");
            }
            "--epochs" => {
                return err("stream trains one epoch per batch; use --batches for the horizon");
            }
            other => {
                if !apply_simulate_flag(&mut cmd.sim, other, opts)? {
                    return err(format!("unknown option {other:?}"));
                }
            }
        }
    }
    Ok(Command::Stream(cmd))
}

fn parse_recommend(opts: &mut Opts) -> Result<Command, ParseError> {
    let Some(input) = opts.next() else {
        return err("recommend requires an edge-list path");
    };
    let mut cmd = RecommendCmd {
        input: PathBuf::from(input),
        k: 8,
        system: "distgnn".into(),
        epochs: 100,
        features: 64,
        hidden: 64,
        layers: 3,
        directed: false,
        threads: Threads::auto(),
    };
    while let Some(flag) = opts.next() {
        let numeric = |opts: &mut Opts, flag: &str| -> Result<usize, ParseError> {
            opts.value_for(flag)?.parse().map_err(|e| ParseError(format!("bad {flag}: {e}")))
        };
        match flag.as_str() {
            "-k" => cmd.k = numeric(opts, "-k")? as u32,
            "--system" => cmd.system = opts.value_for("--system")?,
            "--epochs" => cmd.epochs = numeric(opts, "--epochs")? as u32,
            "--features" => cmd.features = numeric(opts, "--features")?,
            "--hidden" => cmd.hidden = numeric(opts, "--hidden")?,
            "--layers" => cmd.layers = numeric(opts, "--layers")?,
            "--directed" => cmd.directed = true,
            "--threads" => {
                let value = opts.value_for("--threads")?;
                cmd.threads = Threads::parse(&value).ok_or_else(|| {
                    ParseError(format!(
                        "--threads expects a count or \"auto\", got {value:?}"
                    ))
                })?;
            }
            other => return err(format!("unknown option {other:?}")),
        }
    }
    Ok(Command::Recommend(cmd))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, ParseError> {
        let v: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse(&[]), Ok(Command::Help));
        assert_eq!(parse(&["help"]), Ok(Command::Help));
    }

    #[test]
    fn generate_defaults() {
        let Command::Generate(c) = parse(&["generate", "OR"]).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.dataset, "OR");
        assert_eq!(c.scale, GraphScale::Small);
        assert_eq!(c.out, None);
    }

    #[test]
    fn generate_with_options() {
        let Command::Generate(c) =
            parse(&["generate", "DI", "--scale", "tiny", "--out", "x.el"]).unwrap()
        else {
            panic!("wrong command");
        };
        assert_eq!(c.scale, GraphScale::Tiny);
        assert_eq!(c.out, Some(PathBuf::from("x.el")));
    }

    #[test]
    fn partition_options() {
        let Command::Partition(c) = parse(&[
            "partition", "g.el", "--algo", "HEP-100", "-k", "16", "--seed", "7", "--directed",
        ])
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.algo, "HEP-100");
        assert_eq!(c.k, 16);
        assert_eq!(c.seed, 7);
        assert!(c.directed);
    }

    #[test]
    fn simulate_options() {
        let Command::Simulate(c) = parse(&[
            "simulate", "g.el", "--system", "distdgl", "--model", "gat", "--features", "512",
        ])
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.system, "distdgl");
        assert_eq!(c.model, "gat");
        assert_eq!(c.features, 512);
        assert_eq!(c.layers, 3);
        assert!(!c.faults, "faults off by default");
        assert_eq!(c.mtbf, 5.0);
        assert_eq!(c.epochs, 10);
        assert_eq!(c.checkpoint_every, 0);
        assert_eq!(c.fault_seed, 42);
        assert_eq!(c.mitigate, "none", "mitigation off by default");
        assert_eq!(c.engine_threads, Threads::serial(), "serial engines by default");
    }

    #[test]
    fn engine_threads_flag_shared_by_engine_commands() {
        // The flag lives in the shared simulate handler, so every
        // engine-running command inherits it.
        for cmd in ["simulate", "trace", "diagnose", "chaos", "netchaos"] {
            let parsed = parse(&[cmd, "g.el", "--engine-threads", "4"]).unwrap();
            let sim = match &parsed {
                Command::Simulate(c) => c,
                Command::Trace(c) => &c.sim,
                Command::Diagnose(c) => &c.sim,
                Command::Chaos(c) => &c.sim,
                Command::NetChaos(c) => &c.sim,
                other => panic!("wrong command {other:?}"),
            };
            assert_eq!(sim.engine_threads, Threads::new(4), "{cmd}");
        }
        let Command::Simulate(c) =
            parse(&["simulate", "g.el", "--engine-threads", "auto"]).unwrap()
        else {
            panic!("wrong command");
        };
        assert_eq!(c.engine_threads, Threads::auto());
        assert!(parse(&["simulate", "g.el", "--engine-threads", "many"])
            .unwrap_err()
            .0
            .contains("--engine-threads expects"));
        assert!(parse(&["simulate", "g.el", "--engine-threads"])
            .unwrap_err()
            .0
            .contains("requires a value"));
    }

    #[test]
    fn simulate_fault_options() {
        let Command::Simulate(c) = parse(&[
            "simulate", "g.el", "--faults", "--mtbf", "3.5", "--epochs", "20",
            "--checkpoint-every", "4", "--fault-seed", "7", "--mitigate", "all",
        ])
        .unwrap() else {
            panic!("wrong command");
        };
        assert!(c.faults);
        assert_eq!(c.mtbf, 3.5);
        assert_eq!(c.epochs, 20);
        assert_eq!(c.checkpoint_every, 4);
        assert_eq!(c.fault_seed, 7);
        assert_eq!(c.mitigate, "all");
    }

    #[test]
    fn simulate_accepts_every_mitigation_mode() {
        for mode in ["none", "steal", "speculate", "adaptive", "all"] {
            let Command::Simulate(c) =
                parse(&["simulate", "g.el", "--faults", "--mitigate", mode]).unwrap()
            else {
                panic!("wrong command");
            };
            assert_eq!(c.mitigate, mode);
        }
    }

    #[test]
    fn simulate_rejects_bad_mitigation_mode() {
        assert!(parse(&["simulate", "g.el", "--mitigate", "wishful"])
            .unwrap_err()
            .0
            .contains("unknown mitigation mode"));
        assert!(parse(&["simulate", "g.el", "--mitigate"])
            .unwrap_err()
            .0
            .contains("requires a value"));
    }

    #[test]
    fn simulate_rejects_bad_mtbf() {
        assert!(parse(&["simulate", "g.el", "--mtbf", "0"])
            .unwrap_err()
            .0
            .contains("must be positive"));
        assert!(parse(&["simulate", "g.el", "--mtbf", "abc"]).unwrap_err().0.contains("bad --mtbf"));
    }

    #[test]
    fn simulate_rejects_zero_epochs() {
        // The validation lives in the shared flag handler, so every
        // command that composes simulate options inherits it.
        for cmd in ["simulate", "trace", "diagnose", "chaos", "netchaos"] {
            assert!(parse(&[cmd, "g.el", "--epochs", "0"])
                .unwrap_err()
                .0
                .contains("--epochs must be at least 1"));
        }
        assert!(parse(&["simulate", "g.el", "--epochs", "abc"])
            .unwrap_err()
            .0
            .contains("bad --epochs"));
    }

    #[test]
    fn simulate_rejects_zero_checkpoint_every() {
        for cmd in ["simulate", "trace", "diagnose", "chaos", "netchaos"] {
            assert!(parse(&[cmd, "g.el", "--checkpoint-every", "0"])
                .unwrap_err()
                .0
                .contains("--checkpoint-every must be at least 1"));
        }
        // Omitting the flag still means "no checkpoints" for simulate.
        let Command::Simulate(c) = parse(&["simulate", "g.el"]).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.checkpoint_every, 0);
    }

    #[test]
    fn trace_defaults() {
        let Command::Trace(c) = parse(&["trace", "g.el"]).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.trace_out, PathBuf::from("trace.json"));
        assert_eq!(c.phase_csv, None);
        assert_eq!(c.sim.algo, "HDRF");
        assert!(!c.sim.faults);
    }

    #[test]
    fn trace_composes_simulate_and_trace_flags() {
        let Command::Trace(c) = parse(&[
            "trace", "g.el", "--system", "distdgl", "--faults", "--mitigate", "all",
            "--epochs", "4", "--trace-out", "t.json", "--phase-csv", "p.csv",
        ])
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.sim.system, "distdgl");
        assert!(c.sim.faults);
        assert_eq!(c.sim.mitigate, "all");
        assert_eq!(c.sim.epochs, 4);
        assert_eq!(c.trace_out, PathBuf::from("t.json"));
        assert_eq!(c.phase_csv, Some(PathBuf::from("p.csv")));
    }

    #[test]
    fn trace_rejects_unknown_options() {
        assert!(parse(&["trace", "g.el", "--bogus"]).unwrap_err().0.contains("unknown option"));
        assert!(parse(&["trace"]).unwrap_err().0.contains("edge-list path"));
    }

    #[test]
    fn diagnose_defaults() {
        let Command::Diagnose(c) = parse(&["diagnose", "g.el"]).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.prom_out, PathBuf::from("metrics.prom"));
        assert_eq!(c.report_out, PathBuf::from("report.md"));
        assert_eq!(c.sim.algo, "HDRF");
        assert!(!c.sim.faults);
    }

    #[test]
    fn diagnose_composes_simulate_and_diagnose_flags() {
        let Command::Diagnose(c) = parse(&[
            "diagnose", "g.el", "--system", "distdgl", "--faults", "--mtbf", "3.0",
            "--mitigate", "steal", "--epochs", "5", "--checkpoint-every", "2",
            "--fault-seed", "9", "--prom-out", "m.prom", "--report-out", "r.md",
        ])
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.sim.system, "distdgl");
        assert!(c.sim.faults);
        assert_eq!(c.sim.mtbf, 3.0);
        assert_eq!(c.sim.mitigate, "steal");
        assert_eq!(c.sim.epochs, 5);
        assert_eq!(c.sim.checkpoint_every, 2);
        assert_eq!(c.sim.fault_seed, 9);
        assert_eq!(c.prom_out, PathBuf::from("m.prom"));
        assert_eq!(c.report_out, PathBuf::from("r.md"));
    }

    #[test]
    fn diagnose_rejects_unknown_options() {
        assert!(parse(&["diagnose", "g.el", "--bogus"]).unwrap_err().0.contains("unknown option"));
        assert!(parse(&["diagnose"]).unwrap_err().0.contains("edge-list path"));
        assert!(parse(&["diagnose", "g.el", "--prom-out"])
            .unwrap_err()
            .0
            .contains("requires a value"));
    }

    #[test]
    fn chaos_defaults() {
        let Command::Chaos(c) = parse(&["chaos", "g.el"]).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.sim.algo, "all", "whole roster by default");
        assert!(c.sim.faults, "faults always on");
        assert_eq!(c.sim.epochs, 20);
        assert_eq!(c.sim.checkpoint_every, 4, "checkpoints mandatory");
        assert_eq!(c.sim.system, "distgnn");
        assert_eq!(c.sim.fault_seed, 42);
        assert_eq!(c.threads, Threads::auto());
        assert_eq!(c.bench_out, None);
        assert_eq!(c.csv_out, None);
    }

    #[test]
    fn chaos_composes_simulate_and_chaos_flags() {
        let Command::Chaos(c) = parse(&[
            "chaos", "g.el", "--system", "distdgl", "--algo", "METIS", "-k", "6",
            "--epochs", "12", "--checkpoint-every", "3", "--mtbf", "2.5",
            "--fault-seed", "7", "--threads", "2", "--bench-out", "b.json",
            "--csv-out", "c.csv",
        ])
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.sim.system, "distdgl");
        assert_eq!(c.sim.algo, "METIS");
        assert_eq!(c.sim.k, 6);
        assert_eq!(c.sim.epochs, 12);
        assert_eq!(c.sim.checkpoint_every, 3);
        assert_eq!(c.sim.mtbf, 2.5);
        assert_eq!(c.sim.fault_seed, 7);
        assert_eq!(c.threads, Threads::new(2));
        assert_eq!(c.bench_out, Some(PathBuf::from("b.json")));
        assert_eq!(c.csv_out, Some(PathBuf::from("c.csv")));
    }

    #[test]
    fn chaos_rejects_fault_toggles_and_unknowns() {
        assert!(parse(&["chaos"]).unwrap_err().0.contains("edge-list path"));
        assert!(parse(&["chaos", "g.el", "--faults"])
            .unwrap_err()
            .0
            .contains("always injects faults"));
        assert!(parse(&["chaos", "g.el", "--mitigate", "all"])
            .unwrap_err()
            .0
            .contains("runs unmitigated"));
        assert!(parse(&["chaos", "g.el", "--bogus"]).unwrap_err().0.contains("unknown option"));
        assert!(parse(&["chaos", "g.el", "--threads", "many"])
            .unwrap_err()
            .0
            .contains("--threads expects"));
        assert!(parse(&["chaos", "g.el", "--bench-out"])
            .unwrap_err()
            .0
            .contains("requires a value"));
    }

    #[test]
    fn netchaos_defaults() {
        let Command::NetChaos(c) = parse(&["netchaos", "g.el"]).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.sim.algo, "all", "whole roster by default");
        assert!(c.sim.faults, "faults always on");
        assert_eq!(c.sim.epochs, 20);
        assert_eq!(c.sim.checkpoint_every, 4, "checkpoints mandatory");
        assert_eq!(c.sim.system, "distgnn");
        assert_eq!(c.sim.fault_seed, 42);
        assert_eq!(c.threads, Threads::auto());
        assert_eq!(c.bench_out, None);
        assert_eq!(c.csv_out, None);
        assert_eq!(c.prom_out, None);
    }

    #[test]
    fn netchaos_composes_simulate_and_netchaos_flags() {
        let Command::NetChaos(c) = parse(&[
            "netchaos", "g.el", "--system", "distdgl", "--algo", "METIS", "-k", "6",
            "--epochs", "12", "--checkpoint-every", "3", "--mtbf", "2.5",
            "--fault-seed", "7", "--threads", "2", "--bench-out", "b.json",
            "--csv-out", "c.csv", "--prom-out", "m.prom",
        ])
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.sim.system, "distdgl");
        assert_eq!(c.sim.algo, "METIS");
        assert_eq!(c.sim.k, 6);
        assert_eq!(c.sim.epochs, 12);
        assert_eq!(c.sim.checkpoint_every, 3);
        assert_eq!(c.sim.mtbf, 2.5);
        assert_eq!(c.sim.fault_seed, 7);
        assert_eq!(c.threads, Threads::new(2));
        assert_eq!(c.bench_out, Some(PathBuf::from("b.json")));
        assert_eq!(c.csv_out, Some(PathBuf::from("c.csv")));
        assert_eq!(c.prom_out, Some(PathBuf::from("m.prom")));
    }

    #[test]
    fn netchaos_rejects_fault_toggles_and_unknowns() {
        assert!(parse(&["netchaos"]).unwrap_err().0.contains("edge-list path"));
        assert!(parse(&["netchaos", "g.el", "--faults"])
            .unwrap_err()
            .0
            .contains("always injects faults"));
        assert!(parse(&["netchaos", "g.el", "--mitigate", "all"])
            .unwrap_err()
            .0
            .contains("runs unmitigated"));
        assert!(parse(&["netchaos", "g.el", "--bogus"])
            .unwrap_err()
            .0
            .contains("unknown option"));
        assert!(parse(&["netchaos", "g.el", "--threads", "many"])
            .unwrap_err()
            .0
            .contains("--threads expects"));
    }

    #[test]
    fn stream_defaults() {
        let Command::Stream(c) = parse(&["stream", "g.el"]).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.sim.algo, "all", "whole roster by default");
        assert!(!c.sim.faults, "stream runs healthy");
        assert_eq!(c.sim.system, "distgnn");
        assert_eq!(c.batches, 8);
        assert_eq!(c.stream_seed, 42);
        assert_eq!(c.threads, Threads::auto());
        assert_eq!(c.bench_out, None);
        assert_eq!(c.csv_out, None);
    }

    #[test]
    fn stream_composes_simulate_and_stream_flags() {
        let Command::Stream(c) = parse(&[
            "stream", "g.el", "--system", "distdgl", "--algo", "LDG", "-k", "6",
            "--model", "gcn", "--batches", "12", "--stream-seed", "7",
            "--threads", "2", "--engine-threads", "4", "--bench-out", "b.json",
            "--csv-out", "c.csv",
        ])
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.sim.system, "distdgl");
        assert_eq!(c.sim.algo, "LDG");
        assert_eq!(c.sim.k, 6);
        assert_eq!(c.sim.model, "gcn");
        assert_eq!(c.batches, 12);
        assert_eq!(c.stream_seed, 7);
        assert_eq!(c.threads, Threads::new(2));
        assert_eq!(c.sim.engine_threads, Threads::new(4));
        assert_eq!(c.bench_out, Some(PathBuf::from("b.json")));
        assert_eq!(c.csv_out, Some(PathBuf::from("c.csv")));
    }

    #[test]
    fn stream_rejects_fault_family_and_unknowns() {
        assert!(parse(&["stream"]).unwrap_err().0.contains("edge-list path"));
        for flag in ["--faults", "--mtbf", "--fault-seed", "--checkpoint-every"] {
            assert!(
                parse(&["stream", "g.el", flag, "3"])
                    .unwrap_err()
                    .0
                    .contains("healthy cluster"),
                "{flag}"
            );
        }
        assert!(parse(&["stream", "g.el", "--mitigate", "all"])
            .unwrap_err()
            .0
            .contains("runs unmitigated"));
        assert!(parse(&["stream", "g.el", "--epochs", "5"])
            .unwrap_err()
            .0
            .contains("use --batches"));
        assert!(parse(&["stream", "g.el", "--batches", "0"])
            .unwrap_err()
            .0
            .contains("--batches must be at least 1"));
        assert!(parse(&["stream", "g.el", "--batches", "zz"]).unwrap_err().0.contains("bad --batches"));
        assert!(parse(&["stream", "g.el", "--bogus"]).unwrap_err().0.contains("unknown option"));
        assert!(parse(&["stream", "g.el", "--threads", "many"])
            .unwrap_err()
            .0
            .contains("--threads expects"));
    }

    #[test]
    fn bench_defaults() {
        let Command::Bench(c) = parse(&["bench"]).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.scale, GraphScale::Small);
        assert_eq!(c.k, 8);
        assert_eq!(c.out, PathBuf::from("BENCH_perf.json"));
        assert_eq!(c.report_out, None);
        assert!(!c.profile);
    }

    #[test]
    fn bench_options_and_quick_shorthand() {
        let Command::Bench(c) = parse(&[
            "bench", "--scale", "medium", "--parts", "16", "--out", "p.json", "--report-out",
            "p.md", "--profile",
        ])
        .unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(c.scale, GraphScale::Medium);
        assert_eq!(c.k, 16);
        assert_eq!(c.out, PathBuf::from("p.json"));
        assert_eq!(c.report_out, Some(PathBuf::from("p.md")));
        assert!(c.profile);
        let Command::Bench(q) = parse(&["bench", "--quick"]).unwrap() else {
            panic!("wrong command");
        };
        assert_eq!(q.scale, GraphScale::Tiny);
    }

    #[test]
    fn bench_rejects_bad_options() {
        assert!(parse(&["bench", "--parts", "1"]).unwrap_err().0.contains("at least 2"));
        assert!(parse(&["bench", "--parts", "zz"]).unwrap_err().0.contains("bad --parts"));
        assert!(parse(&["bench", "--scale", "huge"]).unwrap_err().0.contains("unknown scale"));
        assert!(parse(&["bench", "--bogus"]).unwrap_err().0.contains("unknown option"));
    }

    #[test]
    fn recommend_options() {
        let Command::Recommend(c) =
            parse(&["recommend", "g.el", "--epochs", "50", "--system", "distdgl"]).unwrap()
        else {
            panic!("wrong command");
        };
        assert_eq!(c.epochs, 50);
        assert_eq!(c.system, "distdgl");
        assert_eq!(c.k, 8);
        assert_eq!(c.threads, Threads::auto(), "auto pool width by default");
    }

    #[test]
    fn recommend_threads_flag() {
        let Command::Recommend(c) =
            parse(&["recommend", "g.el", "--threads", "4"]).unwrap()
        else {
            panic!("wrong command");
        };
        assert_eq!(c.threads, Threads::new(4));
        let Command::Recommend(c) =
            parse(&["recommend", "g.el", "--threads", "auto"]).unwrap()
        else {
            panic!("wrong command");
        };
        assert_eq!(c.threads, Threads::auto());
        assert!(parse(&["recommend", "g.el", "--threads", "many"])
            .unwrap_err()
            .0
            .contains("--threads expects"));
        assert!(parse(&["recommend", "g.el", "--threads"])
            .unwrap_err()
            .0
            .contains("requires a value"));
    }

    #[test]
    fn errors_are_informative() {
        assert!(parse(&["frobnicate"]).unwrap_err().0.contains("unknown command"));
        assert!(parse(&["generate"]).unwrap_err().0.contains("dataset id"));
        assert!(parse(&["partition", "g.el", "-k"]).unwrap_err().0.contains("requires a value"));
        assert!(parse(&["partition", "g.el", "-k", "zz"]).unwrap_err().0.contains("bad -k"));
        assert!(parse(&["generate", "OR", "--scale", "huge"]).unwrap_err().0.contains("unknown scale"));
    }
}
