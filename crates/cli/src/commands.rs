//! Command implementations.

use std::error::Error;
use std::io::Write;
use std::path::Path;

use gp_cluster::{
    ClusterSpec, FaultPlan, FaultSpec, MitigationPolicy, MitigationReport, RecoveryReport,
    RunSpec, TraceSink,
};
use gp_exec::Parallelism;
use gp_core::registry;
use gp_distdgl::{DistDglConfig, DistDglEngine};
use gp_distgnn::{DistGnnConfig, DistGnnEngine};
use gp_graph::{edgelist, DatasetId, DegreeStats, Graph, VertexSplit};
use gp_tensor::{ModelConfig, ModelKind};

use crate::args::{
    BenchCmd, ChaosCmd, DiagnoseCmd, GenerateCmd, NetChaosCmd, PartitionCmd, RecommendCmd,
    SimulateCmd, StatsCmd, StreamCmd, TraceCmd,
};

type CmdResult = Result<(), Box<dyn Error>>;

/// `gnnpart generate`.
pub fn generate(cmd: GenerateCmd) -> CmdResult {
    let id = DatasetId::parse(&cmd.dataset)
        .ok_or_else(|| format!("unknown dataset {:?} (HW|DI|EN|EU|OR)", cmd.dataset))?;
    let graph = id.generate(cmd.scale)?;
    let out = cmd
        .out
        .unwrap_or_else(|| format!("{}.el", id.name().to_lowercase()).into());
    edgelist::write_edge_list_file(&graph, &out)?;
    println!(
        "{}: |V| = {}, |E| = {}, directed = {} -> {}",
        id.name(),
        graph.num_vertices(),
        graph.num_edges(),
        graph.is_directed(),
        out.display()
    );
    Ok(())
}

fn load(path: &Path, directed: bool) -> Result<Graph, Box<dyn Error>> {
    Ok(edgelist::read_edge_list_file(path, directed)?)
}

/// `gnnpart stats`.
pub fn stats(cmd: StatsCmd) -> CmdResult {
    let graph = load(&cmd.input, cmd.directed)?;
    let s = DegreeStats::compute(&graph);
    println!("vertices:      {}", graph.num_vertices());
    println!("edges:         {}", graph.num_edges());
    println!("directed:      {}", graph.is_directed());
    println!("mean degree:   {:.2}", s.mean);
    println!("median degree: {}", s.median);
    println!("max degree:    {}", s.max);
    println!("p99 degree:    {}", s.p99);
    println!("degree gini:   {:.3}", s.gini);
    println!("heavy tailed:  {}", s.is_heavy_tailed(5.0));
    if graph.num_vertices() > 0 {
        use gp_graph::algo;
        let (_, components) = algo::connected_components(&graph);
        println!("components:    {components}");
        println!("largest comp:  {}", algo::largest_component_size(&graph));
        // Seed the double sweep inside the largest component: vertex 0
        // may be isolated, whose eccentricity says nothing about the
        // graph's diameter.
        let seed = algo::largest_component_vertex(&graph).unwrap_or(0);
        println!("diameter >=:   {}", algo::diameter_lower_bound(&graph, seed));
        println!("clustering:    {:.4}", algo::clustering_coefficient(&graph, 500));
    }
    Ok(())
}

/// `gnnpart partition`.
pub fn partition(cmd: PartitionCmd) -> CmdResult {
    let graph = load(&cmd.input, cmd.directed)?;
    let start = std::time::Instant::now();
    // Try edge partitioners first, then vertex partitioners.
    if let Some(p) = registry::edge_partitioner(&cmd.algo) {
        let part = p.partition_edges(&graph, cmd.k, cmd.seed)?;
        let elapsed = start.elapsed();
        println!("edge partitioning (vertex-cut) with {} into {} parts", p.name(), cmd.k);
        println!("replication factor: {:.3}", part.replication_factor());
        println!("edge balance:       {:.3}", part.edge_balance());
        println!("vertex balance:     {:.3}", part.vertex_balance());
        println!("time:               {elapsed:.2?}");
        if let Some(out) = cmd.out {
            write_assignments(&out, part.assignments())?;
            println!("assignments (per edge, canonical order) -> {}", out.display());
        }
    } else if let Some(p) = registry::vertex_partitioner(&cmd.algo, None) {
        let part = p.partition_vertices(&graph, cmd.k, cmd.seed)?;
        let elapsed = start.elapsed();
        println!("vertex partitioning (edge-cut) with {} into {} parts", p.name(), cmd.k);
        println!("edge-cut ratio:  {:.4}", part.edge_cut_ratio());
        println!("vertex balance:  {:.3}", part.vertex_balance());
        println!("time:            {elapsed:.2?}");
        if let Some(out) = cmd.out {
            write_assignments(&out, part.assignments())?;
            println!("assignments (per vertex) -> {}", out.display());
        }
    } else {
        return Err(format!(
            "unknown partitioner {:?}; run `gnnpart list` for the roster",
            cmd.algo
        )
        .into());
    }
    Ok(())
}

fn write_assignments(path: &Path, assignments: &[u32]) -> std::io::Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    for &a in assignments {
        writeln!(f, "{a}")?;
    }
    f.flush()
}

/// `gnnpart simulate`.
pub fn simulate(cmd: SimulateCmd) -> CmdResult {
    let graph = load(&cmd.input, cmd.directed)?;
    let kind = ModelKind::parse(&cmd.model)
        .ok_or_else(|| format!("unknown model {:?} (sage|gcn|gat)", cmd.model))?;
    let policy = MitigationPolicy::parse(&cmd.mitigate).ok_or_else(|| {
        format!(
            "unknown mitigation mode {:?} (none|steal|speculate|adaptive|all)",
            cmd.mitigate
        )
    })?;
    let model = ModelConfig {
        kind,
        feature_dim: cmd.features,
        hidden_dim: cmd.hidden,
        num_layers: cmd.layers,
        num_classes: 16,
        seed: 0,
    };
    match cmd.system.as_str() {
        "distgnn" => {
            let p = registry::edge_partitioner(&cmd.algo)
                .ok_or_else(|| format!("{:?} is not an edge partitioner", cmd.algo))?;
            let part = p.partition_edges(&graph, cmd.k, 42)?;
            let mut config = DistGnnConfig::paper(model, ClusterSpec::paper(cmd.k));
            config.checkpoint_every = cmd.checkpoint_every;
            let engine = DistGnnEngine::builder(&graph, &part)
                .config(config)
                .threads(cmd.engine_threads)
                .build()?;
            println!("DistGNN (full-batch) on {} machines with {}", cmd.k, p.name());
            println!("replication factor: {:.3}", part.replication_factor());
            if cmd.faults {
                let plan = fault_plan(&cmd);
                let mut recovery = RecoveryReport::default();
                let mut mitigation = MitigationReport::default();
                let spec = RunSpec::healthy().epochs(cmd.epochs).faults(plan);
                let (epochs, aborted) = if policy.is_none() {
                    let (faulty, err) = engine.run(&spec)?.into_faulty();
                    let lifted = faulty
                        .into_iter()
                        .map(|r| gp_distgnn::MitigatedEpochReport {
                            report: r.report,
                            recovery: r.recovery,
                            crashed_machines: r.crashed_machines,
                            mitigation: MitigationReport::default(),
                        })
                        .collect::<Vec<_>>();
                    (lifted, err)
                } else {
                    engine.run(&spec.mitigate(policy))?.into_mitigated()
                };
                let mut total = 0.0;
                for (epoch, r) in epochs.iter().enumerate() {
                    total += r.report.epoch_time();
                    recovery.merge(&r.recovery);
                    mitigation.merge(&r.mitigation);
                    let note = if r.crashed_machines.is_empty() {
                        String::new()
                    } else {
                        format!("  (crash: machines {:?})", r.crashed_machines)
                    };
                    println!(
                        "epoch {epoch:>3}: {:>10.3} ms{note}",
                        r.report.epoch_time() * 1e3
                    );
                }
                if let Some(e) = aborted {
                    println!("epoch {:>3}: training aborted: {e}", epochs.len());
                }
                print_recovery(total, &recovery);
                if !policy.is_none() {
                    print_mitigation(&cmd.mitigate, &mitigation);
                }
            } else {
                let report =
                    engine.run(&RunSpec::healthy())?.into_healthy().remove(0);
                println!("epoch time:         {:.3} ms", report.epoch_time() * 1e3);
                println!("  forward:          {:.3} ms", report.phases.forward * 1e3);
                println!("  backward:         {:.3} ms", report.phases.backward * 1e3);
                println!("  replica sync:     {:.3} ms", report.phases.sync * 1e3);
                println!("  optimiser:        {:.3} ms", report.phases.optimizer * 1e3);
                println!(
                    "network traffic:    {:.2} MB",
                    report.counters.total_network_bytes() as f64 / 1e6
                );
                println!("cluster memory:     {:.2} MB", report.total_memory() as f64 / 1e6);
                if report.any_oom() {
                    println!("WARNING: machines {:?} exceed installed memory", report.oom_machines);
                }
            }
        }
        "distdgl" => {
            let p = registry::vertex_partitioner(&cmd.algo, None)
                .ok_or_else(|| format!("{:?} is not a vertex partitioner", cmd.algo))?;
            let part = p.partition_vertices(&graph, cmd.k, 42)?;
            let split = VertexSplit::paper_default(graph.num_vertices(), 42)?;
            let config = DistDglConfig::paper(model, ClusterSpec::paper(cmd.k));
            let engine = DistDglEngine::builder(&graph, &part, &split)
                .config(config)
                .threads(cmd.engine_threads)
                .build()?;
            println!("DistDGL (mini-batch) on {} machines with {}", cmd.k, p.name());
            println!("edge-cut ratio:  {:.4}", part.edge_cut_ratio());
            if cmd.faults {
                let plan = fault_plan(&cmd);
                let mut recovery = RecoveryReport::default();
                let mut mitigation = MitigationReport::default();
                let spec = RunSpec::healthy().epochs(cmd.epochs).faults(plan);
                let (epochs, aborted) = if policy.is_none() {
                    let (faulty, err) = engine.run(&spec)?.into_faulty();
                    let lifted = faulty
                        .into_iter()
                        .map(|r| gp_distdgl::MitigatedEpochSummary {
                            summary: r.summary,
                            recovery: r.recovery,
                            mitigation: MitigationReport::default(),
                            failed_workers: r.failed_workers,
                        })
                        .collect::<Vec<_>>();
                    (lifted, err)
                } else {
                    engine.run(&spec.mitigate(policy))?.into_mitigated()
                };
                let mut total = 0.0;
                for (epoch, r) in epochs.iter().enumerate() {
                    total += r.summary.epoch_time();
                    recovery.merge(&r.recovery);
                    mitigation.merge(&r.mitigation);
                    let note = if r.failed_workers.is_empty() {
                        String::new()
                    } else {
                        format!("  (workers down: {:?})", r.failed_workers)
                    };
                    println!(
                        "epoch {epoch:>3}: {:>10.3} ms, {} steps{note}",
                        r.summary.epoch_time() * 1e3,
                        r.summary.steps
                    );
                }
                if let Some(e) = aborted {
                    println!("epoch {:>3}: training aborted: {e}", epochs.len());
                }
                print_recovery(total, &recovery);
                if !policy.is_none() {
                    print_mitigation(&cmd.mitigate, &mitigation);
                }
            } else {
                let summary =
                    engine.run(&RunSpec::healthy())?.into_healthy().remove(0);
                println!("steps/epoch:     {}", summary.steps);
                println!("epoch time:      {:.3} ms", summary.epoch_time() * 1e3);
                println!("  sampling:      {:.3} ms", summary.phases.sampling * 1e3);
                println!("  feature load:  {:.3} ms", summary.phases.feature_load * 1e3);
                println!("  forward:       {:.3} ms", summary.phases.forward * 1e3);
                println!("  backward:      {:.3} ms", summary.phases.backward * 1e3);
                println!(
                    "remote vertices: {} / {}",
                    summary.total_remote_vertices, summary.total_input_vertices
                );
                println!(
                    "network traffic: {:.2} MB",
                    summary.counters.total_network_bytes() as f64 / 1e6
                );
            }
        }
        other => return Err(format!("unknown system {other:?} (distgnn|distdgl)").into()),
    }
    Ok(())
}

/// `gnnpart trace`.
///
/// Runs the same simulation as `gnnpart simulate` — including the
/// `--faults` / `--mitigate` paths — but with an *enabled* span sink
/// attached to the engine, then exports the recorded trace as Chrome
/// `chrome://tracing` JSON (and optionally a per-phase CSV). Tracing is
/// purely observational, so the traced run is bit-identical to the
/// untraced one.
pub fn trace(cmd: &TraceCmd) -> CmdResult {
    let sim = &cmd.sim;
    let graph = load(&sim.input, sim.directed)?;
    let kind = ModelKind::parse(&sim.model)
        .ok_or_else(|| format!("unknown model {:?} (sage|gcn|gat)", sim.model))?;
    let policy = MitigationPolicy::parse(&sim.mitigate).ok_or_else(|| {
        format!(
            "unknown mitigation mode {:?} (none|steal|speculate|adaptive|all)",
            sim.mitigate
        )
    })?;
    let model = ModelConfig {
        kind,
        feature_dim: sim.features,
        hidden_dim: sim.hidden,
        num_layers: sim.layers,
        num_classes: 16,
        seed: 0,
    };
    let plan = if sim.faults { fault_plan(sim) } else { FaultPlan::empty() };
    let sink = TraceSink::enabled();
    match sim.system.as_str() {
        "distgnn" => {
            let p = registry::edge_partitioner(&sim.algo)
                .ok_or_else(|| format!("{:?} is not an edge partitioner", sim.algo))?;
            let part = p.partition_edges(&graph, sim.k, 42)?;
            let mut config = DistGnnConfig::paper(model, ClusterSpec::paper(sim.k));
            config.checkpoint_every = sim.checkpoint_every;
            let engine = DistGnnEngine::builder(&graph, &part)
                .config(config)
                .trace(sink.clone())
                .threads(sim.engine_threads)
                .build()?;
            println!("tracing DistGNN on {} machines with {}", sim.k, p.name());
            let spec = RunSpec::healthy().epochs(sim.epochs).faults(plan);
            let (completed, aborted) = if policy.is_none() {
                let (epochs, err) = engine.run(&spec)?.into_faulty();
                (epochs.len(), err.map(|e| e.to_string()))
            } else {
                let (epochs, err) = engine.run(&spec.mitigate(policy))?.into_mitigated();
                (epochs.len(), err.map(|e| e.to_string()))
            };
            if let Some(e) = aborted {
                println!("epoch {completed:>3}: training aborted: {e}");
            }
        }
        "distdgl" => {
            let p = registry::vertex_partitioner(&sim.algo, None)
                .ok_or_else(|| format!("{:?} is not a vertex partitioner", sim.algo))?;
            let part = p.partition_vertices(&graph, sim.k, 42)?;
            let split = VertexSplit::paper_default(graph.num_vertices(), 42)?;
            let config = DistDglConfig::paper(model, ClusterSpec::paper(sim.k));
            let engine = DistDglEngine::builder(&graph, &part, &split)
                .config(config)
                .trace(sink.clone())
                .threads(sim.engine_threads)
                .build()?;
            println!("tracing DistDGL on {} machines with {}", sim.k, p.name());
            let spec = RunSpec::healthy().epochs(sim.epochs).faults(plan);
            let (completed, aborted) = if policy.is_none() {
                let (epochs, err) = engine.run(&spec)?.into_faulty();
                (epochs.len(), err.map(|e| e.to_string()))
            } else {
                let (epochs, err) = engine.run(&spec.mitigate(policy))?.into_mitigated();
                (epochs.len(), err.map(|e| e.to_string()))
            };
            if let Some(e) = aborted {
                println!("epoch {completed:>3}: training aborted: {e}");
            }
        }
        other => return Err(format!("unknown system {other:?} (distgnn|distdgl)").into()),
    }
    std::fs::write(&cmd.trace_out, sink.to_chrome_json())?;
    println!(
        "trace: {} spans, {} counter samples over {:.3} simulated ms",
        sink.spans().len(),
        sink.counters().len(),
        sink.now() * 1e3
    );
    println!("chrome trace -> {} (load in chrome://tracing)", cmd.trace_out.display());
    if let Some(csv) = &cmd.phase_csv {
        std::fs::write(csv, sink.phase_csv())?;
        println!("phase CSV    -> {}", csv.display());
    }
    Ok(())
}

/// `gnnpart diagnose`.
///
/// Runs the same simulation as `gnnpart simulate` — including the
/// `--faults` / `--mitigate` paths — through the metrics-aggregation
/// layer: every per-worker, per-phase histogram total is cross-checked
/// against the engine's own report exactly (f64 `==`), then the
/// Prometheus text exposition and the markdown run report (phase
/// percentiles, skew indices, straggler attribution, ranked causes of
/// epoch time) are written out. Both artifacts are deterministic:
/// repeated runs produce identical bytes.
pub fn diagnose(cmd: &DiagnoseCmd) -> CmdResult {
    use gp_core::diagnose::{diagnose_distdgl, diagnose_distgnn, diagnose_prometheus, diagnose_report};
    let sim = &cmd.sim;
    let graph = load(&sim.input, sim.directed)?;
    let kind = ModelKind::parse(&sim.model)
        .ok_or_else(|| format!("unknown model {:?} (sage|gcn|gat)", sim.model))?;
    let policy = MitigationPolicy::parse(&sim.mitigate).ok_or_else(|| {
        format!(
            "unknown mitigation mode {:?} (none|steal|speculate|adaptive|all)",
            sim.mitigate
        )
    })?;
    let model = ModelConfig {
        kind,
        feature_dim: sim.features,
        hidden_dim: sim.hidden,
        num_layers: sim.layers,
        num_classes: 16,
        seed: 0,
    };
    let plan = sim.faults.then(|| fault_plan(sim));
    let diagnosis = match sim.system.as_str() {
        "distgnn" => {
            let p = registry::edge_partitioner(&sim.algo)
                .ok_or_else(|| format!("{:?} is not an edge partitioner", sim.algo))?;
            let part = p.partition_edges(&graph, sim.k, 42)?;
            let mut config = DistGnnConfig::paper(model, ClusterSpec::paper(sim.k));
            config.checkpoint_every = sim.checkpoint_every;
            println!("diagnosing DistGNN on {} machines with {}", sim.k, p.name());
            diagnose_distgnn(
                &graph,
                &part,
                p.name(),
                config,
                sim.epochs,
                plan.as_ref(),
                policy,
                sim.engine_threads,
            )?
        }
        "distdgl" => {
            let p = registry::vertex_partitioner(&sim.algo, None)
                .ok_or_else(|| format!("{:?} is not a vertex partitioner", sim.algo))?;
            let part = p.partition_vertices(&graph, sim.k, 42)?;
            let split = VertexSplit::paper_default(graph.num_vertices(), 42)?;
            let config = DistDglConfig::paper(model, ClusterSpec::paper(sim.k));
            println!("diagnosing DistDGL on {} machines with {}", sim.k, p.name());
            diagnose_distdgl(
                &graph,
                &part,
                &split,
                p.name(),
                config,
                sim.epochs,
                plan.as_ref(),
                policy,
                sim.engine_threads,
            )?
        }
        other => return Err(format!("unknown system {other:?} (distgnn|distdgl)").into()),
    };
    let runs = [diagnosis];
    let run = &runs[0];
    println!(
        "epoch time sum:     {:.3} ms over {} epochs",
        run.epoch_seconds * 1e3,
        run.epochs
    );
    println!("compute skew:       {:.3}", run.snapshot.compute_skew());
    println!("comm skew:          {:.3}", run.snapshot.communication_skew());
    match run.snapshot.load_straggler() {
        Some(s) => println!(
            "straggler:          worker {} in {} (+{:.3} ms critical path)",
            s.worker,
            s.phase.name(),
            s.excess_seconds * 1e3
        ),
        None => println!("straggler:          none"),
    }
    for c in &run.causes {
        println!("  cause: {:<28} {:.3} ms", c.label, c.seconds * 1e3);
    }
    println!(
        "exactness:          {} per-worker phase totals equal the engine report (f64 ==)",
        run.cross_checks
    );
    std::fs::write(&cmd.prom_out, diagnose_prometheus(&runs))?;
    println!("prometheus  -> {}", cmd.prom_out.display());
    std::fs::write(&cmd.report_out, diagnose_report(&sim.system, &runs))?;
    println!("run report  -> {}", cmd.report_out.display());
    Ok(())
}

/// `gnnpart chaos`.
///
/// Elastic-membership soak: every partitioner of the chosen system
/// (or the single `--algo`) runs `--epochs` epochs of seeded churn,
/// crashes and periodic checkpoints through the engines' `.elastic(..)`
/// `RunSpec` leg, and the elastic contract is verified
/// per row — the rerun is bit-identical, the traced run equals the
/// untraced one, the elastic run is never worse than the
/// crash-without-handoff baseline, and per-worker span sums equal the
/// engine's phase totals exactly (f64 `==`). Any red invariant makes
/// the command return an error (exit 1), so a CI step can gate on it
/// directly.
pub fn chaos(cmd: &ChaosCmd) -> CmdResult {
    use gp_core::chaos::{
        chaos_bench_json, chaos_table, distdgl_chaos_soak_threaded, distgnn_chaos_soak_threaded,
    };
    use gp_core::config::PaperParams;
    use gp_core::experiment::{
        timed_edge_partitions_threaded, timed_vertex_partitions_threaded,
    };
    let sim = &cmd.sim;
    let graph = load(&sim.input, sim.directed)?;
    let kind = ModelKind::parse(&sim.model)
        .ok_or_else(|| format!("unknown model {:?} (sage|gcn|gat)", sim.model))?;
    let params = PaperParams {
        feature_size: sim.features,
        hidden_dim: sim.hidden,
        num_layers: sim.layers,
    };
    let rows = match sim.system.as_str() {
        "distgnn" => {
            let mut timed = timed_edge_partitions_threaded(&graph, sim.k, 42, cmd.threads);
            if sim.algo != "all" {
                timed.retain(|t| t.name == sim.algo);
                if timed.is_empty() {
                    return Err(format!("{:?} is not an edge partitioner", sim.algo).into());
                }
            }
            println!(
                "chaos: DistGNN, {} machines, {} partitioner(s), {} epochs \
                 (mtbf {}, checkpoint every {}, seed {})",
                sim.k,
                timed.len(),
                sim.epochs,
                sim.mtbf,
                sim.checkpoint_every,
                sim.fault_seed
            );
            distgnn_chaos_soak_threaded(
                &graph,
                &timed,
                params,
                sim.epochs,
                sim.mtbf,
                sim.checkpoint_every,
                sim.fault_seed,
                Parallelism::new(cmd.threads, sim.engine_threads),
            )
        }
        "distdgl" => {
            let split = VertexSplit::paper_default(graph.num_vertices(), 42)?;
            let mut timed =
                timed_vertex_partitions_threaded(&graph, sim.k, 42, &split.train, cmd.threads);
            if sim.algo != "all" {
                timed.retain(|t| t.name == sim.algo);
                if timed.is_empty() {
                    return Err(format!("{:?} is not a vertex partitioner", sim.algo).into());
                }
            }
            println!(
                "chaos: DistDGL, {} machines, {} partitioner(s), {} epochs \
                 (mtbf {}, checkpoint every {}, seed {})",
                sim.k,
                timed.len(),
                sim.epochs,
                sim.mtbf,
                sim.checkpoint_every,
                sim.fault_seed
            );
            distdgl_chaos_soak_threaded(
                &graph,
                &split,
                &timed,
                params,
                kind,
                1024,
                sim.epochs,
                sim.mtbf,
                sim.checkpoint_every,
                sim.fault_seed,
                Parallelism::new(cmd.threads, sim.engine_threads),
            )
        }
        other => return Err(format!("unknown system {other:?} (distgnn|distdgl)").into()),
    };
    let table = chaos_table(&format!("chaos_{}", sim.system), &rows);
    print!("{}", table.to_markdown());
    for r in rows.iter().filter(|r| !r.holds()) {
        println!(
            "FAIL {}: completed {}/{}, deterministic={}, trace_transparent={}, \
             elastic_never_worse={}, spans_exact={}",
            r.name,
            r.completed_epochs,
            r.epochs,
            r.deterministic,
            r.trace_transparent,
            r.elastic_never_worse,
            r.spans_exact
        );
    }
    if let Some(csv) = &cmd.csv_out {
        std::fs::write(csv, table.to_csv())?;
        println!("chaos CSV  -> {}", csv.display());
    }
    if let Some(bench) = &cmd.bench_out {
        let json = match sim.system.as_str() {
            "distgnn" => chaos_bench_json(&rows, &[]),
            _ => chaos_bench_json(&[], &rows),
        };
        std::fs::write(bench, json)?;
        println!("chaos JSON -> {}", bench.display());
    }
    let failed = rows.iter().filter(|r| !r.holds()).count();
    if failed > 0 {
        return Err(format!(
            "{failed} of {} chaos rows violated the elastic contract",
            rows.len()
        )
        .into());
    }
    println!(
        "all {} rows green: bit-identical reruns, exact span sums, \
         elastic never worse than crash-only recovery",
        rows.len()
    );
    Ok(())
}

/// `gnnpart netchaos`.
///
/// The chaos soak composed with a seeded message-level network-fault
/// plan: per-message loss, duplication and reorder plus partition
/// windows that split the fleet into quorum and minority islands,
/// driven through the engines' `.net(..)` `RunSpec` leg. Every
/// row additionally verifies exactly-once-effective delivery and that
/// the bounded-staleness degraded mode is never worse than the
/// abort-and-recover baseline (an adopt-only guarantee, not a
/// tolerance band). The fault/churn composition is validated up front:
/// a crash schedule that would drain the fleet below the churn floor
/// is rejected before any cell runs. Any red invariant makes the
/// command return an error (exit 1).
pub fn netchaos(cmd: &NetChaosCmd) -> CmdResult {
    use gp_cluster::{
        validate_fault_churn, CheckpointConfig, ChurnPlan, ElasticOptions, MetricsSnapshot,
        NetFaultPlan, NetRunOptions,
    };
    use gp_core::chaos::chaos_churn_spec;
    use gp_core::config::PaperParams;
    use gp_core::experiment::{
        timed_edge_partitions_threaded, timed_vertex_partitions_threaded,
    };
    use gp_core::netchaos::{
        distdgl_netchaos_soak_threaded, distgnn_netchaos_soak_threaded, netchaos_bench_json,
        netchaos_net_spec, netchaos_table,
    };
    let sim = &cmd.sim;
    let graph = load(&sim.input, sim.directed)?;
    let kind = ModelKind::parse(&sim.model)
        .ok_or_else(|| format!("unknown model {:?} (sage|gcn|gat)", sim.model))?;
    let params = PaperParams {
        feature_size: sim.features,
        hidden_dim: sim.hidden,
        num_layers: sim.layers,
    };
    // Reject a crash schedule that would drain the fleet below the
    // churn floor before any (expensive) soak cell runs: the soak
    // would only report zero-completed rows, and the composition error
    // is the actionable message.
    let churn_spec = chaos_churn_spec(sim.k, sim.epochs, sim.fault_seed);
    let faults =
        FaultPlan::generate(&FaultSpec::standard(sim.k, sim.epochs, sim.mtbf, sim.fault_seed));
    let churn = ChurnPlan::generate(&churn_spec);
    validate_fault_churn(&faults, &churn, churn_spec.min_live)
        .map_err(|e| format!("invalid fault/churn composition: {e}"))?;
    let net = NetFaultPlan::generate(&netchaos_net_spec(sim.k, sim.epochs, sim.fault_seed));
    let ckpt = CheckpointConfig::periodic(sim.checkpoint_every);
    let (rows, prom) = match sim.system.as_str() {
        "distgnn" => {
            let mut timed = timed_edge_partitions_threaded(&graph, sim.k, 42, cmd.threads);
            if sim.algo != "all" {
                timed.retain(|t| t.name == sim.algo);
                if timed.is_empty() {
                    return Err(format!("{:?} is not an edge partitioner", sim.algo).into());
                }
            }
            println!(
                "netchaos: DistGNN, {} machines, {} partitioner(s), {} epochs \
                 (mtbf {}, checkpoint every {}, seed {})",
                sim.k,
                timed.len(),
                sim.epochs,
                sim.mtbf,
                sim.checkpoint_every,
                sim.fault_seed
            );
            let rows = distgnn_netchaos_soak_threaded(
                &graph,
                &timed,
                params,
                sim.epochs,
                sim.mtbf,
                sim.checkpoint_every,
                sim.fault_seed,
                Parallelism::new(cmd.threads, sim.engine_threads),
            );
            // One extra traced partitioned run of the roster's first
            // partitioner feeds the Prometheus exposition: the soak's
            // own sinks stay internal to its verdicts.
            let mut prom = None;
            if cmd.prom_out.is_some() {
                let t = timed.first().expect("edge roster is never empty");
                let config = DistGnnConfig::paper(
                    params.model(ModelKind::Sage),
                    ClusterSpec::paper(sim.k),
                );
                let sink = TraceSink::enabled();
                let spec = RunSpec::healthy()
                    .epochs(sim.epochs)
                    .faults(faults.clone())
                    .elastic(churn.clone(), ckpt.clone(), ElasticOptions::default())
                    .net(net.clone(), NetRunOptions::default());
                DistGnnEngine::builder(&graph, &t.partition)
                    .config(config)
                    .trace(sink.clone())
                    .threads(sim.engine_threads)
                    .build()?
                    .run(&spec)?;
                prom = Some(MetricsSnapshot::from_sink(&sink).to_prometheus());
            }
            (rows, prom)
        }
        "distdgl" => {
            let split = VertexSplit::paper_default(graph.num_vertices(), 42)?;
            let mut timed =
                timed_vertex_partitions_threaded(&graph, sim.k, 42, &split.train, cmd.threads);
            if sim.algo != "all" {
                timed.retain(|t| t.name == sim.algo);
                if timed.is_empty() {
                    return Err(format!("{:?} is not a vertex partitioner", sim.algo).into());
                }
            }
            println!(
                "netchaos: DistDGL, {} machines, {} partitioner(s), {} epochs \
                 (mtbf {}, checkpoint every {}, seed {})",
                sim.k,
                timed.len(),
                sim.epochs,
                sim.mtbf,
                sim.checkpoint_every,
                sim.fault_seed
            );
            let rows = distdgl_netchaos_soak_threaded(
                &graph,
                &split,
                &timed,
                params,
                kind,
                1024,
                sim.epochs,
                sim.mtbf,
                sim.checkpoint_every,
                sim.fault_seed,
                Parallelism::new(cmd.threads, sim.engine_threads),
            );
            let mut prom = None;
            if cmd.prom_out.is_some() {
                let t = timed.first().expect("vertex roster is never empty");
                let mut config =
                    DistDglConfig::paper(params.model(kind), ClusterSpec::paper(sim.k));
                config.global_batch_size = 1024;
                let sink = TraceSink::enabled();
                let spec = RunSpec::healthy()
                    .epochs(sim.epochs)
                    .faults(faults.clone())
                    .elastic(churn.clone(), ckpt.clone(), ElasticOptions::default())
                    .net(net.clone(), NetRunOptions::default());
                DistDglEngine::builder(&graph, &t.partition, &split)
                    .config(config)
                    .trace(sink.clone())
                    .threads(sim.engine_threads)
                    .build()?
                    .run(&spec)?;
                prom = Some(MetricsSnapshot::from_sink(&sink).to_prometheus());
            }
            (rows, prom)
        }
        other => return Err(format!("unknown system {other:?} (distgnn|distdgl)").into()),
    };
    let table = netchaos_table(&format!("netchaos_{}", sim.system), &rows);
    print!("{}", table.to_markdown());
    for r in rows.iter().filter(|r| !r.holds()) {
        println!(
            "FAIL {}: completed {}/{}, deterministic={}, trace_transparent={}, \
             degraded_never_worse={}, exactly_once={}, spans_exact={}",
            r.name,
            r.completed_epochs,
            r.epochs,
            r.deterministic,
            r.trace_transparent,
            r.degraded_never_worse,
            r.exactly_once,
            r.spans_exact
        );
    }
    if let Some(csv) = &cmd.csv_out {
        std::fs::write(csv, table.to_csv())?;
        println!("netchaos CSV  -> {}", csv.display());
    }
    if let Some(bench) = &cmd.bench_out {
        let json = match sim.system.as_str() {
            "distgnn" => netchaos_bench_json(&rows, &[]),
            _ => netchaos_bench_json(&[], &rows),
        };
        std::fs::write(bench, json)?;
        println!("netchaos JSON -> {}", bench.display());
    }
    if let (Some(path), Some(prom)) = (&cmd.prom_out, &prom) {
        std::fs::write(path, prom)?;
        println!("netchaos prom -> {}", path.display());
    }
    let failed = rows.iter().filter(|r| !r.holds()).count();
    if failed > 0 {
        return Err(format!(
            "{failed} of {} netchaos rows violated the network fault contract",
            rows.len()
        )
        .into());
    }
    println!(
        "all {} rows green: bit-identical reruns, exactly-once delivery, \
         degraded mode never worse than abort-and-recover",
        rows.len()
    );
    Ok(())
}

/// `gnnpart stream`.
///
/// Streaming dynamic-graph sweep: every partitioner of the chosen
/// system (or the single `--algo`) replays the same seeded mutation
/// stream once per repartition policy (never / threshold / periodic),
/// training one epoch per batch on the live snapshot while the
/// partition is maintained incrementally and policy-triggered full
/// repartitions are charged their modeled cost in simulated seconds.
/// The stream contract is verified per row — the rerun is
/// bit-identical, the traced run equals the untraced one, and no
/// policy is worse than the `never` baseline on total training time
/// (the engines adopt a repartition only when it is not worse). Any
/// red invariant makes the command return an error (exit 1), so a CI
/// step can gate on it directly.
pub fn stream(cmd: &StreamCmd) -> CmdResult {
    use gp_core::config::PaperParams;
    use gp_core::stream_sweep::{
        distdgl_stream_sweep_threaded, distgnn_stream_sweep_threaded, stream_bench_json,
        stream_policies, stream_table,
    };
    use gp_graph::StreamSpec;
    let sim = &cmd.sim;
    let graph = load(&sim.input, sim.directed)?;
    let kind = ModelKind::parse(&sim.model)
        .ok_or_else(|| format!("unknown model {:?} (sage|gcn|gat)", sim.model))?;
    let params = PaperParams {
        feature_size: sim.features,
        hidden_dim: sim.hidden,
        num_layers: sim.layers,
    };
    let spec = StreamSpec::paper_default(cmd.batches, cmd.stream_seed);
    let policies = stream_policies();
    let rows = match sim.system.as_str() {
        "distgnn" => {
            let names: Vec<&str> = registry::edge_partitioner_names()
                .iter()
                .copied()
                .filter(|n| sim.algo == "all" || *n == sim.algo)
                .collect();
            if names.is_empty() {
                return Err(format!("{:?} is not an edge partitioner", sim.algo).into());
            }
            println!(
                "stream: DistGNN, {} machines, {} partitioner(s) x {} policies, \
                 {} batches (stream seed {})",
                sim.k,
                names.len(),
                policies.len(),
                cmd.batches,
                cmd.stream_seed
            );
            distgnn_stream_sweep_threaded(
                &graph,
                &names,
                sim.k,
                params,
                &spec,
                &policies,
                42,
                Parallelism::new(cmd.threads, sim.engine_threads),
            )
        }
        "distdgl" => {
            let split = VertexSplit::paper_default(graph.num_vertices(), 42)?;
            let names: Vec<&str> = registry::vertex_partitioner_names()
                .iter()
                .copied()
                .filter(|n| sim.algo == "all" || *n == sim.algo)
                .collect();
            if names.is_empty() {
                return Err(format!("{:?} is not a vertex partitioner", sim.algo).into());
            }
            println!(
                "stream: DistDGL, {} machines, {} partitioner(s) x {} policies, \
                 {} batches (stream seed {})",
                sim.k,
                names.len(),
                policies.len(),
                cmd.batches,
                cmd.stream_seed
            );
            distdgl_stream_sweep_threaded(
                &graph,
                &split,
                &names,
                sim.k,
                params,
                kind,
                1024,
                &spec,
                &policies,
                42,
                Parallelism::new(cmd.threads, sim.engine_threads),
            )
        }
        other => return Err(format!("unknown system {other:?} (distgnn|distdgl)").into()),
    };
    let table = stream_table(&format!("stream_{}", sim.system), &rows);
    print!("{}", table.to_markdown());
    for r in rows.iter().filter(|r| !r.holds()) {
        println!(
            "FAIL {}/{}: completed {}/{}, deterministic={}, trace_transparent={}, \
             never_worse={}",
            r.name,
            r.policy,
            r.completed_batches,
            r.batches,
            r.deterministic,
            r.trace_transparent,
            r.never_worse
        );
    }
    if let Some(csv) = &cmd.csv_out {
        std::fs::write(csv, table.to_csv())?;
        println!("stream CSV  -> {}", csv.display());
    }
    if let Some(bench) = &cmd.bench_out {
        let json = match sim.system.as_str() {
            "distgnn" => stream_bench_json(&rows, &[]),
            _ => stream_bench_json(&[], &rows),
        };
        std::fs::write(bench, json)?;
        println!("stream JSON -> {}", bench.display());
    }
    let failed = rows.iter().filter(|r| !r.holds()).count();
    if failed > 0 {
        return Err(format!(
            "{failed} of {} stream rows violated the stream contract",
            rows.len()
        )
        .into());
    }
    println!(
        "all {} rows green: bit-identical reruns, traced == untraced, \
         no adopted repartition regressed on quality or epoch time",
        rows.len()
    );
    Ok(())
}

fn fault_plan(cmd: &SimulateCmd) -> FaultPlan {
    FaultPlan::generate(&FaultSpec::standard(cmd.k, cmd.epochs, cmd.mtbf, cmd.fault_seed))
}

fn print_recovery(total_secs: f64, r: &RecoveryReport) {
    println!("epoch time sum:     {:.3} ms", total_secs * 1e3);
    println!("recovery overhead:  {:.3} ms", r.total_overhead_seconds() * 1e3);
    println!("  crashes:          {}", r.crashes);
    println!("  retries:          {} ({:.3} ms wait)", r.retries, r.retry_seconds * 1e3);
    println!(
        "  re-executed:      {} steps, {:.3} epochs of lost progress",
        r.reexecuted_steps, r.lost_progress_epochs
    );
    println!("  checkpoints:      {} ({:.3} ms)", r.checkpoints, r.checkpoint_seconds * 1e3);
    println!(
        "  restores:         {:.3} ms, {:.2} MB recovery traffic",
        r.restore_seconds * 1e3,
        r.recovery_bytes as f64 / 1e6
    );
    println!("  redistributed:    {} training vertices", r.redistributed_train_vertices);
}

fn print_mitigation(mode: &str, m: &MitigationReport) {
    println!("mitigation ({mode}):  {:.3} ms saved", m.time_saved_secs * 1e3);
    println!(
        "  stolen:           {} steps, {:.2} MB re-fetched",
        m.stolen_steps,
        m.stolen_bytes as f64 / 1e6
    );
    println!(
        "  speculated:       {} steps ({} won, {:.3} ms wasted)",
        m.speculated_steps,
        m.speculation_wins,
        m.speculation_wasted_secs * 1e3
    );
    println!("  sync changes:     {}", m.sync_period_changes);
    println!(
        "  masters moved:    {} ({:.2} MB, {:.3} ms)",
        m.masters_migrated,
        m.migration_bytes as f64 / 1e6,
        m.migration_seconds * 1e3
    );
}

/// `gnnpart bench`.
pub fn bench(cmd: &BenchCmd) -> CmdResult {
    use gp_core::perf::{perf_bench_json, perf_report_markdown, run_perf, PerfSpec};
    let spec = PerfSpec { scale: cmd.scale, k: cmd.k, ..PerfSpec::pinned(cmd.scale) };
    println!(
        "bench: pinned workload {} at {:?} scale, {} parts \
         (12 partitioners, 2 engines, pool widths 1 and auto)",
        spec.dataset.name(),
        spec.scale,
        spec.k
    );
    let (report, profile) = run_perf(&spec);
    println!(
        "graph: {} vertices, {} edges, generated in {:.3} s",
        report.graph.vertices, report.graph.edges, report.graph.gen_seconds
    );
    println!("{:<10} {:>7} {:>10} {:>14} {:>12}", "name", "family", "seconds", "edges/s", "peak MiB");
    for r in &report.partitioners {
        println!(
            "{:<10} {:>7} {:>10.4} {:>14.0} {:>12.1}",
            r.name,
            r.family,
            r.seconds,
            r.edges_per_second,
            r.peak_bytes as f64 / (1 << 20) as f64
        );
    }
    println!(
        "{:<9} {:<10} {:>9} {:>9} {:>8} {:>10} {:>12}",
        "engine", "partition", "t1 s", "auto s", "speedup", "epochs/s", "peak MiB"
    );
    for r in &report.engines {
        println!(
            "{:<9} {:<10} {:>9.4} {:>9.4} {:>8.2} {:>10.2} {:>12.1}",
            r.engine,
            r.partitioner,
            r.wall_seconds_t1,
            r.wall_seconds_auto,
            r.pool_speedup,
            r.epochs_per_second,
            r.peak_bytes as f64 / (1 << 20) as f64
        );
    }
    std::fs::write(&cmd.out, perf_bench_json(&report))?;
    println!("bench JSON -> {}", cmd.out.display());
    if let Some(md) = &cmd.report_out {
        std::fs::write(md, perf_report_markdown(&report, &profile))?;
        println!("bench report -> {}", md.display());
    }
    if cmd.profile {
        print!("{}", profile.to_markdown());
    }
    let diverged = report.engines.iter().filter(|r| !r.identical_across_widths).count();
    if diverged > 0 {
        return Err(format!(
            "{diverged} of {} engine rows diverged between pool widths",
            report.engines.len()
        )
        .into());
    }
    Ok(())
}

/// `gnnpart recommend`.
pub fn recommend(cmd: RecommendCmd) -> CmdResult {
    use gp_core::advisor;
    use gp_core::config::PaperParams;
    let graph = load(&cmd.input, cmd.directed)?;
    let params = PaperParams {
        feature_size: cmd.features,
        hidden_dim: cmd.hidden,
        num_layers: cmd.layers,
    };
    let rec = match cmd.system.as_str() {
        "distgnn" => advisor::recommend_edge_partitioner_threaded(
            &graph,
            cmd.k,
            params,
            cmd.epochs,
            cmd.threads,
        ),
        "distdgl" => {
            let split = VertexSplit::paper_default(graph.num_vertices(), 42)?;
            advisor::recommend_vertex_partitioner_threaded(
                &graph,
                &split,
                cmd.k,
                params,
                ModelKind::Sage,
                1024,
                cmd.epochs,
                cmd.threads,
            )
        }
        other => return Err(format!("unknown system {other:?} (distgnn|distdgl)").into()),
    };
    println!(
        "Best partitioner for {} epochs of {} training on {} machines: {}",
        cmd.epochs,
        cmd.system,
        cmd.k,
        rec.best().name
    );
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>14}",
        "name", "part time s", "epoch ms", "speedup", "net saving s"
    );
    for c in &rec.ranked {
        println!(
            "{:<10} {:>12.4} {:>12.3} {:>9.2} {:>14.3}",
            c.name,
            c.partition_seconds,
            c.epoch_seconds * 1e3,
            c.speedup,
            c.net_saving
        );
    }
    Ok(())
}

/// `gnnpart list`.
pub fn list() {
    println!("edge partitioners (vertex-cut), for --system distgnn:");
    for name in registry::edge_partitioner_names() {
        println!("  {name}");
    }
    println!("vertex partitioners (edge-cut), for --system distdgl:");
    for name in registry::vertex_partitioner_names() {
        println!("  {name}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::GraphScale;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gp_cli_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn generate_stats_partition_roundtrip() {
        let el = tmp("g.el");
        generate(GenerateCmd {
            dataset: "DI".into(),
            scale: GraphScale::Tiny,
            out: Some(el.clone()),
        })
        .unwrap();
        stats(StatsCmd { input: el.clone(), directed: true }).unwrap();

        let out = tmp("p.txt");
        partition(PartitionCmd {
            input: el.clone(),
            algo: "METIS".into(),
            k: 4,
            seed: 1,
            directed: true,
            out: Some(out.clone()),
        })
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        let ids: Vec<u32> = text.lines().map(|l| l.parse().unwrap()).collect();
        assert!(ids.iter().all(|&p| p < 4));
        let _ = std::fs::remove_file(el);
        let _ = std::fs::remove_file(out);
    }

    fn sim_cmd(el: &std::path::Path, algo: &str, system: &str, model: &str) -> SimulateCmd {
        SimulateCmd {
            input: el.to_path_buf(),
            algo: algo.into(),
            k: 4,
            system: system.into(),
            model: model.into(),
            features: 16,
            hidden: 16,
            layers: 2,
            directed: false,
            faults: false,
            mtbf: 5.0,
            epochs: 10,
            checkpoint_every: 0,
            fault_seed: 42,
            mitigate: "none".into(),
            engine_threads: gp_exec::Threads::serial(),
        }
    }

    #[test]
    fn simulate_both_systems() {
        let el = tmp("s.el");
        generate(GenerateCmd {
            dataset: "OR".into(),
            scale: GraphScale::Tiny,
            out: Some(el.clone()),
        })
        .unwrap();
        simulate(sim_cmd(&el, "HDRF", "distgnn", "sage")).unwrap();
        simulate(sim_cmd(&el, "METIS", "distdgl", "gcn")).unwrap();
        // Threaded intra-epoch engines take the same path end to end.
        let mut c = sim_cmd(&el, "HDRF", "distgnn", "sage");
        c.engine_threads = gp_exec::Threads::new(4);
        simulate(c).unwrap();
        let mut c = sim_cmd(&el, "METIS", "distdgl", "gcn");
        c.engine_threads = gp_exec::Threads::new(4);
        simulate(c).unwrap();
        let _ = std::fs::remove_file(el);
    }

    #[test]
    fn simulate_with_faults_both_systems() {
        let el = tmp("f.el");
        generate(GenerateCmd {
            dataset: "OR".into(),
            scale: GraphScale::Tiny,
            out: Some(el.clone()),
        })
        .unwrap();
        let mut c = sim_cmd(&el, "HDRF", "distgnn", "sage");
        c.faults = true;
        c.mtbf = 3.0;
        c.epochs = 6;
        c.checkpoint_every = 2;
        simulate(c).unwrap();
        let mut c = sim_cmd(&el, "METIS", "distdgl", "sage");
        c.faults = true;
        c.mtbf = 3.0;
        c.epochs = 4;
        simulate(c).unwrap();
        let _ = std::fs::remove_file(el);
    }

    #[test]
    fn simulate_mitigated_both_systems() {
        let el = tmp("m.el");
        generate(GenerateCmd {
            dataset: "OR".into(),
            scale: GraphScale::Tiny,
            out: Some(el.clone()),
        })
        .unwrap();
        let mut c = sim_cmd(&el, "HDRF", "distgnn", "sage");
        c.faults = true;
        c.mtbf = 4.0;
        c.epochs = 6;
        c.checkpoint_every = 2;
        c.mitigate = "adaptive".into();
        simulate(c).unwrap();
        let mut c = sim_cmd(&el, "METIS", "distdgl", "sage");
        c.faults = true;
        c.mtbf = 4.0;
        c.epochs = 4;
        c.mitigate = "all".into();
        simulate(c).unwrap();
        // An unknown mode survives parsing only via direct construction;
        // the command layer still rejects it.
        let mut c = sim_cmd(&el, "METIS", "distdgl", "sage");
        c.mitigate = "wishful".into();
        assert!(simulate(c).is_err());
        let _ = std::fs::remove_file(el);
    }

    #[test]
    fn trace_writes_chrome_json_and_phase_csv() {
        let el = tmp("t.el");
        generate(GenerateCmd {
            dataset: "OR".into(),
            scale: GraphScale::Tiny,
            out: Some(el.clone()),
        })
        .unwrap();
        // DistGNN with faults + mitigation, both export formats.
        let json = tmp("t.json");
        let csv = tmp("t.csv");
        let mut sim = sim_cmd(&el, "HDRF", "distgnn", "sage");
        sim.faults = true;
        sim.mtbf = 4.0;
        sim.epochs = 4;
        sim.checkpoint_every = 2;
        sim.mitigate = "all".into();
        trace(&TraceCmd { sim, trace_out: json.clone(), phase_csv: Some(csv.clone()) })
            .unwrap();
        let text = std::fs::read_to_string(&json).unwrap();
        let stats = crate::jsonlint::validate_json(&text).expect("well-formed trace JSON");
        assert!(stats.top_level_array_len > 0, "trace has events");
        let rows = std::fs::read_to_string(&csv).unwrap();
        assert!(rows.starts_with("worker,phase,"));
        assert!(rows.lines().count() > 1, "phase CSV has data rows");

        // DistDGL, healthy path, JSON only.
        let json2 = tmp("t2.json");
        let mut sim = sim_cmd(&el, "METIS", "distdgl", "sage");
        sim.epochs = 2;
        trace(&TraceCmd { sim, trace_out: json2.clone(), phase_csv: None }).unwrap();
        let text = std::fs::read_to_string(&json2).unwrap();
        assert!(crate::jsonlint::validate_json(&text).unwrap().top_level_array_len > 0);
        for f in [el, json, csv, json2] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn diagnose_writes_deterministic_prom_and_report() {
        let el = tmp("d.el");
        generate(GenerateCmd {
            dataset: "OR".into(),
            scale: GraphScale::Tiny,
            out: Some(el.clone()),
        })
        .unwrap();
        // DistGNN with faults + mitigation, both artifacts; repeated
        // runs must produce identical bytes.
        let prom = tmp("d.prom");
        let report = tmp("d.md");
        let mut sim = sim_cmd(&el, "HDRF", "distgnn", "sage");
        sim.faults = true;
        sim.mtbf = 4.0;
        sim.epochs = 4;
        sim.checkpoint_every = 2;
        sim.mitigate = "adaptive".into();
        let cmd =
            DiagnoseCmd { sim, prom_out: prom.clone(), report_out: report.clone() };
        diagnose(&cmd).unwrap();
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        let report_text = std::fs::read_to_string(&report).unwrap();
        assert_eq!(
            prom_text.matches("# TYPE gnnpart_phase_duration_seconds histogram").count(),
            1
        );
        assert!(prom_text.contains("le=\"+Inf\""));
        assert!(report_text.contains("# Run diagnosis: distgnn"));
        assert!(report_text.contains("### Ranked causes of epoch time"));
        diagnose(&cmd).unwrap();
        assert_eq!(std::fs::read_to_string(&prom).unwrap(), prom_text, "prom deterministic");
        assert_eq!(std::fs::read_to_string(&report).unwrap(), report_text, "report deterministic");

        // DistDGL, healthy path.
        let prom2 = tmp("d2.prom");
        let report2 = tmp("d2.md");
        let mut sim = sim_cmd(&el, "METIS", "distdgl", "sage");
        sim.epochs = 2;
        diagnose(&DiagnoseCmd { sim, prom_out: prom2.clone(), report_out: report2.clone() })
            .unwrap();
        let report_text = std::fs::read_to_string(&report2).unwrap();
        assert!(report_text.contains("| sampling |"), "distdgl phases in report");
        for f in [el, prom, report, prom2, report2] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn chaos_single_partitioner_writes_artifacts_and_holds() {
        let el = tmp("c.el");
        generate(GenerateCmd {
            dataset: "OR".into(),
            scale: GraphScale::Tiny,
            out: Some(el.clone()),
        })
        .unwrap();
        let bench = tmp("c.json");
        let csv = tmp("c.csv");
        let mut sim = sim_cmd(&el, "HDRF", "distgnn", "sage");
        sim.faults = true;
        sim.epochs = 8;
        sim.mtbf = 4.0;
        sim.checkpoint_every = 2;
        let cmd = ChaosCmd {
            sim,
            threads: gp_exec::Threads::new(2),
            bench_out: Some(bench.clone()),
            csv_out: Some(csv.clone()),
        };
        chaos(&cmd).unwrap();
        let json = std::fs::read_to_string(&bench).unwrap();
        crate::jsonlint::validate_json(&json).expect("well-formed chaos JSON");
        assert!(json.contains("\"bench\":\"chaos\""));
        assert!(json.contains("\"invariants_hold\":true"));
        assert!(!json.contains("\"invariants_hold\":false"));
        let rows = std::fs::read_to_string(&csv).unwrap();
        assert!(rows.starts_with("partitioner,"));
        assert_eq!(rows.lines().count(), 2, "header + the one HDRF row");
        assert!(rows.contains("HDRF"));
        // Repeated soaks produce identical artifacts (only the bench
        // JSON is compared: the CSV carries no wall-clock fields either,
        // but the JSON is the committed trajectory format).
        chaos(&cmd).unwrap();
        assert_eq!(std::fs::read_to_string(&bench).unwrap(), json, "soak deterministic");
        for f in [el, bench, csv] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn chaos_distdgl_and_wrong_algo_kind() {
        let el = tmp("cd.el");
        generate(GenerateCmd {
            dataset: "OR".into(),
            scale: GraphScale::Tiny,
            out: Some(el.clone()),
        })
        .unwrap();
        let mut sim = sim_cmd(&el, "METIS", "distdgl", "sage");
        sim.faults = true;
        sim.epochs = 6;
        sim.mtbf = 3.0;
        sim.checkpoint_every = 2;
        chaos(&ChaosCmd {
            sim,
            threads: gp_exec::Threads::new(2),
            bench_out: None,
            csv_out: None,
        })
        .unwrap();
        // HDRF is an edge partitioner; the distdgl roster has no such row.
        let mut sim = sim_cmd(&el, "HDRF", "distdgl", "sage");
        sim.faults = true;
        sim.epochs = 4;
        sim.checkpoint_every = 2;
        let r = chaos(&ChaosCmd {
            sim,
            threads: gp_exec::Threads::new(1),
            bench_out: None,
            csv_out: None,
        });
        assert!(r.unwrap_err().to_string().contains("not a vertex partitioner"));
        let _ = std::fs::remove_file(el);
    }

    #[test]
    fn stream_single_partitioner_writes_artifacts_and_holds() {
        let el = tmp("st.el");
        generate(GenerateCmd {
            dataset: "OR".into(),
            scale: GraphScale::Tiny,
            out: Some(el.clone()),
        })
        .unwrap();
        let bench = tmp("st.json");
        let csv = tmp("st.csv");
        let cmd = StreamCmd {
            sim: sim_cmd(&el, "HDRF", "distgnn", "sage"),
            batches: 5,
            stream_seed: 7,
            threads: gp_exec::Threads::new(2),
            bench_out: Some(bench.clone()),
            csv_out: Some(csv.clone()),
        };
        stream(&cmd).unwrap();
        let json = std::fs::read_to_string(&bench).unwrap();
        crate::jsonlint::validate_json(&json).expect("well-formed stream JSON");
        assert!(json.contains("\"bench\":\"stream\""));
        assert!(json.contains("\"invariants_hold\":true"));
        assert!(!json.contains("\"invariants_hold\":false"));
        let rows = std::fs::read_to_string(&csv).unwrap();
        assert!(rows.starts_with("partitioner,"));
        assert_eq!(rows.lines().count(), 4, "header + HDRF x 3 policies");
        assert!(rows.contains("never") && rows.contains("threshold") && rows.contains("periodic"));
        // Repeated sweeps produce byte-identical artifacts (no
        // wall-clock fields anywhere in the stream pipeline).
        stream(&cmd).unwrap();
        assert_eq!(std::fs::read_to_string(&bench).unwrap(), json, "sweep deterministic");
        for f in [el, bench, csv] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn bench_quick_emits_valid_and_structurally_stable_json() {
        let out = tmp("perf.json");
        let md = tmp("perf.md");
        let cmd = crate::args::BenchCmd {
            scale: GraphScale::Tiny,
            k: 4,
            out: out.clone(),
            report_out: Some(md.clone()),
            profile: false,
        };
        bench(&cmd).unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        crate::jsonlint::validate_json(&json).expect("well-formed perf JSON");
        assert!(json.contains("\"bench\":\"perf\""));
        assert!(json.contains("\"engine\":\"distgnn\""));
        assert!(json.contains("\"engine\":\"distdgl\""));
        assert!(json.contains("\"identical_across_widths\":true"));
        assert!(!json.contains("\"identical_across_widths\":false"));
        let report = std::fs::read_to_string(&md).unwrap();
        assert!(report.contains("## Host-time profile"));
        // Values are host times and vary; the structure is pinned.
        bench(&cmd).unwrap();
        let again = std::fs::read_to_string(&out).unwrap();
        assert_eq!(
            gp_core::benchjson::structure_of(&json),
            gp_core::benchjson::structure_of(&again),
            "perf JSON structure stable across reruns"
        );
        for f in [out, md] {
            let _ = std::fs::remove_file(f);
        }
    }

    #[test]
    fn stream_distdgl_and_wrong_algo_kind() {
        let el = tmp("std.el");
        generate(GenerateCmd {
            dataset: "OR".into(),
            scale: GraphScale::Tiny,
            out: Some(el.clone()),
        })
        .unwrap();
        stream(&StreamCmd {
            sim: sim_cmd(&el, "LDG", "distdgl", "sage"),
            batches: 4,
            stream_seed: 1,
            threads: gp_exec::Threads::new(2),
            bench_out: None,
            csv_out: None,
        })
        .unwrap();
        // HDRF is an edge partitioner; the distdgl roster has no such row.
        let r = stream(&StreamCmd {
            sim: sim_cmd(&el, "HDRF", "distdgl", "sage"),
            batches: 3,
            stream_seed: 1,
            threads: gp_exec::Threads::new(1),
            bench_out: None,
            csv_out: None,
        });
        assert!(r.unwrap_err().to_string().contains("not a vertex partitioner"));
        let _ = std::fs::remove_file(el);
    }

    #[test]
    fn recommend_runs() {
        let el = tmp("r.el");
        generate(GenerateCmd {
            dataset: "OR".into(),
            scale: GraphScale::Tiny,
            out: Some(el.clone()),
        })
        .unwrap();
        recommend(RecommendCmd {
            input: el.clone(),
            k: 4,
            system: "distgnn".into(),
            epochs: 100,
            features: 16,
            hidden: 16,
            layers: 2,
            directed: false,
            threads: gp_exec::Threads::new(2),
        })
        .unwrap();
        let _ = std::fs::remove_file(el);
    }

    #[test]
    fn bad_inputs_error() {
        assert!(generate(GenerateCmd {
            dataset: "XX".into(),
            scale: GraphScale::Tiny,
            out: None
        })
        .is_err());
        assert!(stats(StatsCmd { input: "/nonexistent/file.el".into(), directed: false }).is_err());
        assert!(partition(PartitionCmd {
            input: "/nonexistent/file.el".into(),
            algo: "HDRF".into(),
            k: 4,
            seed: 1,
            directed: false,
            out: None
        })
        .is_err());
    }

    #[test]
    fn wrong_partitioner_kind_for_system() {
        let el = tmp("w.el");
        generate(GenerateCmd {
            dataset: "DI".into(),
            scale: GraphScale::Tiny,
            out: Some(el.clone()),
        })
        .unwrap();
        // METIS is a vertex partitioner; distgnn needs an edge partitioner.
        let mut c = sim_cmd(&el, "METIS", "distgnn", "sage");
        c.directed = true;
        let r = simulate(c);
        assert!(r.is_err());
        let _ = std::fs::remove_file(el);
    }
}
