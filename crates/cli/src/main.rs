//! `gnnpart` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gp_cli::parse_args(&args) {
        Ok(command) => std::process::exit(gp_cli::run(command)),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("try `gnnpart help`");
            std::process::exit(2);
        }
    }
}
