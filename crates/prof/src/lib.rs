//! # gp-prof — host-time profiling and memory accounting
//!
//! Std-only observability for the **host** side of the simulator: how
//! long the real machine spends in each phase and how much real memory
//! it touches. This is deliberately a different universe from the
//! simulated-time traces in `gp-core::trace` — simulated seconds come
//! from the cost model and are bit-deterministic; host seconds come
//! from [`std::time::Instant`] and never feed back into simulation
//! logic. The conformance suite enforces that profiled and unprofiled
//! runs produce byte-identical artifacts.
//!
//! Three pieces:
//!
//! * **Clock** — [`now`] / [`HostInstant`]: the one wall-clock used by
//!   everything host-timed in the workspace (`gp-exec`'s `ExecTiming`
//!   sources its wall seconds from here).
//! * **Scoped timers** — [`scope`] / [`scope_label`] return RAII
//!   guards. Each thread keeps a scope stack; on guard drop the
//!   elapsed time is merged under the full path into a process-global
//!   registry. [`take_profile`] turns the registry into a
//!   deterministic-ordered tree (children sorted by name) with
//!   count/total/min/max per node, renderable as markdown or JSON
//!   (numbers in the repo's jsonlint-validated `{:.9}` grammar).
//! * **Counting allocator** — [`CountingAlloc`] is installed as the
//!   `#[global_allocator]`. While enabled it tracks live/peak/total
//!   bytes and allocation counts, globally, per thread, and per
//!   [`MemRegion`] so peak memory of a partitioner or an engine epoch
//!   is a first-class metric.
//!
//! Everything is zero-cost when disabled: `scope()` is a single
//! relaxed atomic load returning an inert guard, and the allocator
//! skips all counting. Enable once per process (e.g. at the top of a
//! bench run) with [`set_enabled`]; toggling mid-scope or disabling
//! memory accounting mid-run leaves counters undefined (documented,
//! not checked).

use std::alloc::{GlobalAlloc, Layout, System};
use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

/// An opaque host-clock timestamp (wraps [`std::time::Instant`]).
///
/// The single wall-clock for host timing across the workspace: scoped
/// timers, `gp-exec` cell/wall seconds and the perf harness all read
/// it, so their numbers are directly comparable.
#[derive(Clone, Copy, Debug)]
pub struct HostInstant(Instant);

/// Read the host clock.
pub fn now() -> HostInstant {
    HostInstant(Instant::now())
}

impl HostInstant {
    /// Seconds elapsed since this timestamp was taken.
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Seconds between `earlier` and `self` (0.0 if `earlier` is later).
    pub fn secs_since(&self, earlier: HostInstant) -> f64 {
        self.0.saturating_duration_since(earlier.0).as_secs_f64()
    }
}

// ---------------------------------------------------------------------------
// Enable flags
// ---------------------------------------------------------------------------

static TIMERS_ENABLED: AtomicBool = AtomicBool::new(false);
static MEM_ENABLED: AtomicBool = AtomicBool::new(false);

/// Enable/disable the whole subsystem (scoped timers *and* memory
/// accounting). Enable once, before the profiled run; simulation
/// results never depend on this flag.
pub fn set_enabled(on: bool) {
    TIMERS_ENABLED.store(on, Relaxed);
    MEM_ENABLED.store(on, Relaxed);
}

/// Are scoped timers currently enabled?
pub fn is_enabled() -> bool {
    TIMERS_ENABLED.load(Relaxed)
}

/// Enable/disable only the allocation counters.
pub fn set_mem_enabled(on: bool) {
    MEM_ENABLED.store(on, Relaxed);
}

/// Is allocation counting currently enabled?
pub fn mem_enabled() -> bool {
    MEM_ENABLED.load(Relaxed)
}

// ---------------------------------------------------------------------------
// Scoped timers
// ---------------------------------------------------------------------------

/// Path separator inside registry keys. Unit-separator control char:
/// never appears in scope names, and sorts below every printable
/// character so a BTreeMap over joined paths groups subtrees
/// contiguously.
const SEP: char = '\u{1f}';
const SEP_STR: &str = "\u{1f}";

#[derive(Clone, Copy, Debug, PartialEq)]
struct NodeStat {
    count: u64,
    total: f64,
    min: f64,
    max: f64,
}

impl NodeStat {
    const EMPTY: NodeStat = NodeStat { count: 0, total: 0.0, min: f64::INFINITY, max: 0.0 };

    fn record(&mut self, secs: f64) {
        self.count += 1;
        self.total += secs;
        if secs < self.min {
            self.min = secs;
        }
        if secs > self.max {
            self.max = secs;
        }
    }

    fn merge(&mut self, other: &NodeStat) {
        self.count += other.count;
        self.total += other.total;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

struct ThreadProf {
    stack: Vec<Cow<'static, str>>,
    pending: BTreeMap<String, NodeStat>,
}

thread_local! {
    static TLS: RefCell<ThreadProf> =
        RefCell::new(ThreadProf { stack: Vec::new(), pending: BTreeMap::new() });
}

/// Process-global profile registry, keyed by SEP-joined scope path.
static REGISTRY: Mutex<BTreeMap<String, NodeStat>> = Mutex::new(BTreeMap::new());

fn registry() -> std::sync::MutexGuard<'static, BTreeMap<String, NodeStat>> {
    REGISTRY.lock().unwrap_or_else(|e| e.into_inner())
}

/// RAII guard for one profiling scope. Created by [`scope`] /
/// [`scope_label`]; records elapsed host time under the thread's
/// current scope path when dropped. Inert (a `None` start) when
/// profiling is disabled.
#[must_use = "a profiling scope measures the time until the guard is dropped"]
pub struct Scope {
    start: Option<HostInstant>,
}

/// Open a profiling scope with a static name (the common, hot-path
/// form: one relaxed atomic load when disabled).
pub fn scope(name: &'static str) -> Scope {
    if !TIMERS_ENABLED.load(Relaxed) {
        return Scope { start: None };
    }
    scope_enter(Cow::Borrowed(name))
}

/// Open a profiling scope with a dynamic label (e.g.
/// `partition.{name}`). The label closure only runs when profiling is
/// enabled, so disabled call sites pay no formatting cost.
pub fn scope_label(label: impl FnOnce() -> String) -> Scope {
    if !TIMERS_ENABLED.load(Relaxed) {
        return Scope { start: None };
    }
    scope_enter(Cow::Owned(label()))
}

fn scope_enter(label: Cow<'static, str>) -> Scope {
    debug_assert!(!label.contains(SEP), "scope labels must not contain the path separator");
    TLS.with(|t| t.borrow_mut().stack.push(label));
    Scope { start: Some(now()) }
}

impl Drop for Scope {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let secs = start.elapsed_secs();
        TLS.with(|t| {
            let mut t = t.borrow_mut();
            if t.stack.is_empty() {
                return; // reset() raced a live scope; drop the sample.
            }
            let key = t.stack.join(SEP_STR);
            t.stack.pop();
            t.pending.entry(key).or_insert(NodeStat::EMPTY).record(secs);
            // Flush per-thread aggregates whenever the thread leaves its
            // outermost scope: hot inner scopes (tensor panels, cells)
            // touch only the thread-local map, the global mutex is taken
            // once per top-level scope.
            if t.stack.is_empty() {
                let drained = std::mem::take(&mut t.pending);
                drop(t);
                let mut g = registry();
                for (k, v) in drained {
                    g.entry(k).or_insert(NodeStat::EMPTY).merge(&v);
                }
            }
        });
    }
}

/// Clear the profile registry (and the calling thread's pending
/// samples). Other threads' in-flight scopes flush later and will
/// reappear; reset at quiescent points.
pub fn reset() {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        t.pending.clear();
        t.stack.clear();
    });
    registry().clear();
}

/// Drain the registry into a deterministic-ordered [`Profile`] tree.
/// Flushes the calling thread's pending samples first; call it from
/// the thread that ran the workload, outside any open scope.
pub fn take_profile() -> Profile {
    TLS.with(|t| {
        let mut t = t.borrow_mut();
        let drained = std::mem::take(&mut t.pending);
        drop(t);
        let mut g = registry();
        for (k, v) in drained {
            g.entry(k).or_insert(NodeStat::EMPTY).merge(&v);
        }
    });
    let map = std::mem::take(&mut *registry());
    let mut roots: Vec<ProfileNode> = Vec::new();
    for (path, stat) in &map {
        let parts: Vec<&str> = path.split(SEP).collect();
        insert_node(&mut roots, &parts, stat);
    }
    sort_nodes(&mut roots);
    Profile { roots }
}

fn insert_node(nodes: &mut Vec<ProfileNode>, parts: &[&str], stat: &NodeStat) {
    let (head, rest) = parts.split_first().expect("non-empty path");
    let pos = match nodes.iter().position(|n| n.name == *head) {
        Some(p) => p,
        None => {
            nodes.push(ProfileNode {
                name: (*head).to_string(),
                count: 0,
                total_secs: 0.0,
                min_secs: 0.0,
                max_secs: 0.0,
                children: Vec::new(),
            });
            nodes.len() - 1
        }
    };
    if rest.is_empty() {
        let n = &mut nodes[pos];
        n.count += stat.count;
        n.total_secs += stat.total;
        n.min_secs = if n.count == stat.count { stat.min } else { n.min_secs.min(stat.min) };
        n.max_secs = n.max_secs.max(stat.max);
    } else {
        insert_node(&mut nodes[pos].children, rest, stat);
    }
}

fn sort_nodes(nodes: &mut [ProfileNode]) {
    nodes.sort_by(|a, b| a.name.cmp(&b.name));
    for n in nodes.iter_mut() {
        sort_nodes(&mut n.children);
    }
}

/// One node of the profile tree: a scope path element with aggregate
/// host-time stats and name-sorted children.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileNode {
    pub name: String,
    /// Number of times the scope closed (0 for pure interior nodes).
    pub count: u64,
    pub total_secs: f64,
    pub min_secs: f64,
    pub max_secs: f64,
    pub children: Vec<ProfileNode>,
}

/// A deterministic-ordered host-time profile tree (see
/// [`take_profile`]). Sibling order is name-sorted, so two runs of the
/// same workload produce structurally identical reports — only the
/// timing numbers differ.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Profile {
    pub roots: Vec<ProfileNode>,
}

/// Fixed-precision float in the workspace's jsonlint-validated number
/// grammar (same shape as the BENCH artifact writers').
fn fmt9(x: f64) -> String {
    format!("{x:.9}")
}

impl Profile {
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Markdown table: one row per node, names indented by depth.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "# host profile\n\n| scope | count | total s | mean s | min s | max s |\n|---|---|---|---|---|---|\n",
        );
        fn row(out: &mut String, node: &ProfileNode, depth: usize) {
            let mean = if node.count > 0 { node.total_secs / node.count as f64 } else { 0.0 };
            out.push_str(&format!(
                "| {}{} | {} | {} | {} | {} | {} |\n",
                "· ".repeat(depth),
                node.name,
                node.count,
                fmt9(node.total_secs),
                fmt9(mean),
                fmt9(node.min_secs),
                fmt9(node.max_secs),
            ));
            for c in &node.children {
                row(out, c, depth + 1);
            }
        }
        for n in &self.roots {
            row(&mut out, n, 0);
        }
        out
    }

    /// JSON document (newline-terminated, jsonlint-valid numbers).
    pub fn to_json(&self) -> String {
        fn node_json(n: &ProfileNode) -> String {
            let children: Vec<String> = n.children.iter().map(node_json).collect();
            format!(
                "{{\"name\":\"{}\",\"count\":{},\"total_seconds\":{},\"min_seconds\":{},\
                 \"max_seconds\":{},\"children\":[{}]}}",
                n.name,
                n.count,
                fmt9(n.total_secs),
                fmt9(n.min_secs),
                fmt9(n.max_secs),
                children.join(",")
            )
        }
        let roots: Vec<String> = self.roots.iter().map(node_json).collect();
        format!("{{\"profile\":[{}]}}\n", roots.join(","))
    }

    /// Structure signature: names and counts only, no timing. Two runs
    /// of a deterministic workload must produce byte-identical
    /// structures even though their timings differ.
    pub fn structure(&self) -> String {
        fn sig(n: &ProfileNode) -> String {
            let children: Vec<String> = n.children.iter().map(sig).collect();
            format!("{}x{}({})", n.name, n.count, children.join(","))
        }
        let roots: Vec<String> = self.roots.iter().map(sig).collect();
        roots.join(",")
    }
}

/// Replace every JSON-ish number run with `#`, leaving structure,
/// names and punctuation. Lets tests assert "byte-identical modulo
/// timing fields" on rendered reports.
pub fn redact_numbers(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_num = false;
    for ch in s.chars() {
        if in_num && (ch.is_ascii_digit() || matches!(ch, '.' | 'e' | 'E' | '+' | '-')) {
            continue;
        }
        if ch.is_ascii_digit() {
            out.push('#');
            in_num = true;
        } else {
            in_num = false;
            out.push(ch);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------------

/// Counting wrapper around the [`System`] allocator, installed as the
/// workspace `#[global_allocator]`. All counting is gated on
/// [`mem_enabled`]; disabled it is a pass-through plus one relaxed
/// load per call.
pub struct CountingAlloc;

#[global_allocator]
static GLOBAL_COUNTING_ALLOC: CountingAlloc = CountingAlloc;

static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

/// Maximum nesting depth of [`MemRegion`]s with exact peak tracking;
/// deeper regions fall back to entry/exit live-byte sampling.
pub const MAX_MEM_REGIONS: usize = 16;
static REGION_PEAK: [AtomicI64; MAX_MEM_REGIONS] =
    [const { AtomicI64::new(0) }; MAX_MEM_REGIONS];
static REGION_DEPTH: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static T_TOTAL: Cell<u64> = const { Cell::new(0) };
    static T_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static T_LIVE: Cell<i64> = const { Cell::new(0) };
}

#[inline]
fn record_alloc(size: usize) {
    if !MEM_ENABLED.load(Relaxed) {
        return;
    }
    TOTAL_BYTES.fetch_add(size as u64, Relaxed);
    TOTAL_ALLOCS.fetch_add(1, Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Relaxed) + size as i64;
    PEAK_BYTES.fetch_max(live, Relaxed);
    let depth = REGION_DEPTH.load(Relaxed).min(MAX_MEM_REGIONS);
    for slot in REGION_PEAK.iter().take(depth) {
        slot.fetch_max(live, Relaxed);
    }
    // `try_with`: TLS may already be torn down during thread exit.
    let _ = T_TOTAL.try_with(|c| c.set(c.get() + size as u64));
    let _ = T_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = T_LIVE.try_with(|c| c.set(c.get() + size as i64));
}

#[inline]
fn record_dealloc(size: usize) {
    if !MEM_ENABLED.load(Relaxed) {
        return;
    }
    LIVE_BYTES.fetch_sub(size as i64, Relaxed);
    let _ = T_LIVE.try_with(|c| c.set(c.get() - size as i64));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

/// Process-wide allocation counters (since counting was enabled).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemStats {
    /// Net live bytes (allocs − deallocs while enabled; can be
    /// negative if objects allocated before enabling are freed after).
    pub live_bytes: i64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: i64,
    /// Cumulative bytes allocated.
    pub total_bytes: u64,
    /// Cumulative allocation count.
    pub allocs: u64,
}

/// Read the process-wide allocation counters.
pub fn mem_stats() -> MemStats {
    MemStats {
        live_bytes: LIVE_BYTES.load(Relaxed),
        peak_bytes: PEAK_BYTES.load(Relaxed),
        total_bytes: TOTAL_BYTES.load(Relaxed),
        allocs: TOTAL_ALLOCS.load(Relaxed),
    }
}

/// Calling-thread allocation counters. Exact for allocations made and
/// freed on this thread, immune to concurrent-test noise — the form
/// unit tests should assert equality on.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ThreadMemStats {
    pub live_bytes: i64,
    pub total_bytes: u64,
    pub allocs: u64,
}

/// Read the calling thread's allocation counters.
pub fn thread_mem_stats() -> ThreadMemStats {
    ThreadMemStats {
        live_bytes: T_LIVE.with(Cell::get),
        total_bytes: T_TOTAL.with(Cell::get),
        allocs: T_ALLOCS.with(Cell::get),
    }
}

/// Allocation stats observed over one [`MemRegion`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MemRegionStats {
    /// Peak process-wide live bytes observed while the region was
    /// open (≥ the live bytes at entry; monotone over the region's
    /// lifetime).
    pub peak_bytes: u64,
    /// Peak live bytes *above* the entry baseline — the region's own
    /// high-water contribution, assuming no concurrent regions.
    pub peak_delta_bytes: u64,
    /// Bytes allocated process-wide while the region was open.
    pub allocated_bytes: u64,
    /// Allocations process-wide while the region was open.
    pub allocs: u64,
    /// Net change in live bytes since region entry.
    pub live_delta_bytes: i64,
}

/// RAII allocation-accounting region. Nestable ([`MAX_MEM_REGIONS`]
/// deep with exact peaks); regions are process-global, so concurrent
/// regions on different threads attribute each other's allocations —
/// open them around serial phases (a partitioner run, an engine
/// epoch).
#[must_use = "a memory region measures allocations until it is finished/dropped"]
pub struct MemRegion {
    slot: Option<usize>,
    start_live: i64,
    start_total: u64,
    start_allocs: u64,
}

impl MemRegion {
    /// Open a region. Requires [`mem_enabled`] to produce non-zero
    /// numbers (it still functions, reading all-zero counters,
    /// when disabled).
    pub fn enter() -> MemRegion {
        let idx = REGION_DEPTH.fetch_add(1, Relaxed);
        let live = LIVE_BYTES.load(Relaxed);
        let slot = if idx < MAX_MEM_REGIONS {
            REGION_PEAK[idx].store(live, Relaxed);
            Some(idx)
        } else {
            None
        };
        MemRegion {
            slot,
            start_live: live,
            start_total: TOTAL_BYTES.load(Relaxed),
            start_allocs: TOTAL_ALLOCS.load(Relaxed),
        }
    }

    /// Read the region's counters without closing it. `peak_bytes` is
    /// monotone across successive calls.
    pub fn stats(&self) -> MemRegionStats {
        let peak_live = self
            .slot
            .map(|i| REGION_PEAK[i].load(Relaxed))
            .unwrap_or_else(|| LIVE_BYTES.load(Relaxed))
            .max(self.start_live);
        MemRegionStats {
            peak_bytes: peak_live.max(0) as u64,
            peak_delta_bytes: (peak_live - self.start_live).max(0) as u64,
            allocated_bytes: TOTAL_BYTES.load(Relaxed).saturating_sub(self.start_total),
            allocs: TOTAL_ALLOCS.load(Relaxed).saturating_sub(self.start_allocs),
            live_delta_bytes: LIVE_BYTES.load(Relaxed) - self.start_live,
        }
    }

    /// Close the region and return its final counters.
    pub fn finish(self) -> MemRegionStats {
        self.stats() // Drop decrements the depth.
    }
}

impl Drop for MemRegion {
    fn drop(&mut self) {
        REGION_DEPTH.fetch_sub(1, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registry and region state are process-global; serialize the
    /// tests that mutate them.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn spin(iters: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..iters {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        acc
    }

    fn sample_workload() {
        let _a = scope("alpha");
        {
            let _b = scope("beta");
            std::hint::black_box(spin(100));
            for _ in 0..3 {
                let _c = scope_label(|| "gamma-1".to_string());
                std::hint::black_box(spin(10));
            }
        }
        {
            let _b2 = scope("beta2");
            std::hint::black_box(spin(10));
        }
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        sample_workload();
        assert!(take_profile().is_empty());
    }

    #[test]
    fn scopes_build_deterministic_tree() {
        let _g = lock();
        set_enabled(true);
        reset();
        sample_workload();
        let p = take_profile();
        set_enabled(false);
        assert_eq!(p.roots.len(), 1);
        let alpha = &p.roots[0];
        assert_eq!(alpha.name, "alpha");
        assert_eq!(alpha.count, 1);
        assert_eq!(alpha.children.len(), 2);
        assert_eq!(alpha.children[0].name, "beta");
        assert_eq!(alpha.children[1].name, "beta2");
        let beta = &alpha.children[0];
        assert_eq!(beta.children.len(), 1);
        assert_eq!(beta.children[0].name, "gamma-1");
        assert_eq!(beta.children[0].count, 3);
        assert!(beta.total_secs >= beta.children[0].total_secs);
        assert!(beta.min_secs <= beta.max_secs);
        assert!(beta.children[0].min_secs <= beta.children[0].max_secs);
    }

    #[test]
    fn two_identical_runs_are_byte_identical_modulo_timing() {
        let _g = lock();
        set_enabled(true);
        reset();
        sample_workload();
        let first = take_profile();
        reset();
        sample_workload();
        let second = take_profile();
        set_enabled(false);
        assert_eq!(first.structure(), second.structure());
        assert_eq!(first.structure(), "alphax1(betax1(gamma-1x3()),beta2x1())");
        assert_eq!(redact_numbers(&first.to_markdown()), redact_numbers(&second.to_markdown()));
        assert_eq!(redact_numbers(&first.to_json()), redact_numbers(&second.to_json()));
        // Timing fields are structurally valid (fixed-precision grammar).
        for line in first.to_json().lines() {
            assert!(!line.contains("inf") && !line.contains("NaN"), "{line}");
        }
    }

    #[test]
    fn profile_json_uses_fixed_precision_numbers() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _s = scope("solo");
            std::hint::black_box(spin(10));
        }
        let json = take_profile().to_json();
        set_enabled(false);
        assert!(json.starts_with("{\"profile\":[{\"name\":\"solo\",\"count\":1,"), "{json}");
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"total_seconds\":0."), "fixed-point grammar: {json}");
    }

    #[test]
    fn take_profile_drains_the_registry() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _s = scope("once");
        }
        assert!(!take_profile().is_empty());
        assert!(take_profile().is_empty());
        set_enabled(false);
    }

    #[test]
    fn worker_thread_scopes_merge_into_the_global_profile() {
        let _g = lock();
        set_enabled(true);
        reset();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = scope("worker");
                    std::hint::black_box(spin(50));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let p = take_profile();
        set_enabled(false);
        assert_eq!(p.structure(), "workerx2()");
    }

    #[test]
    fn thread_live_bytes_return_to_baseline_after_drop() {
        let _g = lock();
        set_mem_enabled(true);
        let base = thread_mem_stats();
        let v = vec![0u8; 1 << 20];
        std::hint::black_box(&v);
        let mid = thread_mem_stats();
        assert!(mid.live_bytes >= base.live_bytes + (1 << 20), "{base:?} -> {mid:?}");
        assert!(mid.allocs > base.allocs);
        drop(v);
        let after = thread_mem_stats();
        assert_eq!(after.live_bytes, base.live_bytes, "live bytes must return to baseline");
        assert!(after.total_bytes >= base.total_bytes + (1 << 20), "total is cumulative");
    }

    #[test]
    fn region_peak_is_monotone_and_sees_large_allocations() {
        let _g = lock();
        set_mem_enabled(true);
        let region = MemRegion::enter();
        let d0 = region.stats().peak_delta_bytes;
        let v = vec![7u8; 4 << 20];
        std::hint::black_box(&v);
        let p1 = region.stats().peak_bytes;
        let d1 = region.stats().peak_delta_bytes;
        assert!(d1 >= d0 + (4 << 20), "peak must see the allocation: {d0} -> {d1}");
        drop(v);
        let p2 = region.stats().peak_bytes;
        assert!(p2 >= p1, "peak is monotone within a region: {p1} -> {p2}");
        let fin = region.finish();
        assert_eq!(fin.peak_bytes, p2);
        assert!(fin.allocated_bytes >= 4 << 20);
        assert!(fin.allocs >= 1);
    }

    #[test]
    fn nested_regions_attribute_inner_allocations_to_both() {
        let _g = lock();
        set_mem_enabled(true);
        let outer = MemRegion::enter();
        let a = vec![1u8; 1 << 20];
        std::hint::black_box(&a);
        let inner = MemRegion::enter();
        let b = vec![2u8; 2 << 20];
        std::hint::black_box(&b);
        let inner_stats = inner.finish();
        let outer_stats = outer.finish();
        assert!(inner_stats.peak_delta_bytes >= 2 << 20, "{inner_stats:?}");
        assert!(inner_stats.allocated_bytes >= 2 << 20);
        // The outer region saw both allocations; its peak covers the
        // inner region's peak.
        assert!(outer_stats.peak_delta_bytes >= (1 << 20) + (2 << 20), "{outer_stats:?}");
        assert!(outer_stats.allocated_bytes >= inner_stats.allocated_bytes + (1 << 20));
        assert!(outer_stats.peak_bytes >= inner_stats.peak_bytes);
        drop((a, b));
    }

    #[test]
    fn global_mem_stats_track_thread_allocations() {
        let _g = lock();
        set_mem_enabled(true);
        let before = mem_stats();
        let v = vec![0u64; 1 << 17]; // 1 MiB
        std::hint::black_box(&v);
        let after = mem_stats();
        assert!(after.total_bytes >= before.total_bytes + (1 << 20));
        assert!(after.allocs > before.allocs);
        assert!(after.peak_bytes >= before.peak_bytes, "global peak is monotone");
        drop(v);
    }

    #[test]
    fn redact_numbers_strips_timings_but_keeps_structure() {
        assert_eq!(redact_numbers("{\"a\":1.25e-3,\"b\":[10,-2]}"), "{\"a\":#,\"b\":[#,-#]}");
        assert_eq!(redact_numbers("| x | 0.000000001 |"), "| x | # |");
        assert_eq!(redact_numbers("name-1"), "name-#");
    }

    #[test]
    fn clock_is_monotone_and_nonnegative() {
        let t0 = now();
        std::hint::black_box(spin(1000));
        let t1 = now();
        assert!(t0.elapsed_secs() >= 0.0);
        assert!(t1.secs_since(t0) >= 0.0);
        assert_eq!(t0.secs_since(t1), 0.0, "saturating at zero");
    }
}
