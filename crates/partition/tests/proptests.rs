//! Property-based tests: every partitioner (the paper's 12 plus the
//! extensions) produces structurally valid partitions on arbitrary
//! graphs, and the quality metrics respect their mathematical bounds.

use proptest::prelude::*;

use gp_graph::{Graph, GraphBuilder};
use gp_partition::prelude::*;

/// Strategy: a connected-ish random graph.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (10u32..150, 1usize..6, any::<u64>()).prop_map(|(n, density, seed)| {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::undirected(n);
        // Spanning chain keeps most vertices non-isolated.
        for v in 1..n {
            b.add_edge(v - 1, v);
        }
        for _ in 0..(n as usize * density) {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            b.add_edge(u, v);
        }
        b.build().expect("in-range")
    })
}

fn all_edge_partitioners() -> Vec<Box<dyn EdgePartitioner>> {
    vec![
        Box::new(RandomEdgePartitioner),
        Box::new(Dbh),
        Box::new(Hdrf::default()),
        Box::new(TwoPsL::default()),
        Box::new(Hep::hep10()),
        Box::new(Hep::hep100()),
        Box::new(Greedy),
        Box::new(Grid2d),
    ]
}

fn all_vertex_partitioners() -> Vec<Box<dyn VertexPartitioner>> {
    vec![
        Box::new(RandomVertexPartitioner),
        Box::new(Ldg::default()),
        Box::new(Spinner::default()),
        Box::new(Metis::default()),
        Box::new(ByteGnn::default()),
        Box::new(Kahip::default()),
        Box::new(ReLdg { passes: 3, slack: 1.1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Edge partitions: every edge assigned once; RF within [1, k];
    /// balance metrics >= 1.
    #[test]
    fn edge_partitioners_valid(g in arb_graph(), k in 1u32..10, seed in any::<u64>()) {
        for p in all_edge_partitioners() {
            let part = p.partition_edges(&g, k, seed)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            let total: u64 = part.edge_counts().iter().sum();
            prop_assert_eq!(total, u64::from(g.num_edges()), "{}", p.name());
            let rf = part.replication_factor();
            prop_assert!(rf >= 1.0 - 1e-9, "{}: rf {rf}", p.name());
            prop_assert!(rf <= f64::from(k) + 1e-9, "{}: rf {rf}", p.name());
            prop_assert!(part.edge_balance() >= 1.0 - 1e-9 || g.num_edges() == 0);
            prop_assert!(part.vertex_balance() >= 1.0 - 1e-9 || g.num_edges() == 0);
        }
    }

    /// Vertex partitions: every vertex assigned once; cut ratio within
    /// [0, 1]; k = 1 has zero cut.
    #[test]
    fn vertex_partitioners_valid(g in arb_graph(), k in 1u32..10, seed in any::<u64>()) {
        for p in all_vertex_partitioners() {
            let part = p.partition_vertices(&g, k, seed)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            let total: u64 = part.vertex_counts().iter().sum();
            prop_assert_eq!(total, u64::from(g.num_vertices()), "{}", p.name());
            let cut = part.edge_cut_ratio();
            prop_assert!((0.0..=1.0).contains(&cut), "{}: cut {cut}", p.name());
            if k == 1 {
                prop_assert_eq!(part.cut_edges(), 0, "{}", p.name());
            }
        }
    }

    /// Replica masks are consistent with edge assignments.
    #[test]
    fn replica_masks_consistent(g in arb_graph(), k in 1u32..8, seed in any::<u64>()) {
        let part = Hdrf::default().partition_edges(&g, k, seed).expect("valid");
        for (e, (u, v)) in g.edges().enumerate() {
            let p = part.edge_partition(e as u32);
            prop_assert!(part.has_replica(u, p));
            prop_assert!(part.has_replica(v, p));
        }
        // Total replicas equal the sum over partitions of covered counts.
        let sum: u64 = part.covered_vertices().iter().sum();
        prop_assert_eq!(sum, part.total_replicas());
    }

    /// Subset balance of the full vertex set equals the vertex balance.
    #[test]
    fn subset_balance_degenerates(g in arb_graph(), k in 2u32..8, seed in any::<u64>()) {
        let part = Metis::default().partition_vertices(&g, k, seed).expect("valid");
        let all: Vec<u32> = (0..g.num_vertices()).collect();
        let diff = (part.subset_balance(&all) - part.vertex_balance()).abs();
        prop_assert!(diff < 1e-9, "diff {diff}");
    }

    /// The edge-cut ratio of Random at large k approaches 1 - 1/k from
    /// below (sanity of the statistical baseline).
    #[test]
    fn random_cut_bounded(g in arb_graph(), seed in any::<u64>()) {
        let part = RandomVertexPartitioner.partition_vertices(&g, 8, seed).expect("valid");
        prop_assert!(part.edge_cut_ratio() <= 1.0);
    }

    /// Grid2D's provable replication bound `r + c - 1` holds for every
    /// vertex of every graph at every seed.
    #[test]
    fn grid2d_bound_universal(g in arb_graph(), seed in any::<u64>()) {
        // k = 16 -> 4x4 grid -> bound 7.
        let part = Grid2d.partition_edges(&g, 16, seed).expect("valid");
        for v in g.vertices() {
            prop_assert!(part.replica_count(v) <= 7, "vertex {v}: {}", part.replica_count(v));
        }
    }
}

/// An insert-only mutation schedule growing a graph from nothing.
fn insert_only_spec(batches: u32, seed: u64) -> gp_graph::StreamSpec {
    gp_graph::StreamSpec {
        batches,
        inserts_per_batch: 10,
        deletes_per_batch: 0,
        arrivals_per_batch: 3,
        edges_per_arrival: 3,
        seed,
    }
}

/// Drive an incremental edge partitioner over a stream from an empty
/// base, returning the state and the final live snapshot.
fn drive_edge_stream(
    name: &str,
    k: u32,
    seed: u64,
    spec: &gp_graph::StreamSpec,
) -> (IncrementalEdgePartitioner, Graph) {
    let empty = Graph::from_edges(0, &[], false).expect("empty base");
    let plan = gp_graph::StreamPlan::generate(&empty, spec).expect("valid spec");
    let mut sg = gp_graph::StreamGraph::new(&empty);
    let mut inc = IncrementalEdgePartitioner::fresh(name, k, seed, false).expect("valid k");
    for batch in plan.batches() {
        sg.apply(batch).expect("plan mutations are valid");
        for &(u, v) in &batch.inserts {
            inc.insert_edge(u, v).expect("fresh edge");
        }
        for &(u, v) in &batch.deletes {
            inc.delete_edge(u, v).expect("live edge");
        }
    }
    (inc, sg.snapshot().expect("snapshot"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The incremental-vs-batch oracle, universally quantified: HDRF's
    /// online rule fed an insert-only stream in arrival order assigns
    /// every edge exactly as the one-shot partitioner does on the final
    /// snapshot (which enumerates edges in arrival order).
    #[test]
    fn hdrf_incremental_equals_one_shot_universally(
        batches in 2u32..14,
        k in 2u32..9,
        seed in any::<u64>(),
        stream_seed in any::<u64>(),
    ) {
        let (inc, snap) = drive_edge_stream("HDRF", k, seed, &insert_only_spec(batches, stream_seed));
        let one_shot = Hdrf::default().partition_edges(&snap, k, seed).expect("valid");
        let materialized = inc.materialize(&snap).expect("tracked");
        prop_assert_eq!(materialized.assignments(), one_shot.assignments());
        prop_assert_eq!(materialized, one_shot);
    }

    /// 2PS-L's oracle is batch-boundary independence: the same insert
    /// sequence delivered batch by batch or replayed edge by edge in one
    /// pass yields exactly the same assignments.
    #[test]
    fn twops_batch_boundaries_never_change_assignments(
        batches in 2u32..12,
        k in 2u32..8,
        seed in any::<u64>(),
        stream_seed in any::<u64>(),
    ) {
        let spec = insert_only_spec(batches, stream_seed);
        let (inc, snap) = drive_edge_stream("2PS-L", k, seed, &spec);
        let empty = Graph::from_edges(0, &[], false).expect("empty base");
        let plan = gp_graph::StreamPlan::generate(&empty, &spec).expect("valid");
        let mut one = IncrementalEdgePartitioner::fresh("2PS-L", k, seed, false).expect("valid k");
        for batch in plan.batches() {
            for &(u, v) in &batch.inserts {
                one.insert_edge(u, v).expect("fresh edge");
            }
        }
        prop_assert_eq!(
            inc.materialize(&snap).expect("tracked").assignments(),
            one.materialize(&snap).expect("tracked").assignments()
        );
    }

    /// LDG's oracle on arrival-only streams: online placement of each
    /// arriving vertex (seeing only already-placed neighbours) equals
    /// the one-shot LDG fed the vertices in arrival order.
    #[test]
    fn ldg_incremental_equals_one_shot_universally(
        batches in 2u32..14,
        k in 2u32..8,
        stream_seed in any::<u64>(),
    ) {
        let empty = Graph::from_edges(0, &[], false).expect("empty base");
        let spec = gp_graph::StreamSpec {
            batches,
            inserts_per_batch: 0,
            deletes_per_batch: 0,
            arrivals_per_batch: 4,
            edges_per_arrival: 3,
            seed: stream_seed,
        };
        let plan = gp_graph::StreamPlan::generate(&empty, &spec).expect("valid");
        let n = batches * 4;
        let mut sg = gp_graph::StreamGraph::new(&empty);
        let mut inc = IncrementalVertexPartitioner::fresh("LDG", k, 1).expect("valid k");
        inc.provision_capacity(n);
        for batch in plan.batches() {
            sg.apply(batch).expect("valid");
            let first_new = sg.num_vertices() - batch.new_vertices;
            for v in first_new..sg.num_vertices() {
                let neighbors: Vec<u32> = batch
                    .inserts
                    .iter()
                    .filter_map(|&(a, b)| {
                        let w = if a == v { b } else if b == v { a } else { return None };
                        inc.partition_of(w)
                    })
                    .collect();
                inc.place_vertex(v, &neighbors).expect("fresh vertex");
            }
        }
        let snap = sg.snapshot().expect("snapshot");
        prop_assert_eq!(snap.num_vertices(), n);
        let order: Vec<u32> = (0..n).collect();
        let one_shot = Ldg::default().partition_in_order(&snap, k, &order).expect("valid");
        let materialized = inc.materialize(&snap).expect("tracked");
        prop_assert_eq!(materialized.assignments(), one_shot.assignments());
    }

    /// Under arbitrary churn (inserts, deletes, arrivals) every roster
    /// name's live ledger agrees exactly with the eagerly recomputed
    /// partition — the deletion bookkeeping leaves no residue.
    #[test]
    fn ledger_matches_materialized_truth_under_churn(
        g in arb_graph(),
        k in 2u32..8,
        seed in any::<u64>(),
        stream_seed in any::<u64>(),
    ) {
        let spec = gp_graph::StreamSpec {
            batches: 6,
            inserts_per_batch: 8,
            deletes_per_batch: 10,
            arrivals_per_batch: 2,
            edges_per_arrival: 2,
            seed: stream_seed,
        };
        let plan = gp_graph::StreamPlan::generate(&g, &spec).expect("valid");
        for name in ["Random", "DBH", "HDRF", "2PS-L", "HEP-10"] {
            let full = full_edge_partitioner(name)
                .expect("roster name")
                .partition_edges(&g, k, seed)
                .expect("valid");
            let mut inc = IncrementalEdgePartitioner::from_partition(name, &g, &full, seed)
                .expect("matching partition");
            let mut sg = gp_graph::StreamGraph::new(&g);
            for batch in plan.batches() {
                sg.apply(batch).expect("valid");
                for &(u, v) in &batch.inserts {
                    inc.insert_edge(u, v).expect("fresh edge");
                }
                for &(u, v) in &batch.deletes {
                    inc.delete_edge(u, v).expect("live edge");
                }
            }
            let snap = sg.snapshot().expect("snapshot");
            let part = inc.materialize(&snap).expect("tracked");
            prop_assert_eq!(inc.num_live_edges(), u64::from(snap.num_edges()), "{}", name);
            prop_assert_eq!(inc.total_replicas(), part.total_replicas(), "{}", name);
            prop_assert_eq!(inc.live_replication_factor(), part.replication_factor(), "{}", name);
            prop_assert_eq!(inc.live_edge_balance(), part.edge_balance(), "{}", name);
        }
    }
}
