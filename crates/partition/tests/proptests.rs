//! Property-based tests: every partitioner (the paper's 12 plus the
//! extensions) produces structurally valid partitions on arbitrary
//! graphs, and the quality metrics respect their mathematical bounds.

use proptest::prelude::*;

use gp_graph::{Graph, GraphBuilder};
use gp_partition::prelude::*;

/// Strategy: a connected-ish random graph.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (10u32..150, 1usize..6, any::<u64>()).prop_map(|(n, density, seed)| {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::undirected(n);
        // Spanning chain keeps most vertices non-isolated.
        for v in 1..n {
            b.add_edge(v - 1, v);
        }
        for _ in 0..(n as usize * density) {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            b.add_edge(u, v);
        }
        b.build().expect("in-range")
    })
}

fn all_edge_partitioners() -> Vec<Box<dyn EdgePartitioner>> {
    vec![
        Box::new(RandomEdgePartitioner),
        Box::new(Dbh),
        Box::new(Hdrf::default()),
        Box::new(TwoPsL::default()),
        Box::new(Hep::hep10()),
        Box::new(Hep::hep100()),
        Box::new(Greedy),
        Box::new(Grid2d),
    ]
}

fn all_vertex_partitioners() -> Vec<Box<dyn VertexPartitioner>> {
    vec![
        Box::new(RandomVertexPartitioner),
        Box::new(Ldg::default()),
        Box::new(Spinner::default()),
        Box::new(Metis::default()),
        Box::new(ByteGnn::default()),
        Box::new(Kahip::default()),
        Box::new(ReLdg { passes: 3, slack: 1.1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Edge partitions: every edge assigned once; RF within [1, k];
    /// balance metrics >= 1.
    #[test]
    fn edge_partitioners_valid(g in arb_graph(), k in 1u32..10, seed in any::<u64>()) {
        for p in all_edge_partitioners() {
            let part = p.partition_edges(&g, k, seed)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            let total: u64 = part.edge_counts().iter().sum();
            prop_assert_eq!(total, u64::from(g.num_edges()), "{}", p.name());
            let rf = part.replication_factor();
            prop_assert!(rf >= 1.0 - 1e-9, "{}: rf {rf}", p.name());
            prop_assert!(rf <= f64::from(k) + 1e-9, "{}: rf {rf}", p.name());
            prop_assert!(part.edge_balance() >= 1.0 - 1e-9 || g.num_edges() == 0);
            prop_assert!(part.vertex_balance() >= 1.0 - 1e-9 || g.num_edges() == 0);
        }
    }

    /// Vertex partitions: every vertex assigned once; cut ratio within
    /// [0, 1]; k = 1 has zero cut.
    #[test]
    fn vertex_partitioners_valid(g in arb_graph(), k in 1u32..10, seed in any::<u64>()) {
        for p in all_vertex_partitioners() {
            let part = p.partition_vertices(&g, k, seed)
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            let total: u64 = part.vertex_counts().iter().sum();
            prop_assert_eq!(total, u64::from(g.num_vertices()), "{}", p.name());
            let cut = part.edge_cut_ratio();
            prop_assert!((0.0..=1.0).contains(&cut), "{}: cut {cut}", p.name());
            if k == 1 {
                prop_assert_eq!(part.cut_edges(), 0, "{}", p.name());
            }
        }
    }

    /// Replica masks are consistent with edge assignments.
    #[test]
    fn replica_masks_consistent(g in arb_graph(), k in 1u32..8, seed in any::<u64>()) {
        let part = Hdrf::default().partition_edges(&g, k, seed).expect("valid");
        for (e, (u, v)) in g.edges().enumerate() {
            let p = part.edge_partition(e as u32);
            prop_assert!(part.has_replica(u, p));
            prop_assert!(part.has_replica(v, p));
        }
        // Total replicas equal the sum over partitions of covered counts.
        let sum: u64 = part.covered_vertices().iter().sum();
        prop_assert_eq!(sum, part.total_replicas());
    }

    /// Subset balance of the full vertex set equals the vertex balance.
    #[test]
    fn subset_balance_degenerates(g in arb_graph(), k in 2u32..8, seed in any::<u64>()) {
        let part = Metis::default().partition_vertices(&g, k, seed).expect("valid");
        let all: Vec<u32> = (0..g.num_vertices()).collect();
        let diff = (part.subset_balance(&all) - part.vertex_balance()).abs();
        prop_assert!(diff < 1e-9, "diff {diff}");
    }

    /// The edge-cut ratio of Random at large k approaches 1 - 1/k from
    /// below (sanity of the statistical baseline).
    #[test]
    fn random_cut_bounded(g in arb_graph(), seed in any::<u64>()) {
        let part = RandomVertexPartitioner.partition_vertices(&g, 8, seed).expect("valid");
        prop_assert!(part.edge_cut_ratio() <= 1.0);
    }

    /// Grid2D's provable replication bound `r + c - 1` holds for every
    /// vertex of every graph at every seed.
    #[test]
    fn grid2d_bound_universal(g in arb_graph(), seed in any::<u64>()) {
        // k = 16 -> 4x4 grid -> bound 7.
        let part = Grid2d.partition_edges(&g, 16, seed).expect("valid");
        for v in g.vertices() {
            prop_assert!(part.replica_count(v) <= 7, "vertex {v}: {}", part.replica_count(v));
        }
    }
}
