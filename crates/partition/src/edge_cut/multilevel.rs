//! Shared multilevel partitioning machinery (coarsen → initial partition
//! → uncoarsen + refine), used by [`crate::edge_cut::Metis`] and
//! [`crate::edge_cut::Kahip`].
//!
//! The scheme follows the classic multilevel k-way recipe (Karypis &
//! Kumar): heavy-edge matching collapses matched vertex pairs level by
//! level until the graph is small, a greedy region-growing produces the
//! initial k-way labelling on the coarsest graph, and the labelling is
//! projected back level by level with boundary refinement at each step.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gp_graph::Graph;

/// Weighted undirected graph used internally by the multilevel scheme.
#[derive(Debug, Clone)]
pub struct WeightedGraph {
    /// Weight of each (coarse) vertex = number of original vertices.
    pub vertex_weights: Vec<u64>,
    /// CSR offsets.
    pub offsets: Vec<u32>,
    /// CSR neighbour ids.
    pub targets: Vec<u32>,
    /// CSR edge weights (parallel to `targets`).
    pub weights: Vec<u64>,
}

impl WeightedGraph {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertex_weights.is_empty()
    }

    /// Neighbours of `v` with weights.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u64)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.targets[lo..hi].iter().copied().zip(self.weights[lo..hi].iter().copied())
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vertex_weights.iter().sum()
    }

    /// Build the level-0 weighted graph from a [`Graph`]: direction is
    /// ignored (the cut metric is symmetric) and parallel arcs collapse
    /// into one weighted edge.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_vertices() as usize;
        // Collect symmetrised, deduplicated neighbour lists with weights.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(graph.num_edges() as usize);
        for (u, v) in graph.edges() {
            pairs.push((u.min(v), u.max(v)));
        }
        pairs.sort_unstable();
        let mut deg = vec![0u32; n];
        let mut uniq: Vec<(u32, u32, u64)> = Vec::with_capacity(pairs.len());
        for &(u, v) in &pairs {
            if let Some(last) = uniq.last_mut() {
                if last.0 == u && last.1 == v {
                    last.2 += 1;
                    continue;
                }
            }
            uniq.push((u, v, 1));
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut targets = vec![0u32; offsets[n] as usize];
        let mut weights = vec![0u64; offsets[n] as usize];
        let mut cursor = offsets[..n].to_vec();
        for &(u, v, w) in &uniq {
            targets[cursor[u as usize] as usize] = v;
            weights[cursor[u as usize] as usize] = w;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            weights[cursor[v as usize] as usize] = w;
            cursor[v as usize] += 1;
        }
        WeightedGraph { vertex_weights: vec![1; n], offsets, targets, weights }
    }
}

/// One coarsening step: size-constrained label-propagation clustering +
/// contraction (the "cluster coarsening" used by KaHIP's social-network
/// configurations, which handles power-law graphs far better than
/// heavy-edge matching — hubs cannot be matched pairwise, but they *can*
/// absorb their low-degree fringe into one cluster).
///
/// Returns the coarse graph and the fine→coarse vertex map.
pub fn coarsen(g: &WeightedGraph, seed: u64, max_cluster_weight: u64) -> (WeightedGraph, Vec<u32>) {
    let n = g.len();
    let cap = max_cluster_weight.max(2);
    // Every vertex starts as its own cluster.
    let mut label: Vec<u32> = (0..n as u32).collect();
    let mut cluster_weight: Vec<u64> = g.vertex_weights.clone();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    // Scratch: connection weight to each touched cluster.
    let mut conn: Vec<u64> = vec![0; n];
    let mut touched: Vec<u32> = Vec::new();
    for _iter in 0..2 {
        let mut moves = 0usize;
        for &v in &order {
            let vw = g.vertex_weights[v as usize];
            let current = label[v as usize];
            touched.clear();
            for (w, ew) in g.neighbors(v) {
                let c = label[w as usize];
                if conn[c as usize] == 0 {
                    touched.push(c);
                }
                conn[c as usize] += ew;
            }
            let mut best = current;
            let mut best_w = 0u64;
            for &c in &touched {
                let fits = c == current || cluster_weight[c as usize] + vw <= cap;
                if fits && conn[c as usize] > best_w {
                    best_w = conn[c as usize];
                    best = c;
                }
                conn[c as usize] = 0;
            }
            if best != current {
                cluster_weight[current as usize] -= vw;
                cluster_weight[best as usize] += vw;
                label[v as usize] = best;
                moves += 1;
            }
        }
        if moves == 0 {
            break;
        }
    }
    // Compact cluster ids.
    const UNSET: u32 = u32::MAX;
    let mut remap = vec![UNSET; n];
    let mut next = 0u32;
    let mut map = vec![0u32; n];
    for v in 0..n {
        let c = label[v] as usize;
        if remap[c] == UNSET {
            remap[c] = next;
            next += 1;
        }
        map[v] = remap[c];
    }
    let cn = next as usize;
    // Aggregate vertex weights.
    let mut vertex_weights = vec![0u64; cn];
    for v in 0..n {
        vertex_weights[map[v] as usize] += g.vertex_weights[v];
    }
    // Aggregate edges with a scratch accumulator per coarse vertex.
    let mut acc: Vec<u64> = vec![0; cn];
    let mut touched: Vec<u32> = Vec::new();
    let mut deg = vec![0u32; cn];
    let mut coarse_edges: Vec<(u32, u32, u64)> = Vec::new();
    // Group fine vertices by coarse id for a cache-friendly sweep.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); cn];
    for v in 0..n as u32 {
        members[map[v as usize] as usize].push(v);
    }
    for (cv, group) in members.iter().enumerate() {
        touched.clear();
        for &v in group {
            for (w, ew) in g.neighbors(v) {
                let cw = map[w as usize];
                if cw as usize == cv {
                    continue; // internal edge disappears
                }
                if acc[cw as usize] == 0 {
                    touched.push(cw);
                }
                acc[cw as usize] += ew;
            }
        }
        for &cw in &touched {
            // Emit each coarse edge once (from the smaller endpoint).
            if (cv as u32) < cw {
                coarse_edges.push((cv as u32, cw, acc[cw as usize]));
                deg[cv] += 1;
                deg[cw as usize] += 1;
            }
            acc[cw as usize] = 0;
        }
    }
    let mut offsets = vec![0u32; cn + 1];
    for v in 0..cn {
        offsets[v + 1] = offsets[v] + deg[v];
    }
    let mut targets = vec![0u32; offsets[cn] as usize];
    let mut weights = vec![0u64; offsets[cn] as usize];
    let mut cursor = offsets[..cn].to_vec();
    for &(u, v, w) in &coarse_edges {
        targets[cursor[u as usize] as usize] = v;
        weights[cursor[u as usize] as usize] = w;
        cursor[u as usize] += 1;
        targets[cursor[v as usize] as usize] = u;
        weights[cursor[v as usize] as usize] = w;
        cursor[v as usize] += 1;
    }
    (WeightedGraph { vertex_weights, offsets, targets, weights }, map)
}

/// Greedy region-growing initial partition of a (coarse) graph.
pub fn initial_partition(g: &WeightedGraph, k: u32, seed: u64) -> Vec<u32> {
    let n = g.len();
    let total = g.total_vertex_weight();
    let target = total.div_ceil(u64::from(k));
    const NONE: u32 = u32::MAX;
    let mut labels = vec![NONE; n];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut rng);
    let mut cursor = 0usize;
    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    for p in 0..k {
        let mut weight = 0u64;
        queue.clear();
        // Find a fresh seed.
        while cursor < order.len() && labels[order[cursor] as usize] != NONE {
            cursor += 1;
        }
        if cursor >= order.len() {
            break;
        }
        queue.push_back(order[cursor]);
        while let Some(v) = queue.pop_front() {
            if labels[v as usize] != NONE {
                continue;
            }
            labels[v as usize] = p;
            weight += g.vertex_weights[v as usize];
            if weight >= target && p + 1 < k {
                break;
            }
            for (w, _) in g.neighbors(v) {
                if labels[w as usize] == NONE {
                    queue.push_back(w);
                }
            }
            // BFS starve: pull another unassigned seed when the frontier
            // dries up but the budget is not met.
            if queue.is_empty() && weight < target {
                while cursor < order.len() && labels[order[cursor] as usize] != NONE {
                    cursor += 1;
                }
                if cursor < order.len() {
                    queue.push_back(order[cursor]);
                }
            }
        }
    }
    // Leftovers (possible when early partitions swallowed everything):
    // assign to the lightest partition.
    let mut loads = vec![0u64; k as usize];
    for v in 0..n {
        if labels[v] != NONE {
            loads[labels[v] as usize] += g.vertex_weights[v];
        }
    }
    for (v, label) in labels.iter_mut().enumerate() {
        if *label == NONE {
            let p = (0..k).min_by_key(|&p| loads[p as usize]).expect("k >= 1");
            *label = p;
            loads[p as usize] += g.vertex_weights[v];
        }
    }
    labels
}

/// Boundary refinement: greedily move boundary vertices to the partition
/// with maximal cut-weight gain subject to the balance constraint.
///
/// `allow_balance_moves` additionally permits zero-gain moves that
/// improve the load balance (KaHIP-style), which escapes local optima at
/// the cost of more passes.
pub fn refine(
    g: &WeightedGraph,
    labels: &mut [u32],
    k: u32,
    epsilon: f64,
    passes: u32,
    allow_balance_moves: bool,
) {
    let n = g.len();
    let total = g.total_vertex_weight();
    let max_load =
        ((1.0 + epsilon) * total as f64 / f64::from(k)).ceil() as u64;
    let mut loads = vec![0u64; k as usize];
    for v in 0..n {
        loads[labels[v] as usize] += g.vertex_weights[v];
    }
    let mut conn = vec![0u64; k as usize];
    for _ in 0..passes {
        let mut moves = 0usize;
        for v in 0..n as u32 {
            let vw = g.vertex_weights[v as usize];
            let current = labels[v as usize];
            conn.iter_mut().for_each(|c| *c = 0);
            let mut boundary = false;
            for (w, ew) in g.neighbors(v) {
                let lw = labels[w as usize];
                conn[lw as usize] += ew;
                if lw != current {
                    boundary = true;
                }
            }
            if !boundary {
                continue;
            }
            let here = conn[current as usize];
            let mut best = current;
            let mut best_gain = 0i64;
            for p in 0..k {
                if p == current || loads[p as usize] + vw > max_load {
                    continue;
                }
                let gain = conn[p as usize] as i64 - here as i64;
                let better = gain > best_gain
                    || (allow_balance_moves
                        && gain == best_gain
                        && loads[p as usize] + vw < loads[best as usize]);
                if better {
                    best_gain = gain;
                    best = p;
                }
            }
            if best != current {
                loads[current as usize] -= vw;
                loads[best as usize] += vw;
                labels[v as usize] = best;
                moves += 1;
            }
        }
        if moves == 0 {
            break;
        }
    }
}

/// Cut weight of a labelling (each undirected weighted edge counted once).
pub fn cut_weight(g: &WeightedGraph, labels: &[u32]) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.len() as u32 {
        for (w, ew) in g.neighbors(v) {
            if v < w && labels[v as usize] != labels[w as usize] {
                cut += ew;
            }
        }
    }
    cut
}

/// Full multilevel k-way run. Returns per-vertex labels for the original
/// graph.
pub fn multilevel_kway(
    graph: &Graph,
    k: u32,
    seed: u64,
    epsilon: f64,
    refine_passes: u32,
    allow_balance_moves: bool,
) -> Vec<u32> {
    let base = WeightedGraph::from_graph(graph);
    if k == 1 {
        return vec![0; base.len()];
    }
    // Coarsening phase. The cluster-weight cap keeps coarse vertices
    // small enough that the balance constraint stays satisfiable.
    let total_weight = base.total_vertex_weight();
    let coarsen_limit = (30 * k as usize).max(128);
    let max_cluster_weight =
        (total_weight / (10 * u64::from(k)).max(1)).max(2);
    let mut levels: Vec<(WeightedGraph, Vec<u32>)> = Vec::new();
    let mut current = base;
    let mut level_seed = seed;
    while current.len() > coarsen_limit {
        let before = current.len();
        let (coarse, map) = coarsen(&current, level_seed, max_cluster_weight);
        level_seed = level_seed.wrapping_add(0x9e37_79b9);
        let after = coarse.len();
        levels.push((std::mem::replace(&mut current, coarse), map));
        // Stop if clustering stalls.
        if (after as f64) > 0.95 * before as f64 {
            break;
        }
    }
    // Initial partition on the coarsest level.
    let mut labels = initial_partition(&current, k, seed ^ 0xabcd);
    refine(&current, &mut labels, k, epsilon, refine_passes, allow_balance_moves);
    // Uncoarsening with refinement at every level.
    while let Some((fine, map)) = levels.pop() {
        let mut fine_labels = vec![0u32; fine.len()];
        for v in 0..fine.len() {
            fine_labels[v] = labels[map[v] as usize];
        }
        labels = fine_labels;
        refine(&fine, &mut labels, k, epsilon, refine_passes, allow_balance_moves);
        current = fine;
    }
    let _ = current;
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::testutil::{grid_graph, skewed_graph};

    #[test]
    fn weighted_graph_from_graph_symmetric() {
        let g = gp_graph::Graph::from_edges(3, &[(0, 1), (1, 2)], true).unwrap();
        let wg = WeightedGraph::from_graph(&g);
        assert_eq!(wg.len(), 3);
        let n1: Vec<_> = wg.neighbors(1).collect();
        assert_eq!(n1.len(), 2);
        assert_eq!(wg.total_vertex_weight(), 3);
    }

    #[test]
    fn bidirectional_arcs_merge_with_weight_two() {
        let g = gp_graph::Graph::from_edges(2, &[(0, 1), (1, 0)], true).unwrap();
        let wg = WeightedGraph::from_graph(&g);
        let n0: Vec<_> = wg.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 2)]);
    }

    #[test]
    fn coarsen_preserves_vertex_weight() {
        let g = skewed_graph();
        let wg = WeightedGraph::from_graph(&g);
        let (coarse, map) = coarsen(&wg, 0, 64);
        assert_eq!(coarse.total_vertex_weight(), wg.total_vertex_weight());
        assert!(coarse.len() < wg.len());
        assert!(map.iter().all(|&c| (c as usize) < coarse.len()));
    }

    #[test]
    fn coarsen_preserves_cut_structure() {
        // A cut on the coarse graph must equal the corresponding fine cut.
        let g = grid_graph();
        let wg = WeightedGraph::from_graph(&g);
        let (coarse, map) = coarsen(&wg, 1, 64);
        let coarse_labels: Vec<u32> =
            (0..coarse.len() as u32).map(|v| v % 2).collect();
        let fine_labels: Vec<u32> =
            (0..wg.len()).map(|v| coarse_labels[map[v] as usize]).collect();
        assert_eq!(cut_weight(&coarse, &coarse_labels), cut_weight(&wg, &fine_labels));
    }

    #[test]
    fn initial_partition_covers_everything() {
        let g = grid_graph();
        let wg = WeightedGraph::from_graph(&g);
        let labels = initial_partition(&wg, 4, 0);
        assert_eq!(labels.len(), wg.len());
        assert!(labels.iter().all(|&l| l < 4));
        // Every partition gets something.
        for p in 0..4 {
            assert!(labels.contains(&p), "partition {p} empty");
        }
    }

    #[test]
    fn refine_never_worsens_cut() {
        let g = grid_graph();
        let wg = WeightedGraph::from_graph(&g);
        let mut labels = initial_partition(&wg, 4, 0);
        let before = cut_weight(&wg, &labels);
        refine(&wg, &mut labels, 4, 0.05, 4, false);
        let after = cut_weight(&wg, &labels);
        assert!(after <= before, "cut got worse: {before} -> {after}");
    }

    #[test]
    fn multilevel_beats_naive_split_on_grid() {
        let g = grid_graph();
        let wg = WeightedGraph::from_graph(&g);
        let labels = multilevel_kway(&g, 4, 0, 0.05, 4, false);
        let naive: Vec<u32> =
            (0..wg.len() as u32).map(|v| v % 4).collect();
        assert!(cut_weight(&wg, &labels) < cut_weight(&wg, &naive) / 2);
    }

    #[test]
    fn multilevel_k1_trivial() {
        let g = grid_graph();
        let labels = multilevel_kway(&g, 1, 0, 0.05, 2, false);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn multilevel_respects_balance() {
        let g = skewed_graph();
        let labels = multilevel_kway(&g, 8, 0, 0.05, 4, false);
        let mut loads = [0u64; 8];
        for &l in &labels {
            loads[l as usize] += 1;
        }
        let max = *loads.iter().max().unwrap() as f64;
        let mean = labels.len() as f64 / 8.0;
        assert!(max / mean < 1.35, "balance {}", max / mean);
    }
}
