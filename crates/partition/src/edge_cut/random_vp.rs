//! Random vertex partitioning (stateless streaming).
//!
//! The DistDGL baseline: each vertex is assigned by hashing its id.
//! Vertex counts are balanced in expectation, but the expected edge-cut
//! ratio is `1 - 1/k` — nearly every edge is cut at large `k`.

use gp_graph::Graph;

use crate::assignment::VertexPartition;
use crate::error::PartitionError;
use crate::traits::VertexPartitioner;
use crate::vertex_cut::dbh::mix64;

/// Uniformly random (hash-based) vertex partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomVertexPartitioner;

impl VertexPartitioner for RandomVertexPartitioner {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn partition_vertices(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<VertexPartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        let assignments: Vec<u32> = (0..graph.num_vertices())
            .map(|v| (mix64(u64::from(v) ^ seed) % u64::from(k)) as u32)
            .collect();
        VertexPartition::new(graph, k, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::testutil::{check_vertex_partitioner, skewed_graph};

    #[test]
    fn passes_common_checks() {
        check_vertex_partitioner(&RandomVertexPartitioner);
    }

    #[test]
    fn balanced_vertices() {
        let g = skewed_graph();
        let p = RandomVertexPartitioner.partition_vertices(&g, 8, 1).unwrap();
        assert!(p.vertex_balance() < 1.2, "balance {}", p.vertex_balance());
    }

    #[test]
    fn edge_cut_near_one_minus_one_over_k() {
        let g = skewed_graph();
        let p = RandomVertexPartitioner.partition_vertices(&g, 8, 1).unwrap();
        let expected = 1.0 - 1.0 / 8.0;
        assert!((p.edge_cut_ratio() - expected).abs() < 0.05, "cut {}", p.edge_cut_ratio());
    }

    #[test]
    fn seed_changes_assignment() {
        let g = skewed_graph();
        let a = RandomVertexPartitioner.partition_vertices(&g, 4, 1).unwrap();
        let b = RandomVertexPartitioner.partition_vertices(&g, 4, 2).unwrap();
        assert_ne!(a.assignments(), b.assignments());
    }
}
