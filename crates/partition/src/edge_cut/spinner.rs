//! Spinner — label-propagation partitioning (Martella et al., ICDE 2017).
//!
//! In-memory vertex partitioner: every vertex starts with a random label
//! (partition) and repeatedly adopts the label that is most common among
//! its neighbours, weighted by a load penalty that discourages
//! overloaded partitions. Iterates until the labelling stabilises.
//!
//! Spinner balances *edges* per partition (its load is the number of
//! adjacent arcs), which matches the original system and explains why
//! its vertex balance can drift — an effect the paper observes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gp_graph::Graph;

use crate::assignment::VertexPartition;
use crate::error::PartitionError;
use crate::traits::VertexPartitioner;

/// Spinner label-propagation partitioner.
#[derive(Debug, Clone, Copy)]
pub struct Spinner {
    /// Maximum label-propagation iterations.
    pub max_iters: u32,
    /// Stop when fewer than this fraction of vertices change label.
    pub convergence_threshold: f64,
    /// Additional capacity slack on the edge load per partition.
    pub slack: f64,
}

impl Default for Spinner {
    fn default() -> Self {
        Spinner { max_iters: 60, convergence_threshold: 0.002, slack: 1.05 }
    }
}

impl VertexPartitioner for Spinner {
    fn name(&self) -> &'static str {
        "Spinner"
    }

    fn partition_vertices(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<VertexPartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        if self.slack < 1.0 || self.convergence_threshold < 0.0 {
            return Err(PartitionError::InvalidParameter(
                "slack must be >= 1 and convergence_threshold >= 0".into(),
            ));
        }
        let n = graph.num_vertices() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..k)).collect();

        // Edge-based load: each arc adjacent to a vertex counts towards
        // its partition's load.
        let degree = |v: u32| u64::from(graph.degree(v));
        let total_load: u64 = graph.vertices().map(degree).sum();
        let capacity =
            ((self.slack * total_load as f64) / f64::from(k)).ceil().max(1.0) as u64;
        let mut load = vec![0u64; k as usize];
        for v in graph.vertices() {
            load[labels[v as usize] as usize] += degree(v);
        }

        let mut counts = vec![0u64; k as usize];
        for _iter in 0..self.max_iters {
            let mut changed = 0usize;
            for v in graph.vertices() {
                let d = degree(v);
                if d == 0 {
                    continue;
                }
                counts.iter_mut().for_each(|c| *c = 0);
                for &w in graph.out_neighbors(v) {
                    counts[labels[w as usize] as usize] += 1;
                }
                if graph.is_directed() {
                    for &w in graph.in_neighbors(v) {
                        counts[labels[w as usize] as usize] += 1;
                    }
                }
                let current = labels[v as usize];
                let mut best = current;
                let mut best_score = f64::NEG_INFINITY;
                for p in 0..k {
                    // Moving to p must not overload it.
                    let projected = if p == current {
                        load[p as usize]
                    } else {
                        load[p as usize] + d
                    };
                    if projected > capacity {
                        continue;
                    }
                    let affinity = counts[p as usize] as f64 / d as f64;
                    let penalty = load[p as usize] as f64 / capacity as f64;
                    let mut score = affinity - penalty;
                    // Slight stickiness avoids label oscillation.
                    if p == current {
                        score += 1e-3;
                    }
                    if score > best_score {
                        best_score = score;
                        best = p;
                    }
                }
                if best != current {
                    load[current as usize] -= d;
                    load[best as usize] += d;
                    labels[v as usize] = best;
                    changed += 1;
                }
            }
            if (changed as f64) < self.convergence_threshold * n as f64 {
                break;
            }
        }
        VertexPartition::new(graph, k, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::testutil::{check_vertex_partitioner, grid_graph, skewed_graph};
    use crate::edge_cut::RandomVertexPartitioner;

    #[test]
    fn passes_common_checks() {
        check_vertex_partitioner(&Spinner::default());
    }

    #[test]
    fn beats_random_cut() {
        let g = skewed_graph();
        let sp = Spinner::default().partition_vertices(&g, 8, 1).unwrap();
        let rnd = RandomVertexPartitioner.partition_vertices(&g, 8, 1).unwrap();
        assert!(sp.edge_cut_ratio() < rnd.edge_cut_ratio());
    }

    #[test]
    fn strong_on_grids() {
        let g = grid_graph();
        let sp = Spinner::default().partition_vertices(&g, 4, 1).unwrap();
        assert!(sp.edge_cut_ratio() < 0.4, "cut {}", sp.edge_cut_ratio());
    }

    #[test]
    fn more_iterations_do_not_hurt() {
        let g = skewed_graph();
        let short = Spinner { max_iters: 2, ..Spinner::default() }
            .partition_vertices(&g, 4, 1)
            .unwrap();
        let long = Spinner { max_iters: 80, ..Spinner::default() }
            .partition_vertices(&g, 4, 1)
            .unwrap();
        assert!(long.edge_cut_ratio() <= short.edge_cut_ratio() + 0.02);
    }

    #[test]
    fn rejects_bad_params() {
        let g = skewed_graph();
        assert!(Spinner { slack: 0.5, ..Spinner::default() }
            .partition_vertices(&g, 4, 0)
            .is_err());
    }
}
