//! ReLDG — restreaming Linear Deterministic Greedy
//! (Nishimura & Ugander, KDD 2013; the paper's reference 33).
//!
//! **Extension beyond the paper's Table 2**: runs LDG repeatedly over
//! the same vertex stream, each pass seeded with the previous pass's
//! assignment, which converges towards a much lower edge-cut than a
//! single pass while keeping streaming-level memory. Restreaming sits
//! between the streaming and in-memory categories: it needs the stream
//! to be replayable but never materialises the graph-partitioning state
//! beyond O(|V|).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gp_graph::Graph;

use crate::assignment::VertexPartition;
use crate::error::PartitionError;
use crate::traits::VertexPartitioner;

/// Restreaming LDG vertex partitioner.
#[derive(Debug, Clone, Copy)]
pub struct ReLdg {
    /// Number of restreaming passes (1 = plain LDG).
    pub passes: u32,
    /// Capacity slack per partition.
    pub slack: f64,
}

impl Default for ReLdg {
    fn default() -> Self {
        ReLdg { passes: 10, slack: 1.1 }
    }
}

impl VertexPartitioner for ReLdg {
    fn name(&self) -> &'static str {
        "ReLDG"
    }

    fn partition_vertices(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<VertexPartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        if self.passes == 0 || self.slack < 1.0 {
            return Err(PartitionError::InvalidParameter(
                "passes must be > 0 and slack >= 1".into(),
            ));
        }
        let n = graph.num_vertices();
        let capacity = ((self.slack * f64::from(n) / f64::from(k)).ceil() as u64).max(1);
        let mut order: Vec<u32> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);

        const NONE: u32 = u32::MAX;
        let mut assignments = vec![NONE; n as usize];
        let mut neighbor_counts = vec![0u32; k as usize];
        for _pass in 0..self.passes {
            // Restreaming: vertices keep their previous assignment until
            // revisited; sizes track the *current* labelling.
            let mut sizes = vec![0u64; k as usize];
            for &p in assignments.iter().filter(|&&p| p != NONE) {
                sizes[p as usize] += 1;
            }
            for &v in &order {
                // Remove v from its old partition before re-placing it.
                let old = assignments[v as usize];
                if old != NONE {
                    sizes[old as usize] -= 1;
                }
                neighbor_counts.iter_mut().for_each(|c| *c = 0);
                for &w in graph.out_neighbors(v) {
                    let p = assignments[w as usize];
                    if p != NONE {
                        neighbor_counts[p as usize] += 1;
                    }
                }
                if graph.is_directed() {
                    for &w in graph.in_neighbors(v) {
                        let p = assignments[w as usize];
                        if p != NONE {
                            neighbor_counts[p as usize] += 1;
                        }
                    }
                }
                let mut best = 0u32;
                let mut best_score = f64::NEG_INFINITY;
                for p in 0..k {
                    if sizes[p as usize] >= capacity {
                        continue;
                    }
                    let weight = 1.0 - sizes[p as usize] as f64 / capacity as f64;
                    let score = f64::from(neighbor_counts[p as usize]) * weight + weight * 1e-6;
                    if score > best_score {
                        best_score = score;
                        best = p;
                    }
                }
                if best_score == f64::NEG_INFINITY {
                    best = (0..k).min_by_key(|&p| sizes[p as usize]).expect("k >= 1");
                }
                assignments[v as usize] = best;
                sizes[best as usize] += 1;
            }
        }
        VertexPartition::new(graph, k, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::testutil::{check_vertex_partitioner, community_graph, grid_graph};
    use crate::edge_cut::Ldg;

    #[test]
    fn passes_common_checks() {
        check_vertex_partitioner(&ReLdg::default());
    }

    #[test]
    fn restreaming_improves_on_single_pass() {
        // The Nishimura–Ugander result: more passes, lower cut.
        let g = community_graph();
        let one = ReLdg { passes: 1, slack: 1.1 }.partition_vertices(&g, 8, 1).unwrap();
        let ten = ReLdg { passes: 10, slack: 1.1 }.partition_vertices(&g, 8, 1).unwrap();
        assert!(
            ten.edge_cut_ratio() < one.edge_cut_ratio(),
            "pass 10 cut {} >= pass 1 cut {}",
            ten.edge_cut_ratio(),
            one.edge_cut_ratio()
        );
    }

    #[test]
    fn single_pass_matches_ldg_quality_class() {
        // One ReLDG pass and LDG are the same algorithm up to stream
        // order; their cuts should be in the same ballpark.
        let g = grid_graph();
        let reldg = ReLdg { passes: 1, slack: 1.1 }.partition_vertices(&g, 4, 1).unwrap();
        let ldg = Ldg::default().partition_vertices(&g, 4, 1).unwrap();
        let ratio = reldg.edge_cut_ratio() / ldg.edge_cut_ratio().max(1e-9);
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn respects_capacity_after_restreaming() {
        let g = community_graph();
        let p = ReLdg::default().partition_vertices(&g, 8, 1).unwrap();
        let cap = (1.1 * f64::from(g.num_vertices()) / 8.0).ceil() as u64 + 1;
        assert!(p.vertex_counts().iter().all(|&c| c <= cap));
    }

    #[test]
    fn rejects_bad_params() {
        let g = grid_graph();
        assert!(ReLdg { passes: 0, slack: 1.1 }.partition_vertices(&g, 4, 0).is_err());
        assert!(ReLdg { passes: 2, slack: 0.5 }.partition_vertices(&g, 4, 0).is_err());
    }
}
