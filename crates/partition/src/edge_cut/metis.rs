//! METIS-style multilevel k-way vertex partitioner (Karypis & Kumar).
//!
//! A from-scratch multilevel implementation occupying the same design
//! point as the METIS binary the paper uses: in-memory, low edge-cut,
//! moderate runtime. Configuration: 5% imbalance tolerance, greedy
//! boundary refinement, a single V-cycle.

use gp_graph::Graph;

use crate::assignment::VertexPartition;
use crate::edge_cut::multilevel::multilevel_kway;
use crate::error::PartitionError;
use crate::traits::VertexPartitioner;

/// METIS-style multilevel partitioner.
#[derive(Debug, Clone, Copy)]
pub struct Metis {
    /// Allowed imbalance ε (vertex-count based).
    pub epsilon: f64,
    /// Refinement passes per level.
    pub refine_passes: u32,
}

impl Default for Metis {
    fn default() -> Self {
        Metis { epsilon: 0.05, refine_passes: 3 }
    }
}

impl VertexPartitioner for Metis {
    fn name(&self) -> &'static str {
        "METIS"
    }

    fn partition_vertices(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<VertexPartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        if self.epsilon < 0.0 {
            return Err(PartitionError::InvalidParameter("epsilon must be >= 0".into()));
        }
        let labels =
            multilevel_kway(graph, k, seed, self.epsilon, self.refine_passes, false);
        VertexPartition::new(graph, k, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::testutil::{check_vertex_partitioner, community_graph, grid_graph, skewed_graph};
    use crate::edge_cut::{Ldg, RandomVertexPartitioner};

    #[test]
    fn passes_common_checks() {
        check_vertex_partitioner(&Metis::default());
    }

    #[test]
    fn much_better_than_random() {
        let g = community_graph();
        let metis = Metis::default().partition_vertices(&g, 8, 1).unwrap();
        let rnd = RandomVertexPartitioner.partition_vertices(&g, 8, 1).unwrap();
        assert!(
            metis.edge_cut_ratio() < 0.7 * rnd.edge_cut_ratio(),
            "METIS {} vs Random {}",
            metis.edge_cut_ratio(),
            rnd.edge_cut_ratio()
        );
    }

    #[test]
    fn beats_streaming_ldg() {
        let g = grid_graph();
        let metis = Metis::default().partition_vertices(&g, 8, 1).unwrap();
        let ldg = Ldg::default().partition_vertices(&g, 8, 1).unwrap();
        assert!(metis.edge_cut_ratio() <= ldg.edge_cut_ratio() + 0.02);
    }

    #[test]
    fn tiny_cut_on_grids() {
        // Road networks partition almost perfectly (paper Figure 12: DI
        // edge-cut < 0.001 for KaHIP, very low for METIS too).
        let g = grid_graph();
        let p = Metis::default().partition_vertices(&g, 4, 1).unwrap();
        assert!(p.edge_cut_ratio() < 0.12, "cut {}", p.edge_cut_ratio());
    }

    #[test]
    fn balanced(){
        let g = skewed_graph();
        let p = Metis::default().partition_vertices(&g, 8, 1).unwrap();
        assert!(p.vertex_balance() < 1.35, "balance {}", p.vertex_balance());
    }

    #[test]
    fn rejects_negative_epsilon() {
        let g = grid_graph();
        assert!(Metis { epsilon: -0.1, refine_passes: 1 }
            .partition_vertices(&g, 4, 0)
            .is_err());
    }
}
