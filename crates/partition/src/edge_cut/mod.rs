//! Vertex partitioners (edge-cut).
//!
//! Every algorithm assigns each *vertex* to exactly one partition; edges
//! whose endpoints land on different partitions are cut. The key quality
//! metrics are the edge-cut ratio (communication) and the vertex balance
//! (computation / memory balance). DistDGL-style mini-batch training
//! additionally cares about the *training-vertex* balance, which
//! [`ByteGnn`] optimises explicitly.

pub mod bytegnn;
pub mod kahip;
pub mod ldg;
pub mod metis;
pub mod multilevel;
pub mod random_vp;
pub mod reldg;
pub mod spinner;

pub use bytegnn::ByteGnn;
pub use kahip::Kahip;
pub use ldg::Ldg;
pub use metis::Metis;
pub use random_vp::RandomVertexPartitioner;
pub use reldg::ReLdg;
pub use spinner::Spinner;

#[cfg(test)]
pub(crate) mod testutil {
    use gp_graph::generators::{rmat, RmatParams};
    use gp_graph::Graph;

    use crate::assignment::VertexPartition;
    use crate::traits::VertexPartitioner;

    /// A small skewed test graph.
    pub fn skewed_graph() -> Graph {
        rmat(RmatParams { scale: 9, edge_factor: 8, ..RmatParams::default() }, 7).unwrap()
    }

    /// A small community-structured social graph (heavy tail AND
    /// clusters), the structure on which multilevel partitioners shine.
    pub fn community_graph() -> Graph {
        gp_graph::generators::community(
            gp_graph::generators::CommunityParams {
                n: 1200,
                m: 20_000,
                communities: 12,
                intra_prob: 0.75,
                degree_exponent: 2.3,
            },
            5,
        )
        .unwrap()
    }

    /// A small road-like test graph (low degree, no skew).
    pub fn grid_graph() -> Graph {
        gp_graph::generators::road(
            gp_graph::generators::RoadParams {
                width: 24,
                height: 24,
                removal_prob: 0.3,
                highways: 10,
            },
            3,
        )
        .unwrap()
    }

    /// Checks every vertex partitioner must pass.
    pub fn check_vertex_partitioner(p: &dyn VertexPartitioner) {
        let g = skewed_graph();
        for k in [1u32, 2, 4, 8] {
            let part = p.partition_vertices(&g, k, 42).unwrap();
            validate(&g, &part, k);
        }
        let a = p.partition_vertices(&g, 4, 1).unwrap();
        let b = p.partition_vertices(&g, 4, 1).unwrap();
        assert_eq!(a.assignments(), b.assignments(), "{} not deterministic", p.name());
    }

    /// Structural validity of a vertex partition.
    pub fn validate(g: &Graph, part: &VertexPartition, k: u32) {
        assert_eq!(part.k(), k);
        assert_eq!(part.assignments().len(), g.num_vertices() as usize);
        let total: u64 = part.vertex_counts().iter().sum();
        assert_eq!(total, u64::from(g.num_vertices()), "all vertices assigned once");
        assert!(part.edge_cut_ratio() >= 0.0 && part.edge_cut_ratio() <= 1.0);
        if k == 1 {
            assert_eq!(part.cut_edges(), 0);
        }
    }
}
