//! ByteGNN-style block-based partitioner (Zheng et al., VLDB 2022).
//!
//! ByteGNN partitions specifically for mini-batch GNN training: it grows
//! small multi-hop BFS *blocks* around the training vertices (the seeds
//! of mini-batch sampling) and assigns whole blocks to partitions while
//! balancing the number of *training* vertices per partition. This keeps
//! each training vertex's sampling neighbourhood local and balances the
//! per-worker mini-batch load — the two quantities that matter for
//! DistDGL-style training.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gp_graph::Graph;

use crate::assignment::VertexPartition;
use crate::error::PartitionError;
use crate::traits::VertexPartitioner;

/// ByteGNN block-growing partitioner.
#[derive(Debug, Clone)]
pub struct ByteGnn {
    /// Training vertices used as block seeds. When `None`, a
    /// deterministic 10% sample (matching the paper's split) is drawn
    /// from the seed.
    pub train_vertices: Option<Vec<u32>>,
    /// BFS depth of each block (the paper's models use 2–4 hop
    /// neighbourhoods; blocks of depth 2 capture the bulk of locality).
    pub hops: u32,
    /// Maximum block size as a multiple of `n / (k * blocks_per_k)`;
    /// bounds the imbalance a single giant block can cause.
    pub max_block_factor: f64,
}

impl Default for ByteGnn {
    fn default() -> Self {
        ByteGnn { train_vertices: None, hops: 2, max_block_factor: 0.5 }
    }
}

impl ByteGnn {
    /// ByteGNN with an explicit training set.
    pub fn with_train_vertices(train: Vec<u32>) -> Self {
        ByteGnn { train_vertices: Some(train), ..ByteGnn::default() }
    }
}

impl VertexPartitioner for ByteGnn {
    fn name(&self) -> &'static str {
        "ByteGNN"
    }

    fn partition_vertices(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<VertexPartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        if self.hops == 0 {
            return Err(PartitionError::InvalidParameter("hops must be > 0".into()));
        }
        let n = graph.num_vertices();
        let mut rng = StdRng::seed_from_u64(seed);

        // Training seeds: provided or a deterministic 10% sample.
        let mut seeds: Vec<u32> = match &self.train_vertices {
            Some(t) => {
                for &v in t {
                    if v >= n {
                        return Err(PartitionError::InvalidParameter(format!(
                            "train vertex {v} out of range"
                        )));
                    }
                }
                t.clone()
            }
            None => {
                let mut ids: Vec<u32> = (0..n).collect();
                ids.shuffle(&mut rng);
                ids.truncate((n as usize / 10).max(1));
                ids
            }
        };
        seeds.shuffle(&mut rng);
        let mut is_train = vec![false; n as usize];
        for &v in &seeds {
            is_train[v as usize] = true;
        }

        const NONE: u32 = u32::MAX;
        let mut assignment = vec![NONE; n as usize];
        let mut part_vertices = vec![0u64; k as usize];
        let mut part_train = vec![0u64; k as usize];
        let max_block =
            ((self.max_block_factor * f64::from(n) / f64::from(k)).ceil() as usize).max(4);

        // Grow a BFS block around each seed and assign it to the
        // partition with the fewest training vertices (ties: fewest
        // vertices).
        let mut block: Vec<u32> = Vec::new();
        let mut frontier: Vec<u32> = Vec::new();
        let mut next_frontier: Vec<u32> = Vec::new();
        for &s in &seeds {
            if assignment[s as usize] != NONE {
                continue;
            }
            block.clear();
            frontier.clear();
            frontier.push(s);
            // Mark the seed claimed by temporarily assigning a sentinel.
            assignment[s as usize] = k; // claimed marker
            block.push(s);
            for _ in 0..self.hops {
                next_frontier.clear();
                for &v in &frontier {
                    for &w in neighbor_union(graph, v) {
                        if block.len() >= max_block {
                            break;
                        }
                        if assignment[w as usize] == NONE {
                            assignment[w as usize] = k;
                            block.push(w);
                            next_frontier.push(w);
                        }
                    }
                    if block.len() >= max_block {
                        break;
                    }
                }
                std::mem::swap(&mut frontier, &mut next_frontier);
                if block.len() >= max_block {
                    break;
                }
            }
            // Assign the block to the partition with the fewest training
            // vertices, counting the training vertices the block absorbed.
            let p = (0..k)
                .min_by_key(|&p| (part_train[p as usize], part_vertices[p as usize]))
                .expect("k >= 1");
            let block_train = block.iter().filter(|&&v| is_train[v as usize]).count() as u64;
            for &v in &block {
                assignment[v as usize] = p;
            }
            part_vertices[p as usize] += block.len() as u64;
            part_train[p as usize] += block_train;
        }

        // Remaining vertices: neighbour majority, falling back to the
        // least-loaded partition. Process in shuffled order to avoid id
        // bias.
        let mut rest: Vec<u32> =
            (0..n).filter(|&v| assignment[v as usize] == NONE).collect();
        rest.shuffle(&mut rng);
        let mut counts = vec![0u64; k as usize];
        for v in rest {
            counts.iter_mut().for_each(|c| *c = 0);
            for &w in neighbor_union(graph, v) {
                let p = assignment[w as usize];
                if p != NONE && p < k {
                    counts[p as usize] += 1;
                }
            }
            let best = (0..k)
                .max_by_key(|&p| (counts[p as usize], std::cmp::Reverse(part_vertices[p as usize])))
                .expect("k >= 1");
            let p = if counts[best as usize] > 0 {
                best
            } else {
                (0..k).min_by_key(|&p| part_vertices[p as usize]).expect("k >= 1")
            };
            assignment[v as usize] = p;
            part_vertices[p as usize] += 1;
        }
        VertexPartition::new(graph, k, assignment)
    }
}

/// Neighbours reachable for sampling purposes: in-neighbours for directed
/// graphs (message-flow direction) — but blocks should capture locality
/// in both directions, so we use the out-adjacency which for undirected
/// graphs is everything. For directed graphs the out-adjacency suffices
/// as a locality proxy.
fn neighbor_union(graph: &Graph, v: u32) -> &[u32] {
    graph.out_neighbors(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::testutil::{check_vertex_partitioner, skewed_graph};
    use crate::edge_cut::RandomVertexPartitioner;

    #[test]
    fn passes_common_checks() {
        check_vertex_partitioner(&ByteGnn::default());
    }

    #[test]
    fn balances_training_vertices() {
        let g = skewed_graph();
        let train: Vec<u32> = (0..g.num_vertices()).step_by(10).collect();
        let p = ByteGnn::with_train_vertices(train.clone())
            .partition_vertices(&g, 8, 1)
            .unwrap();
        let balance = p.subset_balance(&train);
        assert!(balance < 1.5, "train balance {balance}");
    }

    #[test]
    fn lower_cut_than_random() {
        let g = skewed_graph();
        let byte = ByteGnn::default().partition_vertices(&g, 8, 1).unwrap();
        let rnd = RandomVertexPartitioner.partition_vertices(&g, 8, 1).unwrap();
        assert!(
            byte.edge_cut_ratio() < rnd.edge_cut_ratio(),
            "ByteGNN {} vs Random {}",
            byte.edge_cut_ratio(),
            rnd.edge_cut_ratio()
        );
    }

    #[test]
    fn rejects_out_of_range_train_vertex() {
        let g = skewed_graph();
        let p = ByteGnn::with_train_vertices(vec![g.num_vertices() + 5]);
        assert!(p.partition_vertices(&g, 4, 0).is_err());
    }

    #[test]
    fn rejects_zero_hops() {
        let g = skewed_graph();
        let p = ByteGnn { hops: 0, ..ByteGnn::default() };
        assert!(p.partition_vertices(&g, 4, 0).is_err());
    }

    #[test]
    fn every_vertex_assigned() {
        let g = skewed_graph();
        let p = ByteGnn::default().partition_vertices(&g, 4, 2).unwrap();
        assert!(p.assignments().iter().all(|&a| a < 4));
    }
}
