//! LDG — Linear Deterministic Greedy (Stanton & Kliot, KDD 2012).
//!
//! Stateful streaming vertex partitioner: vertices arrive one at a time
//! (we stream in random order) and each is assigned to the partition
//! holding most of its already-placed neighbours, damped by a linear
//! capacity penalty `1 - |P_i| / C`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use gp_graph::Graph;

use crate::assignment::VertexPartition;
use crate::error::PartitionError;
use crate::traits::VertexPartitioner;

/// LDG streaming vertex partitioner.
#[derive(Debug, Clone, Copy)]
pub struct Ldg {
    /// Capacity slack: each partition holds at most `slack * n / k`
    /// vertices.
    pub slack: f64,
}

impl Default for Ldg {
    fn default() -> Self {
        Ldg { slack: 1.1 }
    }
}

impl Ldg {
    /// The streaming core: place the vertices of `order` one at a time,
    /// each on the partition holding most of its *already-placed*
    /// neighbours, damped by the linear capacity penalty.
    /// [`VertexPartitioner::partition_vertices`] drives this with a
    /// seed-shuffled order; the incremental partitioner
    /// (`crate::incremental`) drives the same rule with arrival order,
    /// which is what makes the incremental-vs-batch oracle exact.
    ///
    /// `order` must enumerate every vertex exactly once.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range `k`, `slack < 1`, or an `order` whose
    /// length does not match the graph.
    pub fn partition_in_order(
        &self,
        graph: &Graph,
        k: u32,
        order: &[u32],
    ) -> Result<VertexPartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        if self.slack < 1.0 {
            return Err(PartitionError::InvalidParameter(format!(
                "slack = {} must be >= 1",
                self.slack
            )));
        }
        let n = graph.num_vertices();
        if order.len() != n as usize {
            return Err(PartitionError::LengthMismatch {
                expected: n as usize,
                actual: order.len(),
            });
        }
        let capacity = ldg_capacity(self.slack, n, k);

        const NONE: u32 = u32::MAX;
        let mut assignments = vec![NONE; n as usize];
        let mut sizes = vec![0u64; k as usize];
        let mut neighbor_counts = vec![0u32; k as usize];
        for &v in order {
            // Count already-placed neighbours per partition. For directed
            // graphs both directions matter for the cut, so scan both.
            neighbor_counts.iter_mut().for_each(|c| *c = 0);
            for &w in graph.out_neighbors(v) {
                let p = assignments[w as usize];
                if p != NONE {
                    neighbor_counts[p as usize] += 1;
                }
            }
            if graph.is_directed() {
                for &w in graph.in_neighbors(v) {
                    let p = assignments[w as usize];
                    if p != NONE {
                        neighbor_counts[p as usize] += 1;
                    }
                }
            }
            let best = ldg_choose(k, capacity, &sizes, &neighbor_counts);
            assignments[v as usize] = best;
            sizes[best as usize] += 1;
        }
        VertexPartition::new(graph, k, assignments)
    }
}

impl VertexPartitioner for Ldg {
    fn name(&self) -> &'static str {
        "LDG"
    }

    fn partition_vertices(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<VertexPartition, PartitionError> {
        let mut order: Vec<u32> = (0..graph.num_vertices()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        self.partition_in_order(graph, k, &order)
    }
}

/// LDG partition capacity: `ceil(slack * n / k)`, at least one.
pub(crate) fn ldg_capacity(slack: f64, n: u32, k: u32) -> u64 {
    ((slack * f64::from(n) / f64::from(k)).ceil() as u64).max(1)
}

/// LDG's per-vertex selection rule over current sizes and placed
/// neighbour counts (shared with the incremental partitioner).
pub(crate) fn ldg_choose(k: u32, capacity: u64, sizes: &[u64], neighbor_counts: &[u32]) -> u32 {
    let mut best = 0u32;
    let mut best_score = f64::NEG_INFINITY;
    for p in 0..k {
        if sizes[p as usize] >= capacity {
            continue;
        }
        let weight = 1.0 - sizes[p as usize] as f64 / capacity as f64;
        let score = f64::from(neighbor_counts[p as usize]) * weight
            // Tiny tiebreaker keeps empty partitions attractive.
            + weight * 1e-6;
        if score > best_score {
            best_score = score;
            best = p;
        }
    }
    if best_score == f64::NEG_INFINITY {
        // All partitions at capacity (can only happen with slack
        // rounding); fall back to least loaded.
        best = (0..k).min_by_key(|&p| sizes[p as usize]).expect("k >= 1");
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::testutil::{check_vertex_partitioner, grid_graph, skewed_graph};
    use crate::edge_cut::RandomVertexPartitioner;

    #[test]
    fn passes_common_checks() {
        check_vertex_partitioner(&Ldg::default());
    }

    #[test]
    fn beats_random_cut() {
        let g = skewed_graph();
        let ldg = Ldg::default().partition_vertices(&g, 8, 1).unwrap();
        let rnd = RandomVertexPartitioner.partition_vertices(&g, 8, 1).unwrap();
        assert!(
            ldg.edge_cut_ratio() < rnd.edge_cut_ratio(),
            "LDG {} vs Random {}",
            ldg.edge_cut_ratio(),
            rnd.edge_cut_ratio()
        );
    }

    #[test]
    fn very_effective_on_grids() {
        let g = grid_graph();
        let ldg = Ldg::default().partition_vertices(&g, 4, 1).unwrap();
        let rnd = RandomVertexPartitioner.partition_vertices(&g, 4, 1).unwrap();
        assert!(ldg.edge_cut_ratio() < 0.8 * rnd.edge_cut_ratio());
    }

    #[test]
    fn respects_capacity() {
        let g = skewed_graph();
        let p = Ldg { slack: 1.05 }.partition_vertices(&g, 8, 1).unwrap();
        let cap = (1.05 * f64::from(g.num_vertices()) / 8.0).ceil() as u64 + 1;
        assert!(p.vertex_counts().iter().all(|&c| c <= cap));
    }

    #[test]
    fn rejects_bad_slack() {
        let g = skewed_graph();
        assert!(Ldg { slack: 0.9 }.partition_vertices(&g, 4, 0).is_err());
    }
}
