//! KaHIP-style multilevel partitioner (Sanders & Schulz, SEA 2013).
//!
//! Occupies the "highest quality, highest partitioning time" design
//! point of the paper's roster: same multilevel skeleton as
//! [`crate::edge_cut::Metis`] but with a tighter balance constraint
//! (ε = 3%), more aggressive refinement including balance-improving
//! zero-gain moves, and several independent repetitions keeping the best
//! cut — the multilevel analogue of KaHIP's "strong" configuration.

use gp_graph::Graph;

use crate::assignment::VertexPartition;
use crate::edge_cut::multilevel::{cut_weight, multilevel_kway, WeightedGraph};
use crate::error::PartitionError;
use crate::traits::VertexPartitioner;

/// KaHIP-style multilevel partitioner.
#[derive(Debug, Clone, Copy)]
pub struct Kahip {
    /// Allowed imbalance ε (vertex-count based).
    pub epsilon: f64,
    /// Refinement passes per level.
    pub refine_passes: u32,
    /// Independent multilevel repetitions; the best cut wins.
    pub repetitions: u32,
}

impl Default for Kahip {
    fn default() -> Self {
        Kahip { epsilon: 0.03, refine_passes: 8, repetitions: 3 }
    }
}

impl VertexPartitioner for Kahip {
    fn name(&self) -> &'static str {
        "KaHIP"
    }

    fn partition_vertices(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<VertexPartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        if self.repetitions == 0 {
            return Err(PartitionError::InvalidParameter("repetitions must be > 0".into()));
        }
        let wg = WeightedGraph::from_graph(graph);
        let mut best: Option<(u64, Vec<u32>)> = None;
        for rep in 0..self.repetitions {
            let rep_seed = seed.wrapping_add(u64::from(rep).wrapping_mul(0x51ed_2701));
            let labels = multilevel_kway(
                graph,
                k,
                rep_seed,
                self.epsilon,
                self.refine_passes,
                true,
            );
            let cut = cut_weight(&wg, &labels);
            if best.as_ref().is_none_or(|(c, _)| cut < *c) {
                best = Some((cut, labels));
            }
        }
        let (_, labels) = best.expect("repetitions > 0");
        VertexPartition::new(graph, k, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_cut::testutil::{check_vertex_partitioner, community_graph, grid_graph, skewed_graph};
    use crate::edge_cut::{Metis, RandomVertexPartitioner};

    #[test]
    fn passes_common_checks() {
        check_vertex_partitioner(&Kahip::default());
    }

    #[test]
    fn at_least_as_good_as_metis() {
        let g = skewed_graph();
        let kahip = Kahip::default().partition_vertices(&g, 8, 1).unwrap();
        let metis = Metis::default().partition_vertices(&g, 8, 1).unwrap();
        assert!(
            kahip.edge_cut_ratio() <= metis.edge_cut_ratio() + 0.02,
            "KaHIP {} vs METIS {}",
            kahip.edge_cut_ratio(),
            metis.edge_cut_ratio()
        );
    }

    #[test]
    fn near_perfect_on_grids() {
        let g = grid_graph();
        let p = Kahip::default().partition_vertices(&g, 4, 1).unwrap();
        assert!(p.edge_cut_ratio() < 0.1, "cut {}", p.edge_cut_ratio());
    }

    #[test]
    fn tight_balance() {
        let g = skewed_graph();
        let p = Kahip::default().partition_vertices(&g, 8, 1).unwrap();
        assert!(p.vertex_balance() < 1.3, "balance {}", p.vertex_balance());
    }

    #[test]
    fn much_better_than_random() {
        let g = community_graph();
        let kahip = Kahip::default().partition_vertices(&g, 8, 1).unwrap();
        let rnd = RandomVertexPartitioner.partition_vertices(&g, 8, 1).unwrap();
        assert!(kahip.edge_cut_ratio() < 0.7 * rnd.edge_cut_ratio());
    }

    #[test]
    fn rejects_zero_repetitions() {
        let g = grid_graph();
        assert!(Kahip { repetitions: 0, ..Kahip::default() }
            .partition_vertices(&g, 4, 0)
            .is_err());
    }
}
