//! Incremental (online) partitioning over dynamic-graph streams.
//!
//! The one-pass streaming partitioners of the roster — LDG, HDRF and
//! 2PS-L — are exactly the algorithms that can absorb churn without a
//! full re-run: their per-element decision rule only consults running
//! state. This module packages those rules as *incremental*
//! partitioners driven by a `gp_graph::stream` mutation stream:
//!
//! * **Insertions** are assigned online with the same decision rule as
//!   the one-shot partitioner. For HDRF and LDG the rule is literally
//!   shared code ([`hdrf_choose`](crate::vertex_cut::hdrf),
//!   [`ldg_choose`](crate::edge_cut::ldg)), so an insert-only stream
//!   fed in arrival order produces *bit-identical* assignments to the
//!   one-shot partitioner fed the same order (the incremental-vs-batch
//!   oracle). 2PS-L's phase 2 needs a global cluster ordering that an
//!   online algorithm cannot know, so its incremental variant freezes
//!   each cluster's partition at cluster birth; its oracle is
//!   batch-boundary independence — streaming the same edges in B
//!   batches or one batch yields identical assignments.
//! * **Deletions** never reassign surviving edges; they only update
//!   the replication/balance bookkeeping. The replica ledger counts
//!   live incident edges per `(vertex, partition)` and *drops* an
//!   entry when its count reaches zero — leaving a zero-count entry
//!   behind would keep phantom replicas in the ledger and skew the
//!   replication factor ever lower as the stream ages.
//! * Partitioners without an online rule fall back to a generic one
//!   (hashing for Random/DBH, replica-greedy least-loaded for the
//!   in-memory algorithms), so the full roster can ride the stream.
//!
//! [`RepartitionPolicy`] decides when drift has accumulated enough to
//! pay for a full re-partition (never / threshold-on-imbalance /
//! periodic); [`modeled_partition_seconds`] prices that re-run with a
//! deterministic cost model (simulated seconds — never wall clock, so
//! stream artifacts stay bit-identical across thread counts) that the
//! existing amortization machinery (`gp_core::amortize`) can consume.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use gp_graph::Graph;

use crate::assignment::{EdgePartition, VertexPartition};
use crate::edge_cut::ldg::{ldg_capacity, ldg_choose};
use crate::edge_cut::{ByteGnn, Kahip, Ldg, Metis, RandomVertexPartitioner, ReLdg, Spinner};
use crate::error::PartitionError;
use crate::traits::{EdgePartitioner, VertexPartitioner};
use crate::vertex_cut::dbh::mix64;
use crate::vertex_cut::hdrf::hdrf_choose;
use crate::vertex_cut::{Dbh, Greedy, Grid2d, Hdrf, Hep, RandomEdgePartitioner, TwoPsL};

const NONE: u32 = u32::MAX;

/// When to pay for a full re-partition of the current snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RepartitionPolicy {
    /// Never re-partition; quality decays for the whole stream.
    Never,
    /// Re-partition when the balance metric (edge balance for
    /// vertex-cut, vertex balance for edge-cut) exceeds `imbalance`.
    Threshold {
        /// Max-over-mean balance trigger (must be `>= 1`).
        imbalance: f64,
    },
    /// Re-partition every `every` batches.
    Periodic {
        /// Batch period (must be `>= 1`).
        every: u32,
    },
}

impl RepartitionPolicy {
    /// Validate the policy parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] for a threshold
    /// below 1 (the balance metric is `max / mean >= 1`, so it would
    /// fire on every batch) or a zero period.
    pub fn validate(&self) -> Result<(), PartitionError> {
        match *self {
            RepartitionPolicy::Never => Ok(()),
            RepartitionPolicy::Threshold { imbalance } => {
                if imbalance >= 1.0 && imbalance.is_finite() {
                    Ok(())
                } else {
                    Err(PartitionError::InvalidParameter(format!(
                        "repartition threshold {imbalance} must be finite and >= 1"
                    )))
                }
            }
            RepartitionPolicy::Periodic { every } => {
                if every >= 1 {
                    Ok(())
                } else {
                    Err(PartitionError::InvalidParameter(
                        "repartition period must be >= 1".into(),
                    ))
                }
            }
        }
    }

    /// Whether the policy fires after batch `batch` (0-based) given the
    /// post-batch balance metric.
    pub fn should_fire(&self, batch: u32, imbalance: f64) -> bool {
        match *self {
            RepartitionPolicy::Never => false,
            RepartitionPolicy::Threshold { imbalance: t } => imbalance > t,
            RepartitionPolicy::Periodic { every } => (batch + 1) % every == 0,
        }
    }

    /// Stable label for tables and artifact names
    /// (`never` / `threshold(1.2)` / `periodic(5)`).
    pub fn label(&self) -> String {
        match *self {
            RepartitionPolicy::Never => "never".into(),
            RepartitionPolicy::Threshold { imbalance } => format!("threshold({imbalance})"),
            RepartitionPolicy::Periodic { every } => format!("periodic({every})"),
        }
    }
}

/// Deterministic model of a full partitioning run's cost in *simulated*
/// seconds: a fixed setup cost plus a per-edge rate loosely calibrated
/// to the relative run times of Figure 15 (hash partitioners fastest,
/// multilevel in-memory algorithms slowest). Never wall clock — stream
/// artifacts must stay bit-identical across thread counts and reruns.
pub fn modeled_partition_seconds(name: &str, num_edges: u64) -> f64 {
    let per_edge = match name {
        "Random" => 0.02e-6,
        "DBH" | "Grid2D" => 0.03e-6,
        "LDG" => 0.05e-6,
        "Greedy" => 0.10e-6,
        "HDRF" => 0.12e-6,
        "ReLDG" => 0.15e-6,
        "2PS-L" => 0.18e-6,
        "HEP-10" => 0.45e-6,
        "Spinner" => 0.60e-6,
        "HEP-100" => 0.70e-6,
        "ByteGNN" => 0.80e-6,
        "METIS" => 2.5e-6,
        "KaHIP" => 4.0e-6,
        _ => 0.25e-6,
    };
    1e-3 + per_edge * num_edges as f64
}

/// Construct a *full* (one-shot) edge partitioner by name, for the
/// repartition policies. Mirrors the `gp_core` registry (which this
/// crate cannot depend on).
pub fn full_edge_partitioner(name: &str) -> Option<Box<dyn EdgePartitioner>> {
    Some(match name {
        "Random" => Box::new(RandomEdgePartitioner),
        "DBH" => Box::new(Dbh),
        "HDRF" => Box::new(Hdrf::default()),
        "2PS-L" => Box::new(TwoPsL::default()),
        "HEP-10" => Box::new(Hep::hep10()),
        "HEP-100" => Box::new(Hep::hep100()),
        "Greedy" => Box::new(Greedy),
        "Grid2D" => Box::new(Grid2d),
        _ => return None,
    })
}

/// Construct a full vertex partitioner by name (see
/// [`full_edge_partitioner`]); `train_vertices` parameterises ByteGNN.
pub fn full_vertex_partitioner(
    name: &str,
    train_vertices: Option<Vec<u32>>,
) -> Option<Box<dyn VertexPartitioner>> {
    Some(match name {
        "Random" => Box::new(RandomVertexPartitioner),
        "LDG" => Box::new(Ldg::default()),
        "Spinner" => Box::new(Spinner::default()),
        "METIS" => Box::new(Metis::default()),
        "ByteGNN" => match train_vertices {
            Some(t) => Box::new(ByteGnn::with_train_vertices(t)),
            None => Box::new(ByteGnn::default()),
        },
        "KaHIP" => Box::new(Kahip::default()),
        "ReLDG" => Box::new(ReLdg::default()),
        _ => return None,
    })
}

/// Per-partitioner online decision state for edge (vertex-cut) streams.
#[derive(Debug, Clone)]
enum EdgeCore {
    /// HDRF: shared selection rule + load extrema + tie-break rng.
    Hdrf { lambda: f64, max_load: u64, min_load: u64, rng: StdRng },
    /// Online 2PS-L: streaming clustering with birth-time cluster →
    /// partition mapping.
    TwoPs {
        alpha: f64,
        /// Cluster id per vertex (`NONE` = unclustered).
        cluster: Vec<u32>,
        /// Degree volume per cluster.
        volume: Vec<u64>,
        /// Degree volume mapped onto each partition.
        part_volume: Vec<u64>,
        /// Partition of each cluster, frozen at cluster birth.
        cluster_part: Vec<u32>,
        /// Edges observed so far (inserts; drives the dynamic caps).
        m_seen: u64,
    },
    /// Seeded hash of the edge key (Random).
    Hash,
    /// Hash of the lower-current-degree endpoint (DBH).
    Dbh,
    /// Generic fallback: prefer partitions already holding replicas of
    /// the endpoints, tie-break least-loaded (HEP and other in-memory
    /// algorithms have no online rule of their own).
    ReplicaGreedy,
}

/// Incremental edge (vertex-cut) partitioner: assigns inserted edges
/// online and keeps exact replication/balance bookkeeping under
/// deletions.
#[derive(Debug, Clone)]
pub struct IncrementalEdgePartitioner {
    name: String,
    k: u32,
    seed: u64,
    directed: bool,
    core: EdgeCore,
    /// Live degree per vertex (doubles as HDRF's partial degree).
    degrees: Vec<u32>,
    /// Replica bitmask per vertex, derived from `replica_counts`.
    replicas: Vec<u64>,
    /// Live incident-edge count per `(vertex, partition)`. Entries are
    /// *removed* when they reach zero (the deletion-underflow audit:
    /// zero-count residue would skew the replication factor).
    replica_counts: HashMap<(u32, u32), u32>,
    /// Live edge -> partition.
    assignment: HashMap<(u32, u32), u32>,
    /// Live edges per partition.
    load: Vec<u64>,
    /// Total live replicas (= `replica_counts.len()`, cached as u64).
    total_replicas: u64,
    /// Vertices with at least one live replica.
    covered: u64,
}

impl IncrementalEdgePartitioner {
    fn core_for(name: &str, seed: u64) -> EdgeCore {
        match name {
            "HDRF" => EdgeCore::Hdrf {
                lambda: Hdrf::default().lambda,
                max_load: 0,
                min_load: 0,
                rng: StdRng::seed_from_u64(seed),
            },
            "2PS-L" => EdgeCore::TwoPs {
                alpha: TwoPsL::default().alpha,
                cluster: Vec::new(),
                volume: Vec::new(),
                part_volume: Vec::new(),
                cluster_part: Vec::new(),
                m_seen: 0,
            },
            "Random" => EdgeCore::Hash,
            "DBH" => EdgeCore::Dbh,
            _ => EdgeCore::ReplicaGreedy,
        }
    }

    /// Fresh state over an empty graph (the oracle entry point; engine
    /// runs start from [`IncrementalEdgePartitioner::from_partition`]).
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range `k`.
    pub fn fresh(name: &str, k: u32, seed: u64, directed: bool) -> Result<Self, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        let mut core = Self::core_for(name, seed);
        if let EdgeCore::TwoPs { part_volume, .. } = &mut core {
            *part_volume = vec![0; k as usize];
        }
        Ok(IncrementalEdgePartitioner {
            name: name.to_string(),
            k,
            seed,
            directed,
            core,
            degrees: Vec::new(),
            replicas: Vec::new(),
            replica_counts: HashMap::new(),
            assignment: HashMap::new(),
            load: vec![0; k as usize],
            total_replicas: 0,
            covered: 0,
        })
    }

    /// Rebuild incremental state that *continues* an existing full
    /// partition of `snapshot` (the initial partition, or the one a
    /// repartition policy just adopted).
    ///
    /// # Errors
    ///
    /// Fails if the partition does not match the snapshot.
    pub fn from_partition(
        name: &str,
        snapshot: &Graph,
        partition: &EdgePartition,
        seed: u64,
    ) -> Result<Self, PartitionError> {
        if partition.assignments().len() != snapshot.num_edges() as usize {
            return Err(PartitionError::LengthMismatch {
                expected: snapshot.num_edges() as usize,
                actual: partition.assignments().len(),
            });
        }
        let k = partition.k();
        let mut inc = Self::fresh(name, k, seed, snapshot.is_directed())?;
        let n = snapshot.num_vertices() as usize;
        inc.degrees = (0..snapshot.num_vertices()).map(|v| snapshot.degree(v)).collect();
        inc.replicas = vec![0u64; n];
        for (i, (u, v)) in snapshot.edges().enumerate() {
            let p = partition.assignments()[i];
            inc.assignment.insert((u, v), p);
            inc.load[p as usize] += 1;
            for x in [u, v] {
                let c = inc.replica_counts.entry((x, p)).or_insert(0);
                if *c == 0 {
                    if inc.replicas[x as usize] == 0 {
                        inc.covered += 1;
                    }
                    inc.replicas[x as usize] |= 1u64 << p;
                    inc.total_replicas += 1;
                }
                *c += 1;
            }
        }
        match &mut inc.core {
            EdgeCore::Hdrf { max_load, min_load, .. } => {
                *max_load = inc.load.iter().copied().max().unwrap_or(0);
                *min_load = inc.load.iter().copied().min().unwrap_or(0);
            }
            EdgeCore::TwoPs {
                cluster, volume, part_volume, cluster_part, m_seen, ..
            } => {
                // Re-drive phase-1 clustering over the snapshot (cheap,
                // deterministic), then derive the cluster → partition
                // map from the adopted assignments by majority vote.
                cluster.resize(n, NONE);
                let mut degs = vec![0u32; n];
                let mut seen = 0u64;
                for (u, v) in snapshot.edges() {
                    let (ui, vi) = (u as usize, v as usize);
                    degs[ui] += 1;
                    degs[vi] += 1;
                    seen += 1;
                    let cap = (2 * seen).div_ceil(u64::from(k)).max(2);
                    cluster_phase1(
                        cluster,
                        volume,
                        cap,
                        ui,
                        vi,
                        u64::from(degs[ui]),
                        u64::from(degs[vi]),
                    );
                }
                *m_seen = seen;
                let mut votes: HashMap<(u32, u32), u64> = HashMap::new();
                for (i, (u, v)) in snapshot.edges().enumerate() {
                    let p = partition.assignments()[i];
                    *votes.entry((cluster[u as usize], p)).or_insert(0) += 1;
                    if cluster[v as usize] != cluster[u as usize] {
                        *votes.entry((cluster[v as usize], p)).or_insert(0) += 1;
                    }
                }
                *cluster_part = (0..volume.len() as u32)
                    .map(|c| {
                        (0..k)
                            .max_by_key(|&p| (votes.get(&(c, p)).copied().unwrap_or(0), u32::MAX - p))
                            .expect("k >= 1")
                    })
                    .collect();
                *part_volume = vec![0u64; k as usize];
                for (c, &vol) in volume.iter().enumerate() {
                    part_volume[cluster_part[c] as usize] += vol;
                }
            }
            _ => {}
        }
        Ok(inc)
    }

    /// Partitioner name this state streams for.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of partitions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Live edge count.
    pub fn num_live_edges(&self) -> u64 {
        self.assignment.len() as u64
    }

    /// Live replica ledger size (total replicas across vertices).
    pub fn total_replicas(&self) -> u64 {
        self.total_replicas
    }

    /// Replication factor from the live ledger (cross-checked against
    /// the materialised [`EdgePartition`] in tests).
    pub fn live_replication_factor(&self) -> f64 {
        if self.covered == 0 {
            0.0
        } else {
            self.total_replicas as f64 / self.covered as f64
        }
    }

    /// Edge balance `max / mean` over live per-partition loads.
    pub fn live_edge_balance(&self) -> f64 {
        let sum: u64 = self.load.iter().sum();
        if sum == 0 {
            return 0.0;
        }
        let max = *self.load.iter().max().expect("k >= 1") as f64;
        max / (sum as f64 / self.load.len() as f64)
    }

    fn norm(&self, u: u32, v: u32) -> (u32, u32) {
        if self.directed || u <= v {
            (u, v)
        } else {
            (v, u)
        }
    }

    fn ensure_vertex(&mut self, v: u32) {
        let need = v as usize + 1;
        if self.degrees.len() < need {
            self.degrees.resize(need, 0);
            self.replicas.resize(need, 0);
            if let EdgeCore::TwoPs { cluster, .. } = &mut self.core {
                cluster.resize(need, NONE);
            }
        }
    }

    fn add_replica(&mut self, v: u32, p: u32) {
        let c = self.replica_counts.entry((v, p)).or_insert(0);
        if *c == 0 {
            if self.replicas[v as usize] == 0 {
                self.covered += 1;
            }
            self.replicas[v as usize] |= 1u64 << p;
            self.total_replicas += 1;
        }
        *c += 1;
    }

    fn drop_replica(&mut self, v: u32, p: u32) {
        let c = self.replica_counts.get_mut(&(v, p)).expect("live edge had a ledger entry");
        *c -= 1;
        if *c == 0 {
            // The audit fix: remove the entry outright. A zero-count
            // residue would keep the (vertex, partition) pair looking
            // replicated forever and skew RF/balance bookkeeping.
            self.replica_counts.remove(&(v, p));
            self.replicas[v as usize] &= !(1u64 << p);
            self.total_replicas -= 1;
            if self.replicas[v as usize] == 0 {
                self.covered -= 1;
            }
        }
    }

    /// Assign one inserted edge online; returns the chosen partition.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] for a self-loop or
    /// an already-live edge (stream plans never produce either).
    pub fn insert_edge(&mut self, u: u32, v: u32) -> Result<u32, PartitionError> {
        if u == v {
            return Err(PartitionError::InvalidParameter(format!(
                "incremental: self-loop ({u}, {v})"
            )));
        }
        let e = self.norm(u, v);
        if self.assignment.contains_key(&e) {
            return Err(PartitionError::InvalidParameter(format!(
                "incremental: edge ({}, {}) is already live",
                e.0, e.1
            )));
        }
        self.ensure_vertex(e.0.max(e.1));
        let (ui, vi) = (e.0 as usize, e.1 as usize);
        self.degrees[ui] += 1;
        self.degrees[vi] += 1;
        let k = self.k;
        let p = match &mut self.core {
            EdgeCore::Hdrf { lambda, max_load, min_load, rng } => hdrf_choose(
                k,
                *lambda,
                self.degrees[ui],
                self.degrees[vi],
                self.replicas[ui],
                self.replicas[vi],
                &self.load,
                *max_load,
                *min_load,
                rng,
            ),
            EdgeCore::TwoPs { alpha, cluster, volume, part_volume, cluster_part, m_seen } => {
                *m_seen += 1;
                let volume_cap = (2 * *m_seen).div_ceil(u64::from(k)).max(2);
                let du = u64::from(self.degrees[ui]);
                let dv = u64::from(self.degrees[vi]);
                let grew = cluster_phase1(cluster, volume, volume_cap, ui, vi, du, dv);
                sync_cluster_parts(volume, part_volume, cluster_part, grew, k);
                // Phase-2 rule, identical in shape to the one-shot: same
                // cluster-partition -> go there; otherwise prefer an
                // existing replica, then the less-loaded candidate;
                // spill past the dynamic edge-balance cap.
                let pu = cluster_part[cluster[ui] as usize];
                let pv = cluster_part[cluster[vi] as usize];
                let mut p = if pu == pv {
                    pu
                } else {
                    let ru = self.replicas[ui] | self.replicas[vi];
                    let u_has = ru & (1u64 << pu) != 0;
                    let v_has = ru & (1u64 << pv) != 0;
                    match (u_has, v_has) {
                        (true, false) => pu,
                        (false, true) => pv,
                        _ => {
                            if self.load[pu as usize] <= self.load[pv as usize] {
                                pu
                            } else {
                                pv
                            }
                        }
                    }
                };
                let cap = ((*alpha * *m_seen as f64) / f64::from(k)).ceil() as u64;
                if self.load[p as usize] >= cap {
                    p = (0..k).min_by_key(|&q| self.load[q as usize]).expect("k >= 1");
                }
                p
            }
            EdgeCore::Hash => {
                let h = mix64(mix64(u64::from(e.0) ^ self.seed) ^ u64::from(e.1));
                (h % u64::from(k)) as u32
            }
            EdgeCore::Dbh => {
                let (du, dv) = (self.degrees[ui], self.degrees[vi]);
                let key = if du < dv || (du == dv && e.0 <= e.1) { e.0 } else { e.1 };
                (mix64(u64::from(key) ^ self.seed) % u64::from(k)) as u32
            }
            EdgeCore::ReplicaGreedy => {
                let mut best = 0u32;
                let mut best_key = (0u32, u64::MAX);
                for p in 0..k {
                    let bit = 1u64 << p;
                    let hits = u32::from(self.replicas[ui] & bit != 0)
                        + u32::from(self.replicas[vi] & bit != 0);
                    // Most endpoint replicas first, then least load;
                    // lowest index wins remaining ties.
                    if hits > best_key.0
                        || (hits == best_key.0 && self.load[p as usize] < best_key.1)
                    {
                        best_key = (hits, self.load[p as usize]);
                        best = p;
                    }
                }
                best
            }
        };
        self.assignment.insert(e, p);
        self.load[p as usize] += 1;
        self.add_replica(e.0, p);
        self.add_replica(e.1, p);
        if let EdgeCore::Hdrf { max_load, min_load, .. } = &mut self.core {
            *max_load = (*max_load).max(self.load[p as usize]);
            *min_load = self.load.iter().copied().min().expect("k >= 1");
        }
        Ok(p)
    }

    /// Remove a live edge: bookkeeping only, no reassignment. Returns
    /// the partition the edge was on.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] if the edge is not
    /// live.
    pub fn delete_edge(&mut self, u: u32, v: u32) -> Result<u32, PartitionError> {
        let e = self.norm(u, v);
        let p = self.assignment.remove(&e).ok_or_else(|| {
            PartitionError::InvalidParameter(format!(
                "incremental: deleting non-live edge ({}, {})",
                e.0, e.1
            ))
        })?;
        self.load[p as usize] -= 1;
        self.degrees[e.0 as usize] -= 1;
        self.degrees[e.1 as usize] -= 1;
        self.drop_replica(e.0, p);
        self.drop_replica(e.1, p);
        if let EdgeCore::Hdrf { max_load, min_load, .. } = &mut self.core {
            *max_load = self.load.iter().copied().max().expect("k >= 1");
            *min_load = self.load.iter().copied().min().expect("k >= 1");
        }
        Ok(p)
    }

    /// Materialise the tracked assignments against a snapshot of the
    /// live graph (edges in any order; the tracked map is keyed by
    /// endpoint pair).
    ///
    /// # Errors
    ///
    /// Fails if the snapshot's edges do not exactly match the tracked
    /// live set.
    pub fn materialize(&self, snapshot: &Graph) -> Result<EdgePartition, PartitionError> {
        if snapshot.num_edges() as usize != self.assignment.len() {
            return Err(PartitionError::LengthMismatch {
                expected: self.assignment.len(),
                actual: snapshot.num_edges() as usize,
            });
        }
        let mut assignments = Vec::with_capacity(self.assignment.len());
        for (u, v) in snapshot.edges() {
            match self.assignment.get(&self.norm(u, v)) {
                Some(&p) => assignments.push(p),
                None => {
                    return Err(PartitionError::InvalidParameter(format!(
                        "incremental: snapshot edge ({u}, {v}) is not tracked"
                    )))
                }
            }
        }
        EdgePartition::new(snapshot, self.k, assignments)
    }
}

/// One-shot 2PS-L phase-1 clustering update for a single edge, shared
/// between the online core and state reconstruction. Returns the id of
/// a newly born cluster, if any.
fn cluster_phase1(
    cluster: &mut Vec<u32>,
    volume: &mut Vec<u64>,
    volume_cap: u64,
    ui: usize,
    vi: usize,
    du: u64,
    dv: u64,
) -> Option<u32> {
    match (cluster[ui], cluster[vi]) {
        (NONE, NONE) => {
            let id = volume.len() as u32;
            volume.push(du + dv);
            cluster[ui] = id;
            cluster[vi] = id;
            Some(id)
        }
        (cu, NONE) => {
            if volume[cu as usize] + dv <= volume_cap {
                cluster[vi] = cu;
                volume[cu as usize] += dv;
                None
            } else {
                let id = volume.len() as u32;
                volume.push(dv);
                cluster[vi] = id;
                Some(id)
            }
        }
        (NONE, cv) => {
            if volume[cv as usize] + du <= volume_cap {
                cluster[ui] = cv;
                volume[cv as usize] += du;
                None
            } else {
                let id = volume.len() as u32;
                volume.push(du);
                cluster[ui] = id;
                Some(id)
            }
        }
        (cu, cv) if cu != cv => {
            // 2PS-L's O(1) "rescue" step: move the endpoint sitting in
            // the smaller cluster into the larger one if it has room.
            let (small_v, small_c, big_c, dw) = if volume[cu as usize] <= volume[cv as usize] {
                (ui, cu, cv, du)
            } else {
                (vi, cv, cu, dv)
            };
            if volume[big_c as usize] + dw <= volume_cap {
                cluster[small_v] = big_c;
                volume[big_c as usize] += dw;
                volume[small_c as usize] = volume[small_c as usize].saturating_sub(dw);
            }
            None
        }
        _ => None,
    }
}

/// Keep the online cluster → partition map in sync after a phase-1
/// update: a newborn cluster is pinned to the least-volume partition;
/// volume growth of existing clusters is re-tallied from scratch (k and
/// cluster counts are small at the scales this harness runs).
fn sync_cluster_parts(
    volume: &[u64],
    part_volume: &mut [u64],
    cluster_part: &mut Vec<u32>,
    born: Option<u32>,
    k: u32,
) {
    if let Some(id) = born {
        debug_assert_eq!(id as usize, cluster_part.len());
        let p = (0..k).min_by_key(|&p| part_volume[p as usize]).expect("k >= 1");
        cluster_part.push(p);
    }
    part_volume.iter_mut().for_each(|v| *v = 0);
    for (c, &vol) in volume.iter().enumerate() {
        part_volume[cluster_part[c] as usize] += vol;
    }
}

/// Per-partitioner online decision state for vertex (edge-cut) streams.
#[derive(Debug, Clone)]
enum VertexCore {
    /// LDG: shared selection rule with a provisioned capacity.
    Ldg { slack: f64, capacity: u64 },
    /// Seeded hash of the vertex id (Random).
    Hash,
    /// Generic fallback: most placed neighbours, tie-break least size
    /// (the in-memory algorithms have no online rule of their own).
    PlacedNeighbors,
}

/// Incremental vertex (edge-cut) partitioner: places arriving vertices
/// online; edge insertions/deletions between placed vertices never
/// reassign anyone (the cut metrics are recomputed at materialisation).
#[derive(Debug, Clone)]
pub struct IncrementalVertexPartitioner {
    name: String,
    k: u32,
    seed: u64,
    core: VertexCore,
    /// Partition per vertex (`NONE` = not yet placed).
    assignments: Vec<u32>,
    /// Vertices per partition.
    sizes: Vec<u64>,
}

impl IncrementalVertexPartitioner {
    /// Fresh state over an empty graph (the oracle entry point; engine
    /// runs start from
    /// [`IncrementalVertexPartitioner::from_partition`]). LDG's
    /// capacity starts at the minimum — provision it with
    /// [`IncrementalVertexPartitioner::provision_capacity`].
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range `k`.
    pub fn fresh(name: &str, k: u32, seed: u64) -> Result<Self, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        let core = match name {
            "LDG" => VertexCore::Ldg { slack: Ldg::default().slack, capacity: 1 },
            "Random" => VertexCore::Hash,
            _ => VertexCore::PlacedNeighbors,
        };
        Ok(IncrementalVertexPartitioner {
            name: name.to_string(),
            k,
            seed,
            core,
            assignments: Vec::new(),
            sizes: vec![0; k as usize],
        })
    }

    /// Provision LDG's partition capacity for an expected final vertex
    /// count (`ceil(slack * n / k)`), exactly what the one-shot LDG
    /// computes upfront. A no-op for the other cores.
    pub fn provision_capacity(&mut self, expected_vertices: u32) {
        if let VertexCore::Ldg { slack, capacity } = &mut self.core {
            *capacity = ldg_capacity(*slack, expected_vertices, self.k);
        }
    }

    /// Rebuild incremental state continuing an existing full partition
    /// of `snapshot`. LDG's capacity is provisioned from the snapshot's
    /// vertex count.
    ///
    /// # Errors
    ///
    /// Fails if the partition does not match the snapshot.
    pub fn from_partition(
        name: &str,
        snapshot: &Graph,
        partition: &VertexPartition,
        seed: u64,
    ) -> Result<Self, PartitionError> {
        if partition.assignments().len() != snapshot.num_vertices() as usize {
            return Err(PartitionError::LengthMismatch {
                expected: snapshot.num_vertices() as usize,
                actual: partition.assignments().len(),
            });
        }
        let mut inc = Self::fresh(name, partition.k(), seed)?;
        inc.assignments = partition.assignments().to_vec();
        inc.sizes = partition.vertex_counts().to_vec();
        inc.provision_capacity(snapshot.num_vertices());
        Ok(inc)
    }

    /// Partitioner name this state streams for.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of partitions.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Partition of vertex `v`, or `None` if not yet placed (or never
    /// seen).
    pub fn partition_of(&self, v: u32) -> Option<u32> {
        match self.assignments.get(v as usize) {
            Some(&p) if p != NONE => Some(p),
            _ => None,
        }
    }

    /// Place an arriving vertex given the partitions of its
    /// already-placed neighbours (one entry per neighbour, duplicates
    /// meaningful); returns the chosen partition.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::InvalidParameter`] if `v` is already
    /// placed or a neighbour partition is out of range.
    pub fn place_vertex(
        &mut self,
        v: u32,
        neighbor_partitions: &[u32],
    ) -> Result<u32, PartitionError> {
        let need = v as usize + 1;
        if self.assignments.len() < need {
            self.assignments.resize(need, NONE);
        }
        if self.assignments[v as usize] != NONE {
            return Err(PartitionError::InvalidParameter(format!(
                "incremental: vertex {v} is already placed"
            )));
        }
        let mut counts = vec![0u32; self.k as usize];
        for &p in neighbor_partitions {
            if p >= self.k {
                return Err(PartitionError::AssignmentOutOfRange { partition: p, k: self.k });
            }
            counts[p as usize] += 1;
        }
        let p = match &self.core {
            VertexCore::Ldg { capacity, .. } => ldg_choose(self.k, *capacity, &self.sizes, &counts),
            VertexCore::Hash => (mix64(u64::from(v) ^ self.seed) % u64::from(self.k)) as u32,
            VertexCore::PlacedNeighbors => {
                let mut best = 0u32;
                let mut best_key = (0u32, u64::MAX);
                for p in 0..self.k {
                    let c = counts[p as usize];
                    if c > best_key.0 || (c == best_key.0 && self.sizes[p as usize] < best_key.1) {
                        best_key = (c, self.sizes[p as usize]);
                        best = p;
                    }
                }
                best
            }
        };
        self.assignments[v as usize] = p;
        self.sizes[p as usize] += 1;
        Ok(p)
    }

    /// Materialise the tracked placements against a snapshot.
    ///
    /// # Errors
    ///
    /// Fails if the snapshot has vertices this state never placed.
    pub fn materialize(&self, snapshot: &Graph) -> Result<VertexPartition, PartitionError> {
        if self.assignments.len() != snapshot.num_vertices() as usize
            || self.assignments.iter().any(|&p| p == NONE)
        {
            return Err(PartitionError::InvalidParameter(
                "incremental: snapshot has unplaced vertices".into(),
            ));
        }
        VertexPartition::new(snapshot, self.k, self.assignments.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::{DatasetId, GraphScale, MutationBatch, StreamGraph, StreamPlan, StreamSpec};

    fn base() -> Graph {
        DatasetId::OR.generate(GraphScale::Tiny).unwrap()
    }

    /// Drive an incremental edge partitioner from an empty base over an
    /// insert-only stream; return it plus the final snapshot.
    fn drive_edge(name: &str, k: u32, seed: u64, spec: &StreamSpec) -> (IncrementalEdgePartitioner, Graph) {
        let empty = Graph::from_edges(0, &[], false).unwrap();
        let plan = StreamPlan::generate(&empty, spec).unwrap();
        let mut sg = StreamGraph::new(&empty);
        let mut inc = IncrementalEdgePartitioner::fresh(name, k, seed, false).unwrap();
        for batch in plan.batches() {
            sg.apply(batch).unwrap();
            for &(u, v) in &batch.inserts {
                inc.insert_edge(u, v).unwrap();
            }
            for &(u, v) in &batch.deletes {
                inc.delete_edge(u, v).unwrap();
            }
        }
        let snap = sg.snapshot().unwrap();
        (inc, snap)
    }

    fn insert_only_spec(batches: u32, seed: u64) -> StreamSpec {
        StreamSpec {
            batches,
            inserts_per_batch: 12,
            deletes_per_batch: 0,
            arrivals_per_batch: 3,
            edges_per_arrival: 3,
            seed,
        }
    }

    #[test]
    fn hdrf_incremental_equals_one_shot_on_insert_only_stream() {
        let (inc, snap) = drive_edge("HDRF", 4, 9, &insert_only_spec(12, 21));
        let one_shot = Hdrf::default().partition_edges(&snap, 4, 9).unwrap();
        let materialized = inc.materialize(&snap).unwrap();
        assert_eq!(materialized.assignments(), one_shot.assignments());
        assert_eq!(materialized, one_shot);
    }

    #[test]
    fn twops_incremental_is_batch_boundary_independent() {
        // The same insert stream delivered in 12 batches vs replayed as
        // one giant batch must assign identically (the online core's
        // decisions depend only on the edge sequence).
        let spec = insert_only_spec(12, 33);
        let (inc, snap) = drive_edge("2PS-L", 4, 5, &spec);
        let empty = Graph::from_edges(0, &[], false).unwrap();
        let plan = StreamPlan::generate(&empty, &spec).unwrap();
        let mut one = IncrementalEdgePartitioner::fresh("2PS-L", 4, 5, false).unwrap();
        for batch in plan.batches() {
            for &(u, v) in &batch.inserts {
                one.insert_edge(u, v).unwrap();
            }
        }
        assert_eq!(
            inc.materialize(&snap).unwrap().assignments(),
            one.materialize(&snap).unwrap().assignments()
        );
    }

    #[test]
    fn ldg_incremental_equals_one_shot_driven_in_arrival_order() {
        // Arrival-only stream: every edge wires a fresh vertex to
        // already-placed ones, so the incremental placement sees
        // exactly the neighbours the one-shot (fed arrival order) sees.
        let empty = Graph::from_edges(0, &[], false).unwrap();
        let spec = StreamSpec {
            batches: 20,
            inserts_per_batch: 0,
            deletes_per_batch: 0,
            arrivals_per_batch: 4,
            edges_per_arrival: 3,
            seed: 77,
        };
        let plan = StreamPlan::generate(&empty, &spec).unwrap();
        let mut sg = StreamGraph::new(&empty);
        let mut inc = IncrementalVertexPartitioner::fresh("LDG", 4, 1).unwrap();
        inc.provision_capacity(80);
        for batch in plan.batches() {
            sg.apply(batch).unwrap();
            let first_new = sg.num_vertices() - batch.new_vertices;
            for v in first_new..sg.num_vertices() {
                let neighbors: Vec<u32> = batch
                    .inserts
                    .iter()
                    .filter_map(|&(a, b)| {
                        let w = if a == v { b } else if b == v { a } else { return None };
                        inc.partition_of(w)
                    })
                    .collect();
                inc.place_vertex(v, &neighbors).unwrap();
            }
        }
        let snap = sg.snapshot().unwrap();
        assert_eq!(snap.num_vertices(), 80);
        let order: Vec<u32> = (0..80).collect();
        let one_shot = Ldg::default().partition_in_order(&snap, 4, &order).unwrap();
        let materialized = inc.materialize(&snap).unwrap();
        assert_eq!(materialized.assignments(), one_shot.assignments());
    }

    #[test]
    fn ldg_one_shot_unchanged_by_refactor() {
        // partition_vertices == shuffle + partition_in_order, and the
        // shared ldg_choose preserved the original selection rule.
        let g = base();
        let p = Ldg::default().partition_vertices(&g, 4, 1).unwrap();
        let q = Ldg::default().partition_vertices(&g, 4, 1).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn deletion_bookkeeping_matches_materialized_partition() {
        let g = base();
        let full = Hdrf::default().partition_edges(&g, 4, 1).unwrap();
        let mut inc = IncrementalEdgePartitioner::from_partition("HDRF", &g, &full, 1).unwrap();
        let mut sg = StreamGraph::new(&g);
        let spec = StreamSpec {
            batches: 10,
            inserts_per_batch: 8,
            deletes_per_batch: 12,
            arrivals_per_batch: 2,
            edges_per_arrival: 2,
            seed: 13,
        };
        let plan = StreamPlan::generate(&g, &spec).unwrap();
        for batch in plan.batches() {
            sg.apply(batch).unwrap();
            for &(u, v) in &batch.inserts {
                inc.insert_edge(u, v).unwrap();
            }
            for &(u, v) in &batch.deletes {
                inc.delete_edge(u, v).unwrap();
            }
            let snap = sg.snapshot().unwrap();
            let part = inc.materialize(&snap).unwrap();
            // The live ledger and the eagerly-recomputed partition must
            // agree exactly — any zero-count residue would break this.
            assert_eq!(inc.live_replication_factor(), part.replication_factor());
            assert_eq!(inc.total_replicas(), part.total_replicas());
            assert_eq!(inc.live_edge_balance(), part.edge_balance());
            assert_eq!(inc.num_live_edges(), u64::from(snap.num_edges()));
        }
    }

    #[test]
    fn removing_last_replica_drops_ledger_entry() {
        // Path 0-1-2 on one partition; deleting (0,1) must remove
        // vertex 0 from the ledger entirely (not leave a zero count).
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], false).unwrap();
        let full = EdgePartition::new(&g, 2, vec![0, 0]).unwrap();
        let mut inc = IncrementalEdgePartitioner::from_partition("HDRF", &g, &full, 1).unwrap();
        assert_eq!(inc.total_replicas(), 3);
        inc.delete_edge(0, 1).unwrap();
        assert_eq!(inc.total_replicas(), 2, "vertex 0's replica entry dropped");
        assert!(
            !inc.replica_counts.contains_key(&(0, 0)),
            "no zero-count residue for (vertex 0, partition 0)"
        );
        // RF over the survivors: vertices 1 and 2, one replica each.
        assert_eq!(inc.live_replication_factor(), 1.0);
        // And the reverse round-trip: reinsert restores the ledger.
        inc.insert_edge(0, 1).unwrap();
        assert_eq!(inc.total_replicas(), 3);
    }

    #[test]
    fn all_roster_names_stream_without_reassignment_errors() {
        let g = base();
        let spec = StreamSpec::paper_default(6, 2);
        let plan = StreamPlan::generate(&g, &spec).unwrap();
        for name in ["Random", "DBH", "HDRF", "2PS-L", "HEP-10", "HEP-100"] {
            let full = full_edge_partitioner(name)
                .unwrap()
                .partition_edges(&g, 4, 1)
                .unwrap();
            let mut inc =
                IncrementalEdgePartitioner::from_partition(name, &g, &full, 1).unwrap();
            let mut sg = StreamGraph::new(&g);
            for batch in plan.batches() {
                sg.apply(batch).unwrap();
                for &(u, v) in &batch.inserts {
                    inc.insert_edge(u, v).unwrap();
                }
                for &(u, v) in &batch.deletes {
                    inc.delete_edge(u, v).unwrap();
                }
            }
            let snap = sg.snapshot().unwrap();
            let part = inc.materialize(&snap).unwrap();
            assert_eq!(part.k(), 4, "{name}");
            assert_eq!(inc.live_replication_factor(), part.replication_factor(), "{name}");
        }
    }

    #[test]
    fn vertex_roster_streams_and_materializes() {
        let g = base();
        let spec = StreamSpec::paper_default(6, 2);
        let plan = StreamPlan::generate(&g, &spec).unwrap();
        for name in ["Random", "LDG", "Spinner", "METIS", "ByteGNN", "KaHIP"] {
            let full = full_vertex_partitioner(name, Some(vec![0, 1, 2]))
                .unwrap()
                .partition_vertices(&g, 4, 1)
                .unwrap();
            let mut inc =
                IncrementalVertexPartitioner::from_partition(name, &g, &full, 1).unwrap();
            let mut sg = StreamGraph::new(&g);
            for batch in plan.batches() {
                sg.apply(batch).unwrap();
                let first_new = sg.num_vertices() - batch.new_vertices;
                for v in first_new..sg.num_vertices() {
                    let neighbors: Vec<u32> = batch
                        .inserts
                        .iter()
                        .filter_map(|&(a, b)| {
                            let w =
                                if a == v { b } else if b == v { a } else { return None };
                            inc.partition_of(w)
                        })
                        .collect();
                    inc.place_vertex(v, &neighbors).unwrap();
                }
            }
            let snap = sg.snapshot().unwrap();
            let part = inc.materialize(&snap).unwrap();
            assert_eq!(part.k(), 4, "{name}");
            assert_eq!(part.assignments().len(), snap.num_vertices() as usize, "{name}");
        }
    }

    #[test]
    fn from_partition_continues_consistently() {
        // Simulate a policy-triggered repartition mid-stream: rebuild
        // state from the fresh partition, keep streaming, and verify
        // the ledger still matches the materialised truth.
        let g = base();
        let spec = StreamSpec::paper_default(4, 5);
        let plan = StreamPlan::generate(&g, &spec).unwrap();
        let mut sg = StreamGraph::new(&g);
        let full = TwoPsL::default().partition_edges(&g, 4, 7).unwrap();
        let mut inc = IncrementalEdgePartitioner::from_partition("2PS-L", &g, &full, 7).unwrap();
        for (i, batch) in plan.batches().iter().enumerate() {
            sg.apply(batch).unwrap();
            for &(u, v) in &batch.inserts {
                inc.insert_edge(u, v).unwrap();
            }
            for &(u, v) in &batch.deletes {
                inc.delete_edge(u, v).unwrap();
            }
            if i == 1 {
                let snap = sg.snapshot().unwrap();
                let fresh = TwoPsL::default().partition_edges(&snap, 4, 7).unwrap();
                inc = IncrementalEdgePartitioner::from_partition("2PS-L", &snap, &fresh, 7)
                    .unwrap();
            }
        }
        let snap = sg.snapshot().unwrap();
        let part = inc.materialize(&snap).unwrap();
        assert_eq!(inc.live_replication_factor(), part.replication_factor());
    }

    #[test]
    fn policies_validate_and_fire() {
        assert!(RepartitionPolicy::Never.validate().is_ok());
        assert!(RepartitionPolicy::Threshold { imbalance: 1.2 }.validate().is_ok());
        assert!(RepartitionPolicy::Threshold { imbalance: 0.5 }.validate().is_err());
        assert!(RepartitionPolicy::Threshold { imbalance: f64::NAN }.validate().is_err());
        assert!(RepartitionPolicy::Periodic { every: 1 }.validate().is_ok());
        assert!(RepartitionPolicy::Periodic { every: 0 }.validate().is_err());

        assert!(!RepartitionPolicy::Never.should_fire(9, 99.0));
        assert!(RepartitionPolicy::Threshold { imbalance: 1.2 }.should_fire(0, 1.3));
        assert!(!RepartitionPolicy::Threshold { imbalance: 1.2 }.should_fire(0, 1.1));
        let periodic = RepartitionPolicy::Periodic { every: 3 };
        let fires: Vec<bool> = (0..6).map(|b| periodic.should_fire(b, 1.0)).collect();
        assert_eq!(fires, vec![false, false, true, false, false, true]);

        assert_eq!(RepartitionPolicy::Never.label(), "never");
        assert_eq!(RepartitionPolicy::Threshold { imbalance: 1.2 }.label(), "threshold(1.2)");
        assert_eq!(RepartitionPolicy::Periodic { every: 5 }.label(), "periodic(5)");
    }

    #[test]
    fn modeled_seconds_order_matches_figure_15() {
        let m = 1_000_000;
        let s = |n: &str| modeled_partition_seconds(n, m);
        assert!(s("Random") < s("HDRF"));
        assert!(s("HDRF") < s("HEP-100"));
        assert!(s("HEP-100") < s("METIS"));
        assert!(s("METIS") < s("KaHIP"));
        for n in ["Random", "LDG", "unknown"] {
            assert!(s(n) > 0.0 && s(n).is_finite());
        }
        // Pure function: equal inputs, equal outputs (artifacts depend
        // on it being bit-stable).
        assert_eq!(s("METIS"), s("METIS"));
    }

    #[test]
    fn incremental_rejects_invalid_operations() {
        let mut inc = IncrementalEdgePartitioner::fresh("HDRF", 4, 1, false).unwrap();
        assert!(IncrementalEdgePartitioner::fresh("HDRF", 0, 1, false).is_err());
        assert!(inc.insert_edge(3, 3).is_err(), "self-loop");
        inc.insert_edge(0, 1).unwrap();
        assert!(inc.insert_edge(1, 0).is_err(), "duplicate (normalised)");
        assert!(inc.delete_edge(0, 2).is_err(), "not live");

        let mut vinc = IncrementalVertexPartitioner::fresh("LDG", 4, 1).unwrap();
        vinc.place_vertex(0, &[]).unwrap();
        assert!(vinc.place_vertex(0, &[]).is_err(), "already placed");
        assert!(vinc.place_vertex(1, &[9]).is_err(), "neighbour partition out of range");
    }

    #[test]
    fn materialize_detects_drift() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], false).unwrap();
        let full = EdgePartition::new(&g, 2, vec![0, 1]).unwrap();
        let inc = IncrementalEdgePartitioner::from_partition("Random", &g, &full, 1).unwrap();
        let other = Graph::from_edges(3, &[(0, 1)], false).unwrap();
        assert!(inc.materialize(&other).is_err(), "edge count mismatch");
        let swapped = Graph::from_edges(3, &[(0, 1), (0, 2)], false).unwrap();
        assert!(inc.materialize(&swapped).is_err(), "untracked edge");
    }
}
