//! Partitioner traits.

use gp_graph::Graph;

use crate::assignment::{EdgePartition, VertexPartition};
use crate::error::PartitionError;

/// An edge partitioner (vertex-cut): assigns every edge to a partition.
pub trait EdgePartitioner {
    /// Stable name used in reports (e.g. `"HDRF"`).
    fn name(&self) -> &'static str;

    /// Partition the graph's edges into `k` parts.
    ///
    /// Implementations must be deterministic given `seed`.
    ///
    /// # Errors
    ///
    /// Fails on invalid `k`, empty graphs, or invalid configuration.
    fn partition_edges(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<EdgePartition, PartitionError>;
}

/// A vertex partitioner (edge-cut): assigns every vertex to a partition.
pub trait VertexPartitioner {
    /// Stable name used in reports (e.g. `"METIS"`).
    fn name(&self) -> &'static str;

    /// Partition the graph's vertices into `k` parts.
    ///
    /// Implementations must be deterministic given `seed`.
    ///
    /// # Errors
    ///
    /// Fails on invalid `k` or invalid configuration.
    fn partition_vertices(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<VertexPartition, PartitionError>;
}

/// Blanket impls so `Box<dyn …>` collections can be used ergonomically.
impl<T: EdgePartitioner + ?Sized> EdgePartitioner for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn partition_edges(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<EdgePartition, PartitionError> {
        (**self).partition_edges(graph, k, seed)
    }
}

impl<T: VertexPartitioner + ?Sized> VertexPartitioner for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn partition_vertices(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<VertexPartition, PartitionError> {
        (**self).partition_vertices(graph, k, seed)
    }
}
