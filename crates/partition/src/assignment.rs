//! Partition assignment types.
//!
//! [`EdgePartition`] is the result of *edge partitioning* (vertex-cut):
//! every edge belongs to exactly one partition and vertices incident to
//! edges in several partitions are *replicated*. [`VertexPartition`] is
//! the result of *vertex partitioning* (edge-cut): every vertex belongs
//! to exactly one partition and edges whose endpoints live in different
//! partitions are *cut*.
//!
//! Both types eagerly compute the quality statistics of Section 2.1 at
//! construction time so that downstream consumers (training engines,
//! experiment harness) can read them for free.

use gp_graph::Graph;

use crate::error::PartitionError;

/// Maximum supported number of partitions.
///
/// Replica sets are stored as one `u64` bitmask per vertex, which caps
/// `k` at 64. The paper never exceeds 32 partitions.
pub const MAX_PARTITIONS: u32 = 64;

fn check_k(k: u32) -> Result<(), PartitionError> {
    if k == 0 || k > MAX_PARTITIONS {
        Err(PartitionError::BadPartitionCount { k })
    } else {
        Ok(())
    }
}

/// Result of edge partitioning (vertex-cut).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgePartition {
    k: u32,
    /// Partition of each canonical edge (same order as `graph.edges()`).
    assignments: Vec<u32>,
    /// Edges per partition.
    edge_counts: Vec<u64>,
    /// Bitmask of partitions each vertex is replicated to.
    replica_masks: Vec<u64>,
    /// |V(p_i)| — number of vertices covered by each partition.
    covered_vertices: Vec<u64>,
    /// Total number of vertex replicas (sum of popcounts).
    total_replicas: u64,
    /// Number of vertices with at least one incident edge.
    num_covered: u64,
    num_vertices: u32,
}

impl EdgePartition {
    /// Build an edge partition from per-edge assignments.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range, the assignment length does not equal
    /// `graph.num_edges()`, or an assignment is `>= k`.
    pub fn new(graph: &Graph, k: u32, assignments: Vec<u32>) -> Result<Self, PartitionError> {
        check_k(k)?;
        if assignments.len() != graph.num_edges() as usize {
            return Err(PartitionError::LengthMismatch {
                expected: graph.num_edges() as usize,
                actual: assignments.len(),
            });
        }
        let mut edge_counts = vec![0u64; k as usize];
        let mut replica_masks = vec![0u64; graph.num_vertices() as usize];
        for (i, (u, v)) in graph.edges().enumerate() {
            let p = assignments[i];
            if p >= k {
                return Err(PartitionError::AssignmentOutOfRange { partition: p, k });
            }
            edge_counts[p as usize] += 1;
            let bit = 1u64 << p;
            replica_masks[u as usize] |= bit;
            replica_masks[v as usize] |= bit;
        }
        let mut covered_vertices = vec![0u64; k as usize];
        let mut total_replicas = 0u64;
        let mut num_covered = 0u64;
        for &mask in &replica_masks {
            if mask != 0 {
                num_covered += 1;
                total_replicas += u64::from(mask.count_ones());
                let mut m = mask;
                while m != 0 {
                    let p = m.trailing_zeros();
                    covered_vertices[p as usize] += 1;
                    m &= m - 1;
                }
            }
        }
        Ok(EdgePartition {
            k,
            assignments,
            edge_counts,
            replica_masks,
            covered_vertices,
            total_replicas,
            num_covered,
            num_vertices: graph.num_vertices(),
        })
    }

    /// Number of partitions.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Partition of edge `e` (canonical edge index).
    #[inline]
    pub fn edge_partition(&self, e: u32) -> u32 {
        self.assignments[e as usize]
    }

    /// Per-edge assignments, in canonical edge order.
    #[inline]
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Number of edges per partition.
    #[inline]
    pub fn edge_counts(&self) -> &[u64] {
        &self.edge_counts
    }

    /// Number of covered vertices |V(p_i)| per partition.
    #[inline]
    pub fn covered_vertices(&self) -> &[u64] {
        &self.covered_vertices
    }

    /// Bitmask of partitions vertex `v` is replicated to.
    #[inline]
    pub fn replica_mask(&self, v: u32) -> u64 {
        self.replica_masks[v as usize]
    }

    /// Number of replicas of vertex `v` (0 for isolated vertices).
    #[inline]
    pub fn replica_count(&self, v: u32) -> u32 {
        self.replica_masks[v as usize].count_ones()
    }

    /// Whether vertex `v` has a replica on partition `p`.
    #[inline]
    pub fn has_replica(&self, v: u32, p: u32) -> bool {
        self.replica_masks[v as usize] & (1u64 << p) != 0
    }

    /// Total number of vertex replicas `Σ_i |V(p_i)|`.
    #[inline]
    pub fn total_replicas(&self) -> u64 {
        self.total_replicas
    }

    /// Mean replication factor `RF(P) = Σ|V(p_i)| / |V_covered|`.
    ///
    /// Vertices without any incident edge are excluded from the
    /// denominator (they are never replicated), matching the standard
    /// definition.
    pub fn replication_factor(&self) -> f64 {
        if self.num_covered == 0 {
            0.0
        } else {
            self.total_replicas as f64 / self.num_covered as f64
        }
    }

    /// Edge balance `max(|p_i|) / mean(|p_i|)` (1.0 = perfect).
    pub fn edge_balance(&self) -> f64 {
        ratio_max_mean(&self.edge_counts)
    }

    /// Vertex balance `max(|V(p_i)|) / mean(|V(p_i)|)` (1.0 = perfect).
    pub fn vertex_balance(&self) -> f64 {
        ratio_max_mean(&self.covered_vertices)
    }

    /// Number of vertices in the original graph.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }
}

/// Result of vertex partitioning (edge-cut).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VertexPartition {
    k: u32,
    /// Partition of each vertex.
    assignments: Vec<u32>,
    /// Vertices per partition.
    vertex_counts: Vec<u64>,
    /// Number of cut edges.
    cut_edges: u64,
    /// Total number of edges in the graph.
    num_edges: u64,
}

impl VertexPartition {
    /// Build a vertex partition from per-vertex assignments.
    ///
    /// # Errors
    ///
    /// Fails if `k` is out of range, the assignment length does not equal
    /// `graph.num_vertices()`, or an assignment is `>= k`.
    pub fn new(graph: &Graph, k: u32, assignments: Vec<u32>) -> Result<Self, PartitionError> {
        check_k(k)?;
        if assignments.len() != graph.num_vertices() as usize {
            return Err(PartitionError::LengthMismatch {
                expected: graph.num_vertices() as usize,
                actual: assignments.len(),
            });
        }
        let mut vertex_counts = vec![0u64; k as usize];
        for &p in &assignments {
            if p >= k {
                return Err(PartitionError::AssignmentOutOfRange { partition: p, k });
            }
            vertex_counts[p as usize] += 1;
        }
        let mut cut_edges = 0u64;
        for (u, v) in graph.edges() {
            if assignments[u as usize] != assignments[v as usize] {
                cut_edges += 1;
            }
        }
        Ok(VertexPartition {
            k,
            assignments,
            vertex_counts,
            cut_edges,
            num_edges: u64::from(graph.num_edges()),
        })
    }

    /// Number of partitions.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Partition of vertex `v`.
    #[inline]
    pub fn vertex_partition(&self, v: u32) -> u32 {
        self.assignments[v as usize]
    }

    /// Per-vertex assignments.
    #[inline]
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Number of vertices per partition.
    #[inline]
    pub fn vertex_counts(&self) -> &[u64] {
        &self.vertex_counts
    }

    /// Number of cut edges.
    #[inline]
    pub fn cut_edges(&self) -> u64 {
        self.cut_edges
    }

    /// Edge-cut ratio `λ = |E_cut| / |E|`.
    pub fn edge_cut_ratio(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.num_edges as f64
        }
    }

    /// Vertex balance `max(|p_i|) / mean(|p_i|)` (1.0 = perfect).
    pub fn vertex_balance(&self) -> f64 {
        ratio_max_mean(&self.vertex_counts)
    }

    /// Balance of a vertex subset (e.g. training vertices) across
    /// partitions: `max / mean` of the per-partition subset counts.
    pub fn subset_balance(&self, subset: &[u32]) -> f64 {
        let mut counts = vec![0u64; self.k as usize];
        for &v in subset {
            counts[self.assignments[v as usize] as usize] += 1;
        }
        ratio_max_mean(&counts)
    }

    /// Per-partition counts of a vertex subset (e.g. training vertices).
    pub fn subset_counts(&self, subset: &[u32]) -> Vec<u64> {
        let mut counts = vec![0u64; self.k as usize];
        for &v in subset {
            counts[self.assignments[v as usize] as usize] += 1;
        }
        counts
    }

    /// Communication volume: the number of `(vertex, remote partition)`
    /// pairs — for each vertex, how many *other* partitions contain one
    /// of its neighbours and therefore need its state.
    ///
    /// The paper observes that the edge-cut ratio is not a perfect
    /// predictor of network traffic (Section 5.2: Spinner vs METIS on
    /// OR); communication volume counts each remote partition once per
    /// vertex, matching how state is actually shipped, and is the static
    /// analogue of the *remote vertices* metric.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not match the partition's vertex count.
    pub fn communication_volume(&self, graph: &Graph) -> u64 {
        assert_eq!(
            graph.num_vertices() as usize,
            self.assignments.len(),
            "graph/partition mismatch"
        );
        let mut touched = vec![0u64; graph.num_vertices() as usize];
        for (u, v) in graph.edges() {
            let (pu, pv) = (self.assignments[u as usize], self.assignments[v as usize]);
            if pu != pv {
                touched[u as usize] |= 1u64 << pv;
                touched[v as usize] |= 1u64 << pu;
            }
        }
        touched.iter().map(|m| u64::from(m.count_ones())).sum()
    }
}

/// `max / mean` of a count vector; 0.0 for an all-zero vector.
fn ratio_max_mean(counts: &[u64]) -> f64 {
    let sum: u64 = counts.iter().sum();
    if sum == 0 || counts.is_empty() {
        return 0.0;
    }
    let mean = sum as f64 / counts.len() as f64;
    let max = *counts.iter().max().expect("non-empty") as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-cycle: 0-1-2-3-0.
    fn cycle() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)], false).unwrap()
    }

    #[test]
    fn edge_partition_replication_factor() {
        let g = cycle();
        // Edges (0,1), (1,2) -> p0; (2,3), (0,3) -> p1.
        let ep = EdgePartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        // Covered: p0 = {0,1,2}, p1 = {0,2,3}; replicas = 6, vertices = 4.
        assert_eq!(ep.total_replicas(), 6);
        assert!((ep.replication_factor() - 1.5).abs() < 1e-12);
        assert_eq!(ep.covered_vertices(), &[3, 3]);
        assert_eq!(ep.edge_counts(), &[2, 2]);
        assert_eq!(ep.edge_balance(), 1.0);
        assert_eq!(ep.vertex_balance(), 1.0);
    }

    #[test]
    fn edge_partition_replica_queries() {
        let g = cycle();
        let ep = EdgePartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        assert_eq!(ep.replica_count(0), 2); // in both partitions
        assert_eq!(ep.replica_count(1), 1);
        assert!(ep.has_replica(3, 1));
        assert!(!ep.has_replica(3, 0));
        assert_eq!(ep.replica_mask(2), 0b11);
    }

    #[test]
    fn edge_partition_single_partition_rf_one() {
        let g = cycle();
        let ep = EdgePartition::new(&g, 1, vec![0; 4]).unwrap();
        assert!((ep.replication_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_partition_isolated_vertices_excluded() {
        let g = Graph::from_edges(5, &[(0, 1)], false).unwrap();
        let ep = EdgePartition::new(&g, 2, vec![0]).unwrap();
        // Vertices 2..4 are isolated; RF counts only covered vertices.
        assert!((ep.replication_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_partition_rejects_bad_input() {
        let g = cycle();
        assert!(matches!(
            EdgePartition::new(&g, 0, vec![]),
            Err(PartitionError::BadPartitionCount { .. })
        ));
        assert!(matches!(
            EdgePartition::new(&g, 2, vec![0, 0]),
            Err(PartitionError::LengthMismatch { .. })
        ));
        assert!(matches!(
            EdgePartition::new(&g, 2, vec![0, 0, 0, 5]),
            Err(PartitionError::AssignmentOutOfRange { .. })
        ));
        assert!(matches!(
            EdgePartition::new(&g, 65, vec![0; 4]),
            Err(PartitionError::BadPartitionCount { .. })
        ));
    }

    #[test]
    fn vertex_partition_cut_and_balance() {
        let g = cycle();
        // {0, 1} vs {2, 3}: edges (1,2) and (0,3) are cut.
        let vp = VertexPartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        assert_eq!(vp.cut_edges(), 2);
        assert!((vp.edge_cut_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(vp.vertex_counts(), &[2, 2]);
        assert_eq!(vp.vertex_balance(), 1.0);
    }

    #[test]
    fn vertex_partition_imbalanced() {
        let g = cycle();
        let vp = VertexPartition::new(&g, 2, vec![0, 0, 0, 1]).unwrap();
        // max = 3, mean = 2 -> balance 1.5.
        assert!((vp.vertex_balance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn vertex_partition_subset_balance() {
        let g = cycle();
        let vp = VertexPartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        // Train vertices all on partition 0 -> max 2, mean 1 -> 2.0.
        assert!((vp.subset_balance(&[0, 1]) - 2.0).abs() < 1e-12);
        assert_eq!(vp.subset_counts(&[0, 1]), vec![2, 0]);
        // Balanced subset.
        assert!((vp.subset_balance(&[0, 2]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vertex_partition_rejects_bad_input() {
        let g = cycle();
        assert!(VertexPartition::new(&g, 2, vec![0, 1]).is_err());
        assert!(VertexPartition::new(&g, 2, vec![0, 1, 2, 0]).is_err());
    }

    #[test]
    fn communication_volume_counts_remote_partitions_once() {
        let g = cycle();
        // {0,1} vs {2,3}: cut edges (1,2) and (0,3); every vertex touches
        // exactly one remote partition -> volume 4.
        let vp = VertexPartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        assert_eq!(vp.communication_volume(&g), 4);
        // Single partition: no communication.
        let solo = VertexPartition::new(&g, 1, vec![0; 4]).unwrap();
        assert_eq!(solo.communication_volume(&g), 0);
    }

    #[test]
    fn communication_volume_dedups_multi_edges_to_same_partition() {
        // Star: center 0 on partition 0, leaves on partition 1. The
        // center touches partition 1 once (not three times); each leaf
        // touches partition 0 once. Volume = 1 + 3.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)], false).unwrap();
        let vp = VertexPartition::new(&g, 2, vec![0, 1, 1, 1]).unwrap();
        assert_eq!(vp.communication_volume(&g), 4);
    }

    #[test]
    fn single_partition_no_cut() {
        let g = cycle();
        let vp = VertexPartition::new(&g, 1, vec![0; 4]).unwrap();
        assert_eq!(vp.cut_edges(), 0);
        assert_eq!(vp.edge_cut_ratio(), 0.0);
    }
}
