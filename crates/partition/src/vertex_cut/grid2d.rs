//! 2-D grid (matrix-block) vertex-cut partitioning.
//!
//! **Extension beyond the paper's Table 2**: the classic communication-
//! avoiding scheme from 2-D sparse-matrix distribution (used by
//! Graph500 reference implementations and GraphBuilder). Partitions are
//! arranged in an `r × c` grid; edge `{u, v}` goes to the partition at
//! `(row(u), col(v))`. Every vertex's replicas are then confined to one
//! grid row plus one grid column, which gives the *provable* bound
//!
//! ```text
//! replication factor ≤ r + c − 1      (≈ 2√k − 1 for square grids)
//! ```
//!
//! independent of the graph — a worst-case guarantee none of the
//! adaptive streaming partitioners can offer. The trade-off: it never
//! exploits locality, so on partitionable graphs HDRF/HEP beat it.

use gp_graph::Graph;

use crate::assignment::EdgePartition;
use crate::error::PartitionError;
use crate::traits::EdgePartitioner;
use crate::vertex_cut::dbh::mix64;

/// 2-D grid edge partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Grid2d;

/// Factor `k` into the most-square `r × c = k` grid (`r <= c`).
fn grid_shape(k: u32) -> (u32, u32) {
    let mut r = (k as f64).sqrt() as u32;
    while r > 1 && !k.is_multiple_of(r) {
        r -= 1;
    }
    (r.max(1), k / r.max(1))
}

impl EdgePartitioner for Grid2d {
    fn name(&self) -> &'static str {
        "Grid2D"
    }

    fn partition_edges(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<EdgePartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        let (rows, cols) = grid_shape(k);
        let row_of = |v: u32| (mix64(u64::from(v) ^ seed) % u64::from(rows)) as u32;
        let col_of = |v: u32| (mix64(u64::from(v) ^ seed ^ 0xc01) % u64::from(cols)) as u32;
        let assignments: Vec<u32> =
            graph.edges().map(|(u, v)| row_of(u) * cols + col_of(v)).collect();
        EdgePartition::new(graph, k, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_cut::testutil::{check_edge_partitioner, skewed_graph};
    use crate::vertex_cut::RandomEdgePartitioner;

    #[test]
    fn passes_common_checks() {
        check_edge_partitioner(&Grid2d);
    }

    #[test]
    fn grid_shapes_factor_k() {
        assert_eq!(grid_shape(16), (4, 4));
        assert_eq!(grid_shape(8), (2, 4));
        assert_eq!(grid_shape(7), (1, 7));
        assert_eq!(grid_shape(1), (1, 1));
        assert_eq!(grid_shape(36), (6, 6));
    }

    #[test]
    fn replication_bound_holds() {
        // The defining property: RF of EVERY vertex <= r + c - 1.
        let g = skewed_graph();
        for k in [4u32, 8, 16, 36, 64] {
            let (r, c) = grid_shape(k);
            let p = Grid2d.partition_edges(&g, k, 7).unwrap();
            let bound = r + c - 1;
            for v in g.vertices() {
                assert!(
                    p.replica_count(v) <= bound,
                    "k={k}: vertex {v} has {} replicas > bound {bound}",
                    p.replica_count(v)
                );
            }
        }
    }

    #[test]
    fn bounds_hubs_where_random_does_not() {
        // At k=16 the hub's replicas: Random ~ min(16, deg); Grid2D <= 7.
        let g = skewed_graph();
        let hub = g.vertices().max_by_key(|&v| g.degree(v)).unwrap();
        assert!(g.degree(hub) > 50, "test premise: a real hub exists");
        let grid = Grid2d.partition_edges(&g, 16, 1).unwrap();
        let rnd = RandomEdgePartitioner.partition_edges(&g, 16, 1).unwrap();
        assert!(grid.replica_count(hub) <= 7);
        assert!(rnd.replica_count(hub) > 7);
    }

    #[test]
    fn roughly_balanced() {
        let g = skewed_graph();
        let p = Grid2d.partition_edges(&g, 16, 1).unwrap();
        assert!(p.edge_balance() < 1.6, "edge balance {}", p.edge_balance());
    }
}
