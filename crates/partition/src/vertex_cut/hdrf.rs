//! HDRF — High-Degree Replicated First (Petroni et al., CIKM 2015).
//!
//! Stateful streaming vertex-cut. For each edge it scores every partition
//! by a replication term (prefer partitions that already hold a replica
//! of an endpoint, weighted towards replicating the *higher*-degree
//! endpoint) plus a balance term, and assigns greedily. The state is the
//! partial degree of each vertex, its replica set, and per-partition
//! loads.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gp_graph::Graph;

use crate::assignment::EdgePartition;
use crate::error::PartitionError;
use crate::traits::EdgePartitioner;

/// HDRF streaming edge partitioner.
#[derive(Debug, Clone, Copy)]
pub struct Hdrf {
    /// Balance weight λ; the original paper recommends values slightly
    /// above 1.
    pub lambda: f64,
}

impl Default for Hdrf {
    fn default() -> Self {
        Hdrf { lambda: 1.1 }
    }
}

impl EdgePartitioner for Hdrf {
    fn name(&self) -> &'static str {
        "HDRF"
    }

    fn partition_edges(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<EdgePartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        if self.lambda < 0.0 {
            return Err(PartitionError::InvalidParameter(format!(
                "lambda = {} must be >= 0",
                self.lambda
            )));
        }
        let n = graph.num_vertices() as usize;
        let mut partial_degree = vec![0u32; n];
        let mut replicas = vec![0u64; n];
        let mut load = vec![0u64; k as usize];
        let mut max_load = 0u64;
        let mut min_load = 0u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut assignments = Vec::with_capacity(graph.num_edges() as usize);

        for (u, v) in graph.edges() {
            let (ui, vi) = (u as usize, v as usize);
            partial_degree[ui] += 1;
            partial_degree[vi] += 1;
            let best = hdrf_choose(
                k,
                self.lambda,
                partial_degree[ui],
                partial_degree[vi],
                replicas[ui],
                replicas[vi],
                &load,
                max_load,
                min_load,
                &mut rng,
            );

            assignments.push(best);
            let bit = 1u64 << best;
            replicas[ui] |= bit;
            replicas[vi] |= bit;
            load[best as usize] += 1;
            max_load = max_load.max(load[best as usize]);
            min_load = *load.iter().min().expect("k >= 1");
        }
        EdgePartition::new(graph, k, assignments)
    }
}

/// HDRF's per-edge selection rule (shared with the incremental
/// partitioner so incremental-vs-batch equality holds by construction).
/// `du`/`dv` are the partial degrees *after* counting the edge being
/// placed; ties are reservoir-sampled from `rng`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn hdrf_choose(
    k: u32,
    lambda: f64,
    du: u32,
    dv: u32,
    replicas_u: u64,
    replicas_v: u64,
    load: &[u64],
    max_load: u64,
    min_load: u64,
    rng: &mut StdRng,
) -> u32 {
    let du = f64::from(du);
    let dv = f64::from(dv);
    let theta_u = du / (du + dv);
    let theta_v = 1.0 - theta_u;

    let mut best = 0u32;
    let mut best_score = f64::NEG_INFINITY;
    let mut ties = 0u32;
    let denom = 1e-9 + (max_load - min_load) as f64;
    for p in 0..k {
        let bit = 1u64 << p;
        // Replication term: g(v, p) = 1 + (1 - θ) when p already
        // holds a replica of v. Replicating the higher-degree
        // endpoint is cheaper, hence the (1 - θ) bonus.
        let mut c_rep = 0.0;
        if replicas_u & bit != 0 {
            c_rep += 1.0 + (1.0 - theta_u);
        }
        if replicas_v & bit != 0 {
            c_rep += 1.0 + (1.0 - theta_v);
        }
        let c_bal = lambda * (max_load - load[p as usize]) as f64 / denom;
        let score = c_rep + c_bal;
        if score > best_score + 1e-12 {
            best_score = score;
            best = p;
            ties = 1;
        } else if (score - best_score).abs() <= 1e-12 {
            // Reservoir-sample among exact ties for determinism
            // w.r.t. the seed but no fixed bias to partition 0.
            ties += 1;
            if rng.random_range(0..ties) == 0 {
                best = p;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_cut::testutil::{check_edge_partitioner, skewed_graph};
    use crate::vertex_cut::RandomEdgePartitioner;

    #[test]
    fn passes_common_checks() {
        check_edge_partitioner(&Hdrf::default());
    }

    #[test]
    fn beats_random_on_replication() {
        let g = skewed_graph();
        let hdrf = Hdrf::default().partition_edges(&g, 8, 1).unwrap();
        let rnd = RandomEdgePartitioner.partition_edges(&g, 8, 1).unwrap();
        assert!(hdrf.replication_factor() < 0.8 * rnd.replication_factor());
    }

    #[test]
    fn keeps_edges_balanced() {
        let g = skewed_graph();
        let p = Hdrf::default().partition_edges(&g, 8, 1).unwrap();
        assert!(p.edge_balance() < 1.2, "edge balance {}", p.edge_balance());
    }

    #[test]
    fn lambda_zero_degenerates_to_pure_replication_greed() {
        let g = skewed_graph();
        // Without the balance term the partitioner still produces a valid
        // partition, just (possibly) a lopsided one.
        let p = Hdrf { lambda: 0.0 }.partition_edges(&g, 4, 1).unwrap();
        let total: u64 = p.edge_counts().iter().sum();
        assert_eq!(total, u64::from(g.num_edges()));
    }

    #[test]
    fn higher_lambda_improves_balance() {
        let g = skewed_graph();
        let loose = Hdrf { lambda: 0.1 }.partition_edges(&g, 8, 1).unwrap();
        let tight = Hdrf { lambda: 4.0 }.partition_edges(&g, 8, 1).unwrap();
        assert!(tight.edge_balance() <= loose.edge_balance() + 0.05);
    }

    #[test]
    fn rejects_negative_lambda() {
        let g = skewed_graph();
        assert!(Hdrf { lambda: -1.0 }.partition_edges(&g, 4, 0).is_err());
    }
}
