//! HEP — Hybrid Edge Partitioner (Mayer & Jacobsen, SIGMOD 2021).
//!
//! HEP splits the vertex set by degree: vertices with degree above
//! `τ · mean_degree` are *high-degree*. Edges between two high-degree
//! vertices are partitioned with a streaming algorithm (HDRF-style);
//! every other edge is partitioned in memory with neighbourhood
//! expansion ([`crate::vertex_cut::ne`]). A larger `τ` moves more of the
//! graph into the high-quality in-memory phase: the paper uses `τ = 10`
//! (HEP-10) and `τ = 100` (HEP-100, effectively fully in-memory) as two
//! separate partitioners.

use gp_graph::Graph;

use crate::assignment::EdgePartition;
use crate::error::PartitionError;
use crate::traits::EdgePartitioner;
use crate::vertex_cut::ne::{ne_partition, Incidence};

/// Hybrid edge partitioner with threshold parameter `τ`.
#[derive(Debug, Clone, Copy)]
pub struct Hep {
    /// Degree threshold multiplier τ (the paper evaluates 10 and 100).
    pub tau: f64,
    /// Balance weight of the streaming (HDRF-style) phase.
    pub lambda: f64,
}

impl Hep {
    /// HEP-10 configuration.
    pub fn hep10() -> Self {
        Hep { tau: 10.0, lambda: 1.1 }
    }

    /// HEP-100 configuration (effectively in-memory).
    pub fn hep100() -> Self {
        Hep { tau: 100.0, lambda: 1.1 }
    }
}

impl Default for Hep {
    fn default() -> Self {
        Hep::hep10()
    }
}

impl EdgePartitioner for Hep {
    fn name(&self) -> &'static str {
        // Distinguish the two paper configurations; other τ values fall
        // back to the generic name.
        if (self.tau - 10.0).abs() < 1e-9 {
            "HEP-10"
        } else if (self.tau - 100.0).abs() < 1e-9 {
            "HEP-100"
        } else {
            "HEP"
        }
    }

    fn partition_edges(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<EdgePartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        if self.tau <= 0.0 {
            return Err(PartitionError::InvalidParameter(format!(
                "tau = {} must be > 0",
                self.tau
            )));
        }
        let m = graph.num_edges() as usize;
        if m == 0 {
            return EdgePartition::new(graph, k, Vec::new());
        }
        let threshold = (self.tau * 2.0 * graph.mean_degree()).max(1.0);
        let is_high = |v: u32| f64::from(graph.degree(v)) > threshold;

        // Split the edge set: low edges (≥ one low-degree endpoint) go to
        // the in-memory NE phase, high-high edges to the streaming phase.
        let mut eligible_ne = vec![false; m];
        let mut any_stream = false;
        for (e, (u, v)) in graph.edges().enumerate() {
            if is_high(u) && is_high(v) {
                any_stream = true;
            } else {
                eligible_ne[e] = true;
            }
        }

        const UNASSIGNED: u32 = u32::MAX;
        let mut assignments = vec![UNASSIGNED; m];

        // ---- In-memory phase: neighbourhood expansion. ----
        let incidence = Incidence::build(graph);
        ne_partition(graph, &incidence, &eligible_ne, &mut assignments, k);

        // ---- Streaming phase: HDRF-style over the remaining edges,
        // with the replica sets warm-started from the NE phase. ----
        if any_stream {
            let _ = seed; // streaming phase is deterministic
            let n = graph.num_vertices() as usize;
            let mut replicas = vec![0u64; n];
            let mut load = vec![0u64; k as usize];
            for (e, (u, v)) in graph.edges().enumerate() {
                let p = assignments[e];
                if p != UNASSIGNED {
                    replicas[u as usize] |= 1u64 << p;
                    replicas[v as usize] |= 1u64 << p;
                    load[p as usize] += 1;
                }
            }
            let mut max_load = *load.iter().max().expect("k >= 1");
            let mut min_load = *load.iter().min().expect("k >= 1");
            let mut partial = vec![0u32; n];
            for (e, (u, v)) in graph.edges().enumerate() {
                if assignments[e] != UNASSIGNED {
                    continue;
                }
                let (ui, vi) = (u as usize, v as usize);
                partial[ui] += 1;
                partial[vi] += 1;
                let du = f64::from(partial[ui]);
                let dv = f64::from(partial[vi]);
                let theta_u = du / (du + dv);
                let theta_v = 1.0 - theta_u;
                let denom = 1e-9 + (max_load - min_load) as f64;
                let mut best = 0u32;
                let mut best_score = f64::NEG_INFINITY;
                for p in 0..k {
                    let bit = 1u64 << p;
                    let mut c_rep = 0.0;
                    if replicas[ui] & bit != 0 {
                        c_rep += 1.0 + (1.0 - theta_u);
                    }
                    if replicas[vi] & bit != 0 {
                        c_rep += 1.0 + (1.0 - theta_v);
                    }
                    let c_bal = self.lambda * (max_load - load[p as usize]) as f64 / denom;
                    let score = c_rep + c_bal;
                    if score > best_score {
                        best_score = score;
                        best = p;
                    }
                }
                assignments[e] = best;
                replicas[ui] |= 1u64 << best;
                replicas[vi] |= 1u64 << best;
                load[best as usize] += 1;
                max_load = max_load.max(load[best as usize]);
                min_load = *load.iter().min().expect("k >= 1");
            }
        }

        EdgePartition::new(graph, k, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_cut::testutil::{check_edge_partitioner, skewed_graph};
    use crate::vertex_cut::{Hdrf, RandomEdgePartitioner};

    #[test]
    fn hep10_passes_common_checks() {
        check_edge_partitioner(&Hep::hep10());
    }

    #[test]
    fn hep100_passes_common_checks() {
        check_edge_partitioner(&Hep::hep100());
    }

    #[test]
    fn names_distinguish_tau() {
        assert_eq!(Hep::hep10().name(), "HEP-10");
        assert_eq!(Hep::hep100().name(), "HEP-100");
        assert_eq!(Hep { tau: 5.0, lambda: 1.1 }.name(), "HEP");
    }

    #[test]
    fn hep_beats_streaming_partitioners() {
        let g = skewed_graph();
        let hep = Hep::hep100().partition_edges(&g, 8, 1).unwrap();
        let hdrf = Hdrf::default().partition_edges(&g, 8, 1).unwrap();
        let rnd = RandomEdgePartitioner.partition_edges(&g, 8, 1).unwrap();
        assert!(
            hep.replication_factor() < hdrf.replication_factor(),
            "HEP-100 {} vs HDRF {}",
            hep.replication_factor(),
            hdrf.replication_factor()
        );
        assert!(hep.replication_factor() < 0.5 * rnd.replication_factor());
    }

    #[test]
    fn hep100_at_least_as_good_as_hep10() {
        let g = skewed_graph();
        let h10 = Hep::hep10().partition_edges(&g, 8, 1).unwrap();
        let h100 = Hep::hep100().partition_edges(&g, 8, 1).unwrap();
        assert!(h100.replication_factor() <= h10.replication_factor() + 0.25);
    }

    #[test]
    fn rejects_bad_tau() {
        let g = skewed_graph();
        assert!(Hep { tau: 0.0, lambda: 1.0 }.partition_edges(&g, 4, 0).is_err());
    }

    #[test]
    fn empty_graph_ok() {
        let g = gp_graph::Graph::from_edges(3, &[], false).unwrap();
        let p = Hep::hep10().partition_edges(&g, 2, 0).unwrap();
        assert_eq!(p.assignments().len(), 0);
    }
}
