//! Greedy oblivious vertex-cut (PowerGraph; Gonzalez et al., OSDI 2012).
//!
//! **Extension beyond the paper's Table 2**: the classic streaming
//! baseline that predates HDRF. Placement rules for edge `{u, v}`:
//!
//! 1. replicas of `u` and `v` intersect → least-loaded common partition;
//! 2. both have replicas, disjoint → least-loaded partition among the
//!    replicas of the endpoint with the larger remaining degree;
//! 3. one endpoint has replicas → least-loaded of its partitions;
//! 4. neither placed yet → least-loaded partition overall.
//!
//! Included because it is the lineage ancestor of HDRF (which adds the
//! degree-weighted scoring); the `partitioners` bench compares the two.

use gp_graph::Graph;

use crate::assignment::EdgePartition;
use crate::error::PartitionError;
use crate::traits::EdgePartitioner;

/// PowerGraph-style greedy streaming edge partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy;

impl EdgePartitioner for Greedy {
    fn name(&self) -> &'static str {
        "Greedy"
    }

    fn partition_edges(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<EdgePartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        let _ = seed; // deterministic by construction
        let n = graph.num_vertices() as usize;
        let mut replicas = vec![0u64; n];
        let mut partial_degree = vec![0u32; n];
        let mut load = vec![0u64; k as usize];
        let least_loaded_in = |mask: u64, load: &[u64]| -> u32 {
            let mut best = u32::MAX;
            let mut best_load = u64::MAX;
            let mut m = mask;
            while m != 0 {
                let p = m.trailing_zeros();
                if load[p as usize] < best_load {
                    best_load = load[p as usize];
                    best = p;
                }
                m &= m - 1;
            }
            best
        };
        let full_mask: u64 = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
        // Balance cap (standard in Greedy implementations): a candidate
        // partition at capacity is skipped, falling through to the next
        // rule; without it rule 1 glues a connected graph onto one
        // partition.
        let cap = ((1.1 * f64::from(graph.num_edges())) / f64::from(k)).ceil() as u64;
        let mut assignments = Vec::with_capacity(graph.num_edges() as usize);
        for (u, v) in graph.edges() {
            let (ui, vi) = (u as usize, v as usize);
            partial_degree[ui] += 1;
            partial_degree[vi] += 1;
            let (ru, rv) = (replicas[ui], replicas[vi]);
            let capped = |mask: u64, load: &[u64]| -> Option<u32> {
                let p = least_loaded_in(mask, load);
                (p != u32::MAX && load[p as usize] < cap).then_some(p)
            };
            let p = (if ru & rv != 0 { capped(ru & rv, &load) } else { None })
                .or_else(|| {
                    if ru != 0 && rv != 0 {
                        // Replicate the endpoint with the larger remaining
                        // degree: place with the *smaller*-degree endpoint.
                        let pick = if partial_degree[ui] < partial_degree[vi] { ru } else { rv };
                        capped(pick, &load)
                    } else {
                        None
                    }
                })
                .or_else(|| if ru != 0 { capped(ru, &load) } else { None })
                .or_else(|| if rv != 0 { capped(rv, &load) } else { None })
                .unwrap_or_else(|| least_loaded_in(full_mask, &load));
            assignments.push(p);
            replicas[ui] |= 1u64 << p;
            replicas[vi] |= 1u64 << p;
            load[p as usize] += 1;
        }
        EdgePartition::new(graph, k, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_cut::testutil::{check_edge_partitioner, skewed_graph};
    use crate::vertex_cut::{Hdrf, RandomEdgePartitioner};

    #[test]
    fn passes_common_checks() {
        check_edge_partitioner(&Greedy);
    }

    #[test]
    fn beats_random() {
        let g = skewed_graph();
        let greedy = Greedy.partition_edges(&g, 8, 1).unwrap();
        let rnd = RandomEdgePartitioner.partition_edges(&g, 8, 1).unwrap();
        assert!(greedy.replication_factor() < 0.85 * rnd.replication_factor());
    }

    #[test]
    fn hdrf_its_descendant_is_at_least_comparable() {
        // HDRF was designed to improve on Greedy for power-law graphs.
        let g = skewed_graph();
        let greedy = Greedy.partition_edges(&g, 8, 1).unwrap();
        let hdrf = Hdrf::default().partition_edges(&g, 8, 1).unwrap();
        assert!(hdrf.replication_factor() < 1.2 * greedy.replication_factor());
    }

    #[test]
    fn roughly_balanced() {
        let g = skewed_graph();
        let p = Greedy.partition_edges(&g, 8, 1).unwrap();
        assert!(p.edge_balance() < 1.5, "edge balance {}", p.edge_balance());
    }
}
