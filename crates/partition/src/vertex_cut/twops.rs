//! 2PS-L — Two-Phase Streaming with Linear run-time (Mayer et al., ICDE 2022).
//!
//! Phase 1 streams the edges and builds volume-capped vertex *clusters*
//! (a simplified Hollocou-style streaming clustering). Phase 2 maps the
//! clusters onto partitions (first-fit decreasing by volume) and streams
//! the edges again: an edge whose endpoints' clusters map to the same
//! partition goes there; otherwise it goes to the less-loaded of the two
//! candidate partitions, subject to an edge-balance cap.
//!
//! The clustering packs dense regions onto single partitions, which
//! yields a low replication factor — but, exactly as the paper observes,
//! a *vertex imbalance*, because cluster sizes are uneven.

use gp_graph::Graph;

use crate::assignment::EdgePartition;
use crate::error::PartitionError;
use crate::traits::EdgePartitioner;

/// 2PS-L streaming edge partitioner.
#[derive(Debug, Clone, Copy)]
pub struct TwoPsL {
    /// Edge-balance slack α: no partition may exceed `α * |E| / k` edges.
    pub alpha: f64,
}

impl Default for TwoPsL {
    fn default() -> Self {
        TwoPsL { alpha: 1.05 }
    }
}

impl EdgePartitioner for TwoPsL {
    fn name(&self) -> &'static str {
        "2PS-L"
    }

    fn partition_edges(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<EdgePartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        if self.alpha < 1.0 {
            return Err(PartitionError::InvalidParameter(format!(
                "alpha = {} must be >= 1",
                self.alpha
            )));
        }
        let _ = seed; // The algorithm is deterministic by construction.
        let n = graph.num_vertices() as usize;
        let m = u64::from(graph.num_edges());
        if m == 0 {
            return EdgePartition::new(graph, k, Vec::new());
        }

        // ---- Phase 1: streaming clustering (union by volume). ----
        // cluster id per vertex; UNASSIGNED = u32::MAX.
        const NONE: u32 = u32::MAX;
        let mut cluster = vec![NONE; n];
        // Volume (sum of degrees) per cluster, indexed by cluster id.
        let mut volume: Vec<u64> = Vec::new();
        // Cap a cluster's volume at 2|E| * 2 / k, i.e. the degree volume
        // of one ideally-sized partition (each edge contributes 2).
        let volume_cap = (2 * m).div_ceil(u64::from(k)).max(2);

        for (u, v) in graph.edges() {
            let (ui, vi) = (u as usize, v as usize);
            let du = u64::from(graph.degree(u));
            let dv = u64::from(graph.degree(v));
            match (cluster[ui], cluster[vi]) {
                (NONE, NONE) => {
                    let id = volume.len() as u32;
                    volume.push(du + dv);
                    cluster[ui] = id;
                    cluster[vi] = id;
                }
                (cu, NONE) => {
                    if volume[cu as usize] + dv <= volume_cap {
                        cluster[vi] = cu;
                        volume[cu as usize] += dv;
                    } else {
                        let id = volume.len() as u32;
                        volume.push(dv);
                        cluster[vi] = id;
                    }
                }
                (NONE, cv) => {
                    if volume[cv as usize] + du <= volume_cap {
                        cluster[ui] = cv;
                        volume[cv as usize] += du;
                    } else {
                        let id = volume.len() as u32;
                        volume.push(du);
                        cluster[ui] = id;
                    }
                }
                (cu, cv) if cu != cv => {
                    // Move the endpoint in the smaller cluster over if the
                    // larger cluster has room (2PS-L's "rescue" step, kept
                    // O(1) per edge).
                    let (small_v, small_c, big_c, dw) = if volume[cu as usize]
                        <= volume[cv as usize]
                    {
                        (ui, cu, cv, du)
                    } else {
                        (vi, cv, cu, dv)
                    };
                    if volume[big_c as usize] + dw <= volume_cap {
                        cluster[small_v] = big_c;
                        volume[big_c as usize] += dw;
                        volume[small_c as usize] = volume[small_c as usize].saturating_sub(dw);
                    }
                }
                _ => {}
            }
        }

        // ---- Map clusters to partitions: first-fit decreasing. ----
        let mut order: Vec<u32> = (0..volume.len() as u32).collect();
        order.sort_unstable_by_key(|&c| std::cmp::Reverse(volume[c as usize]));
        let mut part_volume = vec![0u64; k as usize];
        let mut cluster_part = vec![0u32; volume.len()];
        for c in order {
            let p = (0..k).min_by_key(|&p| part_volume[p as usize]).expect("k >= 1");
            cluster_part[c as usize] = p;
            part_volume[p as usize] += volume[c as usize];
        }

        // ---- Phase 2: stream edges and assign. ----
        let cap = ((self.alpha * m as f64) / f64::from(k)).ceil() as u64;
        let mut load = vec![0u64; k as usize];
        let mut replicas = vec![0u64; n];
        let mut assignments = Vec::with_capacity(m as usize);
        for (u, v) in graph.edges() {
            let (ui, vi) = (u as usize, v as usize);
            let pu = cluster_part[cluster[ui] as usize];
            let pv = cluster_part[cluster[vi] as usize];
            let mut p = if pu == pv {
                pu
            } else {
                // Prefer a partition where a replica already exists, then
                // the less-loaded of the two candidates.
                let ru = replicas[ui] | replicas[vi];
                let u_has = ru & (1u64 << pu) != 0;
                let v_has = ru & (1u64 << pv) != 0;
                match (u_has, v_has) {
                    (true, false) => pu,
                    (false, true) => pv,
                    _ => {
                        if load[pu as usize] <= load[pv as usize] {
                            pu
                        } else {
                            pv
                        }
                    }
                }
            };
            if load[p as usize] >= cap {
                // Balance cap exceeded: spill to the least-loaded partition.
                p = (0..k).min_by_key(|&q| load[q as usize]).expect("k >= 1");
            }
            assignments.push(p);
            load[p as usize] += 1;
            replicas[ui] |= 1u64 << p;
            replicas[vi] |= 1u64 << p;
        }
        EdgePartition::new(graph, k, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_cut::testutil::{check_edge_partitioner, skewed_graph};
    use crate::vertex_cut::RandomEdgePartitioner;

    #[test]
    fn passes_common_checks() {
        check_edge_partitioner(&TwoPsL::default());
    }

    #[test]
    fn beats_random_on_replication() {
        let g = skewed_graph();
        let two = TwoPsL::default().partition_edges(&g, 8, 1).unwrap();
        let rnd = RandomEdgePartitioner.partition_edges(&g, 8, 1).unwrap();
        assert!(
            two.replication_factor() < 0.8 * rnd.replication_factor(),
            "2PS-L {} vs Random {}",
            two.replication_factor(),
            rnd.replication_factor()
        );
    }

    #[test]
    fn respects_edge_balance_cap() {
        let g = skewed_graph();
        let p = TwoPsL::default().partition_edges(&g, 8, 1).unwrap();
        // The cap allows alpha + 1-edge rounding slack.
        assert!(p.edge_balance() < 1.15, "edge balance {}", p.edge_balance());
    }

    #[test]
    fn rejects_alpha_below_one() {
        let g = skewed_graph();
        assert!(TwoPsL { alpha: 0.5 }.partition_edges(&g, 4, 0).is_err());
    }

    #[test]
    fn empty_graph_ok() {
        let g = gp_graph::Graph::from_edges(4, &[], false).unwrap();
        let p = TwoPsL::default().partition_edges(&g, 2, 0).unwrap();
        assert_eq!(p.assignments().len(), 0);
    }
}
