//! Greedy neighbourhood-expansion (NE) edge partitioning core.
//!
//! NE (Zhang et al., KDD 2017) grows one partition at a time: starting
//! from a low-degree seed vertex, it repeatedly *expands* the vertex with
//! the fewest still-unassigned incident edges, assigning those edges to
//! the current partition, until the partition reaches its edge budget.
//! Growing along the neighbourhood keeps almost every vertex internal to
//! one partition, which is why NE-family partitioners (including HEP)
//! achieve the lowest replication factors.
//!
//! This module provides the in-memory core reused by [`crate::vertex_cut::Hep`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use gp_graph::Graph;

/// Per-vertex incidence lists: `(neighbor, edge_id)` pairs.
///
/// The CSR in [`Graph`] stores neighbours but not edge ids; partitioning
/// edges in memory requires mapping each incident arc back to its
/// canonical edge, so we materialise that mapping once.
pub struct Incidence {
    offsets: Vec<u32>,
    /// `(other endpoint, canonical edge id)`.
    entries: Vec<(u32, u32)>,
}

impl Incidence {
    /// Build incidence lists for all vertices (both endpoints of every
    /// edge, regardless of direction).
    pub fn build(graph: &Graph) -> Self {
        let n = graph.num_vertices() as usize;
        let mut deg = vec![0u32; n];
        for (u, v) in graph.edges() {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + deg[v];
        }
        let mut entries = vec![(0u32, 0u32); offsets[n] as usize];
        let mut cursor = offsets[..n].to_vec();
        for (e, (u, v)) in graph.edges().enumerate() {
            let e = e as u32;
            entries[cursor[u as usize] as usize] = (v, e);
            cursor[u as usize] += 1;
            entries[cursor[v as usize] as usize] = (u, e);
            cursor[v as usize] += 1;
        }
        Incidence { offsets, entries }
    }

    /// Incident `(neighbor, edge_id)` pairs of `v`.
    #[inline]
    pub fn incident(&self, v: u32) -> &[(u32, u32)] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Total incidence degree (2 × edge count) of `v`.
    #[inline]
    pub fn degree(&self, v: u32) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }
}

/// Greedily partition the edges marked `true` in `eligible` into `k`
/// parts by neighbourhood expansion, writing results into `assignments`
/// (one entry per canonical edge; ineligible edges are left untouched).
///
/// `assignments` entries for eligible edges must start as `u32::MAX`.
pub fn ne_partition(
    graph: &Graph,
    incidence: &Incidence,
    eligible: &[bool],
    assignments: &mut [u32],
    k: u32,
) {
    const UNASSIGNED: u32 = u32::MAX;
    const NOT_IN_BOUNDARY: u32 = u32::MAX;
    let n = graph.num_vertices() as usize;
    let total_eligible = eligible.iter().filter(|&&e| e).count() as u64;
    if total_eligible == 0 {
        return;
    }

    // Remaining unassigned eligible degree per vertex.
    let mut remaining = vec![0u32; n];
    for (e, (u, v)) in graph.edges().enumerate() {
        if eligible[e] {
            remaining[u as usize] += 1;
            remaining[v as usize] += 1;
        }
    }

    // Global seed order: vertices by ascending eligible degree. Growing
    // from the fringe inward keeps expansions local.
    let mut seed_order: Vec<u32> = (0..n as u32).filter(|&v| remaining[v as usize] > 0).collect();
    seed_order.sort_unstable_by_key(|&v| remaining[v as usize]);
    let mut seed_cursor = 0usize;

    // Boundary membership: which partition's boundary set S the vertex
    // currently belongs to (the stamp value doubles as the reset).
    let mut boundary_stamp = vec![NOT_IN_BOUNDARY; n];

    let mut assigned = 0u64;
    for p in 0..k {
        let parts_left = u64::from(k - p);
        let budget = (total_eligible - assigned).div_ceil(parts_left);
        if budget == 0 {
            continue;
        }
        let mut taken = 0u64;
        // Min-heap over boundary vertices, keyed by an upper bound of
        // the number of *new* boundary vertices their expansion adds
        // (lazily revalidated on pop).
        let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();

        // Move `y` into the boundary S: allocate every still-unassigned
        // eligible edge between `y` and S (the partition's edge set is
        // the subgraph induced by S), then queue `y` for expansion.
        // Returns the number of edges allocated.
        let enter_boundary = |y: u32,
                                  heap: &mut BinaryHeap<Reverse<(u32, u32)>>,
                                  boundary_stamp: &mut [u32],
                                  remaining: &mut [u32],
                                  assignments: &mut [u32],
                                  taken: &mut u64,
                                  budget: u64| {
            boundary_stamp[y as usize] = p;
            for &(z, e) in incidence.incident(y) {
                if *taken >= budget {
                    break;
                }
                if eligible[e as usize]
                    && assignments[e as usize] == UNASSIGNED
                    && boundary_stamp[z as usize] == p
                {
                    assignments[e as usize] = p;
                    *taken += 1;
                    remaining[y as usize] -= 1;
                    remaining[z as usize] -= 1;
                }
            }
            if remaining[y as usize] > 0 {
                heap.push(Reverse((remaining[y as usize], y)));
            }
        };

        while taken < budget {
            // Pick the boundary vertex whose expansion adds the fewest
            // new boundary vertices.
            let next = loop {
                match heap.pop() {
                    Some(Reverse((est, v))) => {
                        if remaining[v as usize] == 0 {
                            continue; // fully consumed
                        }
                        // Exact expansion cost: unassigned neighbours
                        // not yet in S. Counts only shrink, so `est` is
                        // an upper bound.
                        let mut exact = 0u32;
                        for &(w, e) in incidence.incident(v) {
                            if eligible[e as usize]
                                && assignments[e as usize] == UNASSIGNED
                                && boundary_stamp[w as usize] != p
                            {
                                exact += 1;
                            }
                        }
                        if exact < est {
                            if let Some(Reverse((next_est, _))) = heap.peek() {
                                if exact > *next_est {
                                    heap.push(Reverse((exact, v)));
                                    continue;
                                }
                            }
                        }
                        break Some(v);
                    }
                    None => {
                        // Frontier exhausted: pull a fresh low-degree
                        // seed into the boundary.
                        let mut found = None;
                        while seed_cursor < seed_order.len() {
                            let v = seed_order[seed_cursor];
                            if remaining[v as usize] > 0 {
                                found = Some(v);
                                break;
                            }
                            seed_cursor += 1;
                        }
                        break found;
                    }
                }
            };
            let Some(x) = next else { break };
            if boundary_stamp[x as usize] != p {
                // Fresh seed: joins S first (allocates nothing yet).
                enter_boundary(
                    x,
                    &mut heap,
                    &mut boundary_stamp,
                    &mut remaining,
                    assignments,
                    &mut taken,
                    budget,
                );
            }
            // Expand x: every unassigned neighbour joins S, allocating
            // the edges it closes with S (including the edge to x).
            for &(w, e) in incidence.incident(x) {
                if taken >= budget {
                    break;
                }
                if eligible[e as usize]
                    && assignments[e as usize] == UNASSIGNED
                    && boundary_stamp[w as usize] != p
                {
                    enter_boundary(
                        w,
                        &mut heap,
                        &mut boundary_stamp,
                        &mut remaining,
                        assignments,
                        &mut taken,
                        budget,
                    );
                }
            }
        }
        assigned += taken;
    }

    // Safety net: any eligible edge still unassigned (possible when the
    // last partition's budget rounds down) goes to the least-loaded
    // partition.
    let mut loads = vec![0u64; k as usize];
    for (e, &a) in assignments.iter().enumerate() {
        if eligible[e] && a != UNASSIGNED {
            loads[a as usize] += 1;
        }
    }
    for (e, a) in assignments.iter_mut().enumerate() {
        if eligible[e] && *a == UNASSIGNED {
            let p = (0..k).min_by_key(|&p| loads[p as usize]).expect("k >= 1");
            *a = p;
            loads[p as usize] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::EdgePartition;
    use crate::vertex_cut::testutil::skewed_graph;

    #[test]
    fn incidence_roundtrip() {
        let g = gp_graph::Graph::from_edges(3, &[(0, 1), (1, 2)], false).unwrap();
        let inc = Incidence::build(&g);
        assert_eq!(inc.degree(1), 2);
        assert_eq!(inc.degree(0), 1);
        let pairs = inc.incident(1);
        let mut nbrs: Vec<u32> = pairs.iter().map(|&(w, _)| w).collect();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![0, 2]);
    }

    #[test]
    fn assigns_every_eligible_edge() {
        let g = skewed_graph();
        let inc = Incidence::build(&g);
        let eligible = vec![true; g.num_edges() as usize];
        let mut assignments = vec![u32::MAX; g.num_edges() as usize];
        ne_partition(&g, &inc, &eligible, &mut assignments, 4);
        assert!(assignments.iter().all(|&a| a < 4));
        let part = EdgePartition::new(&g, 4, assignments).unwrap();
        assert!(part.edge_balance() < 1.3, "edge balance {}", part.edge_balance());
    }

    #[test]
    fn low_replication_factor() {
        let g = skewed_graph();
        let inc = Incidence::build(&g);
        let eligible = vec![true; g.num_edges() as usize];
        let mut assignments = vec![u32::MAX; g.num_edges() as usize];
        ne_partition(&g, &inc, &eligible, &mut assignments, 8);
        let part = EdgePartition::new(&g, 8, assignments).unwrap();
        // NE should be dramatically better than random (~5+ on this graph).
        assert!(part.replication_factor() < 2.5, "rf {}", part.replication_factor());
    }

    #[test]
    fn respects_eligibility_mask() {
        let g = skewed_graph();
        let inc = Incidence::build(&g);
        let m = g.num_edges() as usize;
        let mut eligible = vec![false; m];
        for e in eligible.iter_mut().take(m / 2) {
            *e = true;
        }
        let mut assignments = vec![u32::MAX; m];
        ne_partition(&g, &inc, &eligible, &mut assignments, 4);
        for e in 0..m {
            if eligible[e] {
                assert!(assignments[e] < 4);
            } else {
                assert_eq!(assignments[e], u32::MAX);
            }
        }
    }

    #[test]
    fn no_eligible_edges_is_noop() {
        let g = skewed_graph();
        let inc = Incidence::build(&g);
        let eligible = vec![false; g.num_edges() as usize];
        let mut assignments = vec![u32::MAX; g.num_edges() as usize];
        ne_partition(&g, &inc, &eligible, &mut assignments, 4);
        assert!(assignments.iter().all(|&a| a == u32::MAX));
    }
}
