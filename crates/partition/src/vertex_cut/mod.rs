//! Edge partitioners (vertex-cut).
//!
//! Every algorithm assigns each *edge* to exactly one partition; a vertex
//! incident to edges in several partitions is replicated to all of them.
//! The key quality metric is the mean replication factor, which the paper
//! shows to correlate almost perfectly with both network traffic and
//! memory footprint of full-batch GNN training.

pub mod dbh;
pub mod greedy;
pub mod grid2d;
pub mod hdrf;
pub mod hep;
pub mod ne;
pub mod random_ep;
pub mod twops;

pub use dbh::{mix64 as dbh_mix, Dbh};
pub use greedy::Greedy;
pub use grid2d::Grid2d;
pub use hdrf::Hdrf;
pub use hep::Hep;
pub use random_ep::RandomEdgePartitioner;
pub use twops::TwoPsL;

#[cfg(test)]
pub(crate) mod testutil {
    use gp_graph::generators::{rmat, RmatParams};
    use gp_graph::Graph;

    use crate::assignment::EdgePartition;
    use crate::traits::EdgePartitioner;

    /// A small skewed test graph.
    pub fn skewed_graph() -> Graph {
        rmat(RmatParams { scale: 9, edge_factor: 8, ..RmatParams::default() }, 7).unwrap()
    }

    /// Checks every edge partitioner must pass.
    pub fn check_edge_partitioner(p: &dyn EdgePartitioner) {
        let g = skewed_graph();
        for k in [1u32, 2, 4, 8] {
            let part = p.partition_edges(&g, k, 42).unwrap();
            validate(&g, &part, k);
        }
        // Determinism.
        let a = p.partition_edges(&g, 4, 1).unwrap();
        let b = p.partition_edges(&g, 4, 1).unwrap();
        assert_eq!(a.assignments(), b.assignments(), "{} not deterministic", p.name());
    }

    /// Structural validity of an edge partition.
    pub fn validate(g: &Graph, part: &EdgePartition, k: u32) {
        assert_eq!(part.k(), k);
        assert_eq!(part.assignments().len(), g.num_edges() as usize);
        let total: u64 = part.edge_counts().iter().sum();
        assert_eq!(total, u64::from(g.num_edges()), "all edges assigned exactly once");
        assert!(part.replication_factor() >= 1.0 - 1e-12);
        assert!(part.replication_factor() <= f64::from(k) + 1e-12);
    }
}
