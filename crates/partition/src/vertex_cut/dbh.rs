//! DBH — degree-based hashing (Xie et al., NeurIPS 2014).
//!
//! Stateless streaming vertex-cut: edge `{u, v}` is placed by hashing its
//! *lower-degree* endpoint. Low-degree vertices therefore get all their
//! edges on one partition (no replication), while hubs — which would be
//! replicated anyway — absorb the cut. Requires vertex degrees, which are
//! available after one pass over the stream.

use gp_graph::Graph;

use crate::assignment::EdgePartition;
use crate::error::PartitionError;
use crate::traits::EdgePartitioner;

/// Degree-based hashing edge partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dbh;

/// SplitMix64 finaliser — a cheap, well-mixed integer hash, shared by
/// hash-based partitioners and master selection.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl EdgePartitioner for Dbh {
    fn name(&self) -> &'static str {
        "DBH"
    }

    fn partition_edges(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<EdgePartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        let mut assignments = Vec::with_capacity(graph.num_edges() as usize);
        for (u, v) in graph.edges() {
            let (du, dv) = (graph.degree(u), graph.degree(v));
            // Hash the lower-degree endpoint; ties broken by id for
            // determinism.
            let key = if du < dv || (du == dv && u <= v) { u } else { v };
            let h = mix64(u64::from(key) ^ seed);
            assignments.push((h % u64::from(k)) as u32);
        }
        EdgePartition::new(graph, k, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_cut::testutil::{check_edge_partitioner, skewed_graph};
    use crate::vertex_cut::RandomEdgePartitioner;

    #[test]
    fn passes_common_checks() {
        check_edge_partitioner(&Dbh);
    }

    #[test]
    fn beats_random_on_replication() {
        let g = skewed_graph();
        let dbh = Dbh.partition_edges(&g, 8, 1).unwrap();
        let rnd = RandomEdgePartitioner.partition_edges(&g, 8, 1).unwrap();
        assert!(
            dbh.replication_factor() < rnd.replication_factor(),
            "DBH {} vs Random {}",
            dbh.replication_factor(),
            rnd.replication_factor()
        );
    }

    #[test]
    fn low_degree_vertices_not_replicated() {
        let g = skewed_graph();
        let p = Dbh.partition_edges(&g, 8, 1).unwrap();
        // Degree-1 vertices always hash their single edge by themselves
        // or their (hub) neighbour; either way they have exactly 1 replica.
        for v in g.vertices() {
            if g.degree(v) == 1 {
                assert_eq!(p.replica_count(v), 1);
            }
        }
    }

    #[test]
    fn mixer_spreads_bits() {
        // Adjacent inputs should map to very different outputs.
        let a = mix64(1);
        let b = mix64(2);
        assert!((a ^ b).count_ones() > 10);
    }
}
