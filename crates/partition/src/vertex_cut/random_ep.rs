//! Random edge partitioning (stateless streaming).
//!
//! The paper's baseline: every edge goes to a uniformly random partition.
//! Perfect edge balance in expectation, but the replication factor
//! approaches `min(k, degree)` for every vertex — the worst case.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use gp_graph::Graph;

use crate::assignment::EdgePartition;
use crate::error::PartitionError;
use crate::traits::EdgePartitioner;

/// Uniformly random edge partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomEdgePartitioner;

impl EdgePartitioner for RandomEdgePartitioner {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn partition_edges(
        &self,
        graph: &Graph,
        k: u32,
        seed: u64,
    ) -> Result<EdgePartition, PartitionError> {
        if k == 0 || k > crate::MAX_PARTITIONS {
            return Err(PartitionError::BadPartitionCount { k });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let assignments: Vec<u32> =
            (0..graph.num_edges()).map(|_| rng.random_range(0..k)).collect();
        EdgePartition::new(graph, k, assignments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vertex_cut::testutil::{check_edge_partitioner, skewed_graph};

    #[test]
    fn passes_common_checks() {
        check_edge_partitioner(&RandomEdgePartitioner);
    }

    #[test]
    fn roughly_balanced() {
        let g = skewed_graph();
        let p = RandomEdgePartitioner.partition_edges(&g, 8, 3).unwrap();
        assert!(p.edge_balance() < 1.15, "edge balance {}", p.edge_balance());
    }

    #[test]
    fn high_replication_factor() {
        let g = skewed_graph();
        let p = RandomEdgePartitioner.partition_edges(&g, 8, 3).unwrap();
        // Random replicates aggressively on a skewed graph.
        assert!(p.replication_factor() > 2.0, "rf {}", p.replication_factor());
    }

    #[test]
    fn rejects_zero_k() {
        let g = skewed_graph();
        assert!(RandomEdgePartitioner.partition_edges(&g, 0, 0).is_err());
    }
}
