//! Error type for partitioning operations.

use std::fmt;

/// Errors produced by partitioners and assignment constructors.
#[derive(Debug)]
pub enum PartitionError {
    /// `k` was zero or exceeded [`crate::MAX_PARTITIONS`].
    BadPartitionCount {
        /// Requested number of partitions.
        k: u32,
    },
    /// The assignment vector length did not match the graph.
    LengthMismatch {
        /// Expected number of assignments.
        expected: usize,
        /// Actual number supplied.
        actual: usize,
    },
    /// An assignment referenced partition id `>= k`.
    AssignmentOutOfRange {
        /// Offending partition id.
        partition: u32,
        /// Number of partitions.
        k: u32,
    },
    /// The graph cannot be partitioned (e.g. no edges for an edge
    /// partitioner).
    EmptyGraph,
    /// A partitioner was configured with invalid parameters.
    InvalidParameter(String),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::BadPartitionCount { k } => {
                write!(f, "partition count {k} out of range [1, {}]", crate::MAX_PARTITIONS)
            }
            PartitionError::LengthMismatch { expected, actual } => {
                write!(f, "assignment length {actual} does not match expected {expected}")
            }
            PartitionError::AssignmentOutOfRange { partition, k } => {
                write!(f, "assignment to partition {partition} >= k = {k}")
            }
            PartitionError::EmptyGraph => write!(f, "graph has nothing to partition"),
            PartitionError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for PartitionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(PartitionError::BadPartitionCount { k: 0 }.to_string().contains("0"));
        assert!(PartitionError::LengthMismatch { expected: 3, actual: 5 }
            .to_string()
            .contains("5"));
        assert!(PartitionError::AssignmentOutOfRange { partition: 9, k: 4 }
            .to_string()
            .contains("9"));
        assert!(PartitionError::EmptyGraph.to_string().contains("nothing"));
    }
}
