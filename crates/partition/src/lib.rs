//! # gp-partition — twelve graph partitioners with quality metrics
//!
//! Implements the full partitioner roster of the paper's Table 2:
//!
//! | Partitioner | Cut type | Category | Module |
//! |---|---|---|---|
//! | Random | vertex-cut | stateless streaming | [`vertex_cut::RandomEdgePartitioner`] |
//! | DBH | vertex-cut | stateless streaming | [`vertex_cut::Dbh`] |
//! | HDRF | vertex-cut | stateful streaming | [`vertex_cut::Hdrf`] |
//! | 2PS-L | vertex-cut | stateful streaming | [`vertex_cut::TwoPsL`] |
//! | HEP-10 / HEP-100 | vertex-cut | hybrid | [`vertex_cut::Hep`] |
//! | Greedy¹ | vertex-cut | stateful streaming | [`vertex_cut::Greedy`] |
//! | Grid2D¹ | vertex-cut | stateless streaming | [`vertex_cut::Grid2d`] |
//! | Random | edge-cut | stateless streaming | [`edge_cut::RandomVertexPartitioner`] |
//! | LDG | edge-cut | stateful streaming | [`edge_cut::Ldg`] |
//! | Spinner | edge-cut | in-memory (label propagation) | [`edge_cut::Spinner`] |
//! | METIS | edge-cut | in-memory (multilevel) | [`edge_cut::Metis`] |
//! | ByteGNN | edge-cut | in-memory (BFS blocks) | [`edge_cut::ByteGnn`] |
//! | KaHIP | edge-cut | in-memory (multilevel + FM) | [`edge_cut::Kahip`] |
//! | ReLDG¹ | edge-cut | restreaming | [`edge_cut::ReLdg`] |
//!
//! ¹ extensions beyond the paper's roster: PowerGraph's oblivious Greedy
//! (the lineage ancestor of HDRF), the 2-D grid scheme with its provable
//! replication bound, and restreaming LDG (the paper's reference 33).
//!
//! *Vertex-cut* (edge partitioning) assigns every **edge** to exactly one
//! partition; cut vertices are replicated. *Edge-cut* (vertex
//! partitioning) assigns every **vertex** to exactly one partition; cut
//! edges cross partitions. The quality metrics of Section 2.1 —
//! replication factor, edge/vertex balance, edge-cut ratio,
//! training-vertex balance — live in [`metrics`] and on the assignment
//! types themselves.

pub mod assignment;
pub mod edge_cut;
pub mod error;
pub mod incremental;
pub mod metrics;
pub mod traits;
pub mod vertex_cut;

pub use assignment::{EdgePartition, VertexPartition, MAX_PARTITIONS};
pub use incremental::{
    full_edge_partitioner, full_vertex_partitioner, modeled_partition_seconds,
    IncrementalEdgePartitioner, IncrementalVertexPartitioner, RepartitionPolicy,
};
pub use error::PartitionError;
pub use traits::{EdgePartitioner, VertexPartitioner};

/// Convenience prelude with every partitioner and the core types.
pub mod prelude {
    pub use crate::assignment::{EdgePartition, VertexPartition};
    pub use crate::edge_cut::{ByteGnn, Kahip, Ldg, Metis, RandomVertexPartitioner, ReLdg, Spinner};
    pub use crate::error::PartitionError;
    pub use crate::incremental::{
        full_edge_partitioner, full_vertex_partitioner, modeled_partition_seconds,
        IncrementalEdgePartitioner, IncrementalVertexPartitioner, RepartitionPolicy,
    };
    pub use crate::traits::{EdgePartitioner, VertexPartitioner};
    pub use crate::vertex_cut::{Dbh, Greedy, Grid2d, Hdrf, Hep, RandomEdgePartitioner, TwoPsL};
}
