//! Partitioning quality metrics (paper Section 2.1).
//!
//! Most metrics are computed eagerly by [`EdgePartition`] /
//! [`VertexPartition`]; this module bundles them into report-friendly
//! summary structs and adds the mini-batch-aware metrics used in the
//! DistDGL analysis (training-vertex balance).

use crate::assignment::{EdgePartition, VertexPartition};

/// Quality summary for an edge partitioning (vertex-cut).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgePartitionQuality {
    /// Mean replication factor `RF(P)`.
    pub replication_factor: f64,
    /// Edge balance `max/mean`.
    pub edge_balance: f64,
    /// Vertex balance `max/mean` over covered vertices.
    pub vertex_balance: f64,
    /// Number of partitions.
    pub k: u32,
}

impl EdgePartitionQuality {
    /// Compute the summary from an assignment.
    pub fn of(partition: &EdgePartition) -> Self {
        EdgePartitionQuality {
            replication_factor: partition.replication_factor(),
            edge_balance: partition.edge_balance(),
            vertex_balance: partition.vertex_balance(),
            k: partition.k(),
        }
    }
}

/// Quality summary for a vertex partitioning (edge-cut).
#[derive(Debug, Clone, PartialEq)]
pub struct VertexPartitionQuality {
    /// Edge-cut ratio `λ`.
    pub edge_cut_ratio: f64,
    /// Vertex balance `max/mean`.
    pub vertex_balance: f64,
    /// Training-vertex balance `max/mean` (1.0 when no training set was
    /// provided).
    pub train_vertex_balance: f64,
    /// Number of partitions.
    pub k: u32,
}

impl VertexPartitionQuality {
    /// Compute the summary; `train_vertices` may be empty.
    pub fn of(partition: &VertexPartition, train_vertices: &[u32]) -> Self {
        let tvb = if train_vertices.is_empty() {
            1.0
        } else {
            partition.subset_balance(train_vertices)
        };
        VertexPartitionQuality {
            edge_cut_ratio: partition.edge_cut_ratio(),
            vertex_balance: partition.vertex_balance(),
            train_vertex_balance: tvb,
            k: partition.k(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::Graph;

    fn cycle() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)], false).unwrap()
    }

    #[test]
    fn edge_quality_summary() {
        let g = cycle();
        let ep = EdgePartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let q = EdgePartitionQuality::of(&ep);
        assert!((q.replication_factor - 1.5).abs() < 1e-12);
        assert_eq!(q.edge_balance, 1.0);
        assert_eq!(q.k, 2);
    }

    #[test]
    fn vertex_quality_summary_with_train_set() {
        let g = cycle();
        let vp = VertexPartition::new(&g, 2, vec![0, 0, 1, 1]).unwrap();
        let q = VertexPartitionQuality::of(&vp, &[0, 1]);
        assert!((q.edge_cut_ratio - 0.5).abs() < 1e-12);
        assert!((q.train_vertex_balance - 2.0).abs() < 1e-12);
    }

    #[test]
    fn vertex_quality_summary_no_train_set() {
        let g = cycle();
        let vp = VertexPartition::new(&g, 2, vec![0, 1, 0, 1]).unwrap();
        let q = VertexPartitionQuality::of(&vp, &[]);
        assert_eq!(q.train_vertex_balance, 1.0);
    }
}
