use gp_graph::{DatasetId, GraphScale};
use gp_partition::prelude::*;

fn main() {
    let scale = GraphScale::Tiny;
    for id in DatasetId::ALL {
        let g = id.generate(scale).unwrap();
        print!("{} EP-RF(k=8): ", id.name());
        let eps: Vec<(&str, Box<dyn EdgePartitioner>)> = vec![
            ("Rnd", Box::new(RandomEdgePartitioner)),
            ("DBH", Box::new(Dbh)),
            ("HDRF", Box::new(Hdrf::default())),
            ("2PS", Box::new(TwoPsL::default())),
            ("H10", Box::new(Hep::hep10())),
            ("H100", Box::new(Hep::hep100())),
        ];
        for (n, p) in &eps {
            let t = std::time::Instant::now();
            let part = p.partition_edges(&g, 8, 1).unwrap();
            print!("{}={:.2}/vb{:.2}({:.0}ms) ", n, part.replication_factor(), part.vertex_balance(), t.elapsed().as_secs_f64()*1000.0);
        }
        println!();
        print!("{} VP-cut(k=8): ", id.name());
        let vps: Vec<(&str, Box<dyn VertexPartitioner>)> = vec![
            ("Rnd", Box::new(RandomVertexPartitioner)),
            ("LDG", Box::new(Ldg::default())),
            ("Spin", Box::new(Spinner::default())),
            ("METIS", Box::new(Metis::default())),
            ("Byte", Box::new(ByteGnn::default())),
            ("KaHIP", Box::new(Kahip::default())),
        ];
        for (n, p) in &vps {
            let t = std::time::Instant::now();
            let part = p.partition_vertices(&g, 8, 1).unwrap();
            print!("{}={:.3}/vb{:.2}({:.0}ms) ", n, part.edge_cut_ratio(), part.vertex_balance(), t.elapsed().as_secs_f64()*1000.0);
        }
        println!();
    }
}
