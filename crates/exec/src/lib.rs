//! # gp-exec — deterministic parallel sweep executor
//!
//! The experiment grids of this workspace (partitioner × k × model ×
//! fanout, fault sweeps, mitigation sweeps, traced runs) are
//! embarrassingly parallel: every cell is a pure function of its
//! inputs. This crate runs such cells on a std-only work-stealing
//! thread pool while keeping the output **bit-identical to the
//! sequential path**, so the simulator's determinism guarantees survive
//! parallel execution:
//!
//! * **Index-addressed slots.** [`par_map_indexed`] takes `jobs` as a
//!   vector of closures; job `i`'s result is written into slot `i` of
//!   the output vector regardless of which worker ran it or when it
//!   finished. Aggregation downstream therefore always folds in index
//!   order — the same order the serial loop used — and `f64` sums come
//!   out `==`-equal, not merely approximately equal.
//! * **Serial oracle.** With [`Threads::serial`] (one thread) the jobs
//!   run in index order on the calling thread with no pool at all —
//!   this is the old sequential path, kept as the reference the
//!   conformance suite compares every thread count against.
//! * **Work stealing.** Jobs are dealt round-robin onto per-worker
//!   deques. An owner pops from the back of its own deque (LIFO, cache
//!   warm); an idle worker steals from the front of a victim's deque
//!   (FIFO, chase-steal style), so ragged cell costs balance without a
//!   central queue. Steals are counted ([`ParReport::steals`]).
//! * **Panic isolation.** A panicking cell poisons only its own slot
//!   ([`CellPanic`] with the captured message); every other cell still
//!   completes and the caller decides whether to propagate.
//! * **Per-cell timing.** [`ParReport::cell_seconds`] holds each cell's
//!   wall time and [`ParReport::wall_seconds`] the whole map's, so
//!   front ends can report the sweep runner's own sequential-vs-parallel
//!   speedup ([`ParReport::speedup`]).
//!
//! No external dependencies: scoped threads, `Mutex<VecDeque>` deques
//! and atomics from `std` only.
//!
//! ```
//! use gp_exec::{par_map_indexed, Threads};
//!
//! let jobs: Vec<_> = (0..32u64).map(|i| move || i * i).collect();
//! let par = par_map_indexed(Threads::new(4), jobs);
//! let jobs: Vec<_> = (0..32u64).map(|i| move || i * i).collect();
//! let serial = par_map_indexed(Threads::serial(), jobs);
//! assert_eq!(par.into_values(), serial.into_values());
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use gp_prof::now;

/// Worker-count policy for [`par_map_indexed`].
///
/// `Threads::auto()` (the `Default`) resolves to the machine's available
/// parallelism at call time; `Threads::serial()` is the sequential
/// reference path; `Threads::new(n)` pins an explicit count. The pool
/// never spawns more workers than there are jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Threads(usize);

impl Threads {
    /// Use the machine's available parallelism (resolved at call time).
    pub const fn auto() -> Self {
        Threads(0)
    }

    /// One worker: run jobs in index order on the calling thread. This
    /// is the old serial path and the conformance oracle.
    pub const fn serial() -> Self {
        Threads(1)
    }

    /// An explicit worker count; `0` means [`Threads::auto`].
    pub const fn new(n: usize) -> Self {
        Threads(n)
    }

    /// Parse a `--threads` value: a positive integer, `0` or `auto` for
    /// [`Threads::auto`].
    pub fn parse(s: &str) -> Option<Self> {
        if s == "auto" {
            return Some(Threads::auto());
        }
        s.parse::<usize>().ok().map(Threads)
    }

    /// The resolved worker count (>= 1).
    pub fn count(self) -> usize {
        if self.0 == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.0
        }
    }

    /// Whether this policy resolves to the serial reference path.
    pub fn is_serial(self) -> bool {
        self.count() == 1
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::auto()
    }
}

/// A two-level width policy: how many workers the *sweep* pool fans
/// cells onto, and how many workers each engine uses *inside* an epoch
/// (intra-epoch `par_map_indexed` over per-worker compute, blocked
/// kernels, per-worker sampling).
///
/// Every front end that used to take a bare [`Threads`] now accepts
/// `impl Into<Parallelism>`; a bare `Threads` converts with a serial
/// engine level, so existing call sites keep their exact behaviour.
/// Both levels are index-addressed, so any `(sweep, engine)` pair is
/// bit-identical to `(serial, serial)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    /// Pool width for sweep-level cells (one job per grid cell).
    pub sweep: Threads,
    /// Pool width for intra-epoch work inside each engine.
    pub engine: Threads,
}

impl Parallelism {
    /// Serial at both levels — the conformance oracle.
    pub const fn serial() -> Self {
        Parallelism { sweep: Threads::serial(), engine: Threads::serial() }
    }

    /// An explicit `(sweep, engine)` pair.
    pub const fn new(sweep: Threads, engine: Threads) -> Self {
        Parallelism { sweep, engine }
    }

    /// The same width at both levels.
    pub const fn uniform(threads: Threads) -> Self {
        Parallelism { sweep: threads, engine: threads }
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::serial()
    }
}

impl From<Threads> for Parallelism {
    /// A bare sweep width with a serial engine level — exactly what
    /// every pre-existing `threads: Threads` call site meant.
    fn from(sweep: Threads) -> Self {
        Parallelism { sweep, engine: Threads::serial() }
    }
}

impl fmt::Display for Threads {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "auto({})", self.count())
        } else {
            write!(f, "{}", self.0)
        }
    }
}

/// A cell that panicked: its job index and the captured panic message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPanic {
    /// Index of the poisoned slot.
    pub index: usize,
    /// The panic payload, stringified (`&str` / `String` payloads are
    /// preserved verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl fmt::Display for CellPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell {} panicked: {}", self.index, self.message)
    }
}

/// The outcome of one [`par_map_indexed`] call: index-addressed results
/// plus the pool's own accounting.
#[derive(Debug)]
pub struct ParReport<T> {
    /// Slot `i` holds job `i`'s value, or the panic that poisoned it.
    results: Vec<Result<T, CellPanic>>,
    /// Wall time of each cell, index-addressed (seconds).
    pub cell_seconds: Vec<f64>,
    /// Wall time of the whole map call (seconds).
    pub wall_seconds: f64,
    /// Number of jobs a worker took from another worker's deque.
    pub steals: u64,
    /// Resolved worker count actually used.
    pub threads: usize,
}

/// The pool-accounting part of a [`ParReport`], detached from the
/// results so callers can hand the results on and still report timing.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecTiming {
    /// Wall time of each cell, index-addressed (seconds).
    pub cell_seconds: Vec<f64>,
    /// Wall time of the whole map call (seconds).
    pub wall_seconds: f64,
    /// Number of jobs a worker took from another worker's deque.
    pub steals: u64,
    /// Resolved worker count actually used.
    pub threads: usize,
}

impl ExecTiming {
    /// Sum of per-cell wall times in index order — an estimate of what
    /// the serial path would have taken.
    pub fn serial_seconds(&self) -> f64 {
        self.cell_seconds.iter().sum()
    }

    /// `serial_seconds / wall_seconds` (1.0 for a zero-length wall).
    pub fn speedup(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 1.0;
        }
        self.serial_seconds() / self.wall_seconds
    }

    /// Median per-cell wall time (0.0 when the map ran zero jobs).
    /// Computed on demand — no new serialized fields, so existing
    /// consumers of the struct see an unchanged shape.
    pub fn cell_p50(&self) -> f64 {
        if self.cell_seconds.is_empty() {
            return 0.0;
        }
        let mut sorted = self.cell_seconds.clone();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        }
    }

    /// Slowest cell's wall time (0.0 when the map ran zero jobs).
    pub fn cell_max(&self) -> f64 {
        self.cell_seconds.iter().copied().fold(0.0, f64::max)
    }
}

impl<T> ParReport<T> {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Snapshot of the pool accounting, detached from the results.
    pub fn timing(&self) -> ExecTiming {
        ExecTiming {
            cell_seconds: self.cell_seconds.clone(),
            wall_seconds: self.wall_seconds,
            steals: self.steals,
            threads: self.threads,
        }
    }

    /// Whether the map ran zero jobs.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The poisoned slots, in index order.
    pub fn panics(&self) -> Vec<&CellPanic> {
        self.results.iter().filter_map(|r| r.as_ref().err()).collect()
    }

    /// The index-addressed slot vector.
    pub fn into_results(self) -> Vec<Result<T, CellPanic>> {
        self.results
    }

    /// All values in index order.
    ///
    /// # Panics
    ///
    /// Panics with the first poisoned cell's message if any cell
    /// panicked — the parallel analogue of the serial loop's abort,
    /// deferred until every healthy cell has completed.
    pub fn into_values(self) -> Vec<T> {
        self.results
            .into_iter()
            .map(|r| match r {
                Ok(v) => v,
                Err(p) => panic!("{p}"),
            })
            .collect()
    }

    /// Sum of per-cell wall times in index order — an estimate of what
    /// the serial path would have taken.
    pub fn serial_seconds(&self) -> f64 {
        self.cell_seconds.iter().sum()
    }

    /// `serial_seconds / wall_seconds`: the sweep runner's own
    /// wall-clock speedup (1.0 for the serial path, modulo noise).
    pub fn speedup(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 1.0;
        }
        self.serial_seconds() / self.wall_seconds
    }
}

/// Message stringification for a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one job under panic isolation, timing it.
fn run_cell<T, F: FnOnce() -> T>(index: usize, job: F) -> (Result<T, CellPanic>, f64) {
    let _prof = gp_prof::scope("exec.cell");
    let start = now();
    let result = catch_unwind(AssertUnwindSafe(job))
        .map_err(|payload| CellPanic { index, message: panic_message(payload) });
    (result, start.elapsed_secs())
}

/// Map `jobs` to an index-addressed result vector on a work-stealing
/// pool of `threads` workers.
///
/// Job `i`'s result lands in slot `i` no matter which worker ran it, so
/// for pure jobs the output is **bit-identical for every thread count**
/// — including `Threads::serial()`, which runs the jobs in index order
/// on the calling thread (the reference oracle). A panicking job
/// poisons only its own slot; see [`ParReport::into_values`] for the
/// propagating accessor.
pub fn par_map_indexed<T, F>(threads: Threads, jobs: Vec<F>) -> ParReport<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let wall = now();
    let n_jobs = jobs.len();
    let workers = threads.count().min(n_jobs).max(1);

    if workers <= 1 {
        // Serial reference path: index order, no pool.
        let mut results = Vec::with_capacity(n_jobs);
        let mut cell_seconds = Vec::with_capacity(n_jobs);
        for (i, job) in jobs.into_iter().enumerate() {
            let (r, secs) = run_cell(i, job);
            results.push(r);
            cell_seconds.push(secs);
        }
        return ParReport {
            results,
            cell_seconds,
            wall_seconds: wall.elapsed_secs(),
            steals: 0,
            threads: 1,
        };
    }

    // Deal jobs round-robin onto per-worker deques.
    let mut deques: Vec<Mutex<VecDeque<(usize, F)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        deques[i % workers].get_mut().expect("fresh mutex").push_back((i, job));
    }
    let deques = &deques;
    let steals = AtomicU64::new(0);
    let steals_ref = &steals;

    let mut per_worker: Vec<Vec<(usize, Result<T, CellPanic>, f64)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            // Own deque first: pop the back (LIFO).
                            let own = deques[me].lock().expect("deque lock").pop_back();
                            let job = match own {
                                Some(j) => Some(j),
                                None => {
                                    // Steal from a victim's front (FIFO).
                                    let mut stolen = None;
                                    for v in (me + 1..workers).chain(0..me) {
                                        if let Some(j) =
                                            deques[v].lock().expect("deque lock").pop_front()
                                        {
                                            steals_ref.fetch_add(1, Ordering::Relaxed);
                                            stolen = Some(j);
                                            break;
                                        }
                                    }
                                    stolen
                                }
                            };
                            // No job anywhere: the set is fixed up
                            // front (cells never spawn cells), so all
                            // deques empty means the sweep is drained.
                            let Some((index, job)) = job else { break };
                            let (r, secs) = run_cell(index, job);
                            done.push((index, r, secs));
                        }
                        done
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker never panics")).collect()
        });

    // Write results into the index-addressed slot vector. Every index
    // appears exactly once across workers.
    let mut results: Vec<Option<Result<T, CellPanic>>> = (0..n_jobs).map(|_| None).collect();
    let mut cell_seconds = vec![0.0; n_jobs];
    for worker_done in per_worker.iter_mut() {
        for (index, r, secs) in worker_done.drain(..) {
            cell_seconds[index] = secs;
            let slot = &mut results[index];
            debug_assert!(slot.is_none(), "slot {index} filled twice");
            *slot = Some(r);
        }
    }
    ParReport {
        results: results
            .into_iter()
            .map(|s| s.expect("every job ran exactly once"))
            .collect(),
        cell_seconds,
        wall_seconds: wall.elapsed_secs(),
        steals: steals.load(Ordering::Relaxed),
        threads: workers,
    }
}

/// [`par_map_indexed`] for the common case: values in index order,
/// propagating the first cell panic (after all healthy cells finished).
pub fn par_map<T, F>(threads: Threads, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    par_map_indexed(threads, jobs).into_values()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn threads_resolution() {
        assert_eq!(Threads::serial().count(), 1);
        assert!(Threads::serial().is_serial());
        assert_eq!(Threads::new(6).count(), 6);
        assert!(Threads::auto().count() >= 1);
        assert_eq!(Threads::new(0), Threads::auto());
        assert_eq!(Threads::default(), Threads::auto());
    }

    #[test]
    fn threads_parse() {
        assert_eq!(Threads::parse("4"), Some(Threads::new(4)));
        assert_eq!(Threads::parse("auto"), Some(Threads::auto()));
        assert_eq!(Threads::parse("0"), Some(Threads::auto()));
        assert_eq!(Threads::parse("-1"), None);
        assert_eq!(Threads::parse("many"), None);
        assert_eq!(Threads::new(8).to_string(), "8");
        assert!(Threads::auto().to_string().starts_with("auto("));
    }

    #[test]
    fn zero_jobs_is_empty_report() {
        let report = par_map_indexed(Threads::new(4), Vec::<fn() -> u32>::new());
        assert!(report.is_empty());
        assert_eq!(report.len(), 0);
        assert_eq!(report.steals, 0);
        assert_eq!(report.threads, 1, "no pool spun up for zero jobs");
        assert!(report.panics().is_empty());
        assert!(report.into_values().is_empty());
    }

    #[test]
    fn single_job_runs_on_caller() {
        let report = par_map_indexed(Threads::new(8), vec![|| 41 + 1]);
        assert_eq!(report.threads, 1, "one job never needs a pool");
        assert_eq!(report.steals, 0);
        assert_eq!(report.cell_seconds.len(), 1);
        assert_eq!(report.into_values(), vec![42]);
    }

    #[test]
    fn results_are_index_addressed_for_every_thread_count() {
        let expect: Vec<u64> = (0..97).map(|i| i * 31 + 7).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let jobs: Vec<_> = (0..97u64).map(|i| move || i * 31 + 7).collect();
            let got = par_map(Threads::new(threads), jobs);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn stress_many_tiny_jobs() {
        let n = 5_000u64;
        let jobs: Vec<_> = (0..n).map(|i| move || i.wrapping_mul(0x9e3779b9)).collect();
        let report = par_map_indexed(Threads::new(8), jobs);
        assert_eq!(report.len(), n as usize);
        assert_eq!(report.cell_seconds.len(), n as usize);
        let values = report.into_values();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(*v, (i as u64).wrapping_mul(0x9e3779b9));
        }
    }

    #[test]
    fn ragged_job_sizes_balance() {
        // Job 0 is much heavier than the rest; with 4 workers the light
        // jobs must not wait behind it, and the output order still
        // matches the serial map.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..40usize)
            .map(|i| {
                let job: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                    if i == 0 {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    i * i
                });
                job
            })
            .collect();
        let report = par_map_indexed(Threads::new(4), jobs);
        let expect: Vec<usize> = (0..40).map(|i| i * i).collect();
        assert_eq!(report.into_values(), expect);
    }

    #[test]
    fn steals_happen_and_are_counted() {
        // Worker 1 owns the odd indices (round-robin deal) and pops its
        // own deque from the back, so job 15 — which blocks for a long
        // while — is the first thing it runs. Worker 0 drains its own
        // eight quick jobs and must then steal worker 1's remaining
        // seven from the front of its deque.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16usize)
            .map(|i| {
                let job: Box<dyn FnOnce() -> usize + Send> = Box::new(move || {
                    if i == 15 {
                        std::thread::sleep(Duration::from_millis(40));
                    } else {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    i
                });
                job
            })
            .collect();
        let report = par_map_indexed(Threads::new(2), jobs);
        assert!(report.steals > 0, "expected steals, got {}", report.steals);
        assert_eq!(report.threads, 2);
        assert_eq!(report.into_values(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_reports_no_steals() {
        let jobs: Vec<_> = (0..8u32).map(|i| move || i).collect();
        let report = par_map_indexed(Threads::serial(), jobs);
        assert_eq!(report.steals, 0);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn panic_poisons_only_its_slot() {
        for threads in [1usize, 4] {
            let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..10u32)
                .map(|i| {
                    let job: Box<dyn FnOnce() -> u32 + Send> = Box::new(move || {
                        assert!(i != 3, "cell three is cursed");
                        i * 10
                    });
                    job
                })
                .collect();
            let report = par_map_indexed(Threads::new(threads), jobs);
            let panics = report.panics();
            assert_eq!(panics.len(), 1, "threads = {threads}");
            assert_eq!(panics[0].index, 3);
            assert!(panics[0].message.contains("cursed"), "message: {}", panics[0].message);
            let results = report.into_results();
            for (i, r) in results.iter().enumerate() {
                if i == 3 {
                    assert!(r.is_err());
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i as u32 * 10, "healthy cells complete");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cell 3 panicked")]
    fn into_values_propagates_the_poisoned_cell() {
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..5u32)
            .map(|i| {
                let job: Box<dyn FnOnce() -> u32 + Send> = Box::new(move || {
                    assert!(i != 3, "boom");
                    i
                });
                job
            })
            .collect();
        let _ = par_map_indexed(Threads::new(2), jobs).into_values();
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..500)
            .map(|i| {
                let counter = &counter;
                move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i
                }
            })
            .collect();
        let values = par_map(Threads::new(7), jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 500);
        assert_eq!(values, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn timing_and_speedup_accounting() {
        let jobs: Vec<_> = (0..8)
            .map(|i| {
                move || {
                    std::thread::sleep(Duration::from_millis(5));
                    i
                }
            })
            .collect();
        let report = par_map_indexed(Threads::new(4), jobs);
        assert_eq!(report.cell_seconds.len(), 8);
        assert!(report.cell_seconds.iter().all(|&s| s >= 0.004), "cells were timed");
        assert!(report.serial_seconds() >= 0.03);
        assert!(report.wall_seconds > 0.0);
        assert!(report.speedup() > 1.0, "4 workers on 8 sleeping cells overlap");
    }

    #[test]
    fn borrowed_inputs_work_across_the_pool() {
        // The jobs borrow non-'static data, as the sweep fronts do with
        // &Graph / &Partition — scoped threads make this sound.
        let data: Vec<u64> = (0..64).collect();
        let jobs: Vec<_> = (0..64usize)
            .map(|i| {
                let data = &data;
                move || data[i] * 2
            })
            .collect();
        let values = par_map(Threads::new(4), jobs);
        assert_eq!(values[10], 20);
        assert_eq!(values.len(), 64);
    }

    #[test]
    fn bit_identical_f64_results_across_thread_counts() {
        // Each cell does an order-sensitive f64 accumulation internally;
        // slots keep cells independent, so any thread count reproduces
        // the serial bits exactly (==, no epsilon).
        let make_jobs = || -> Vec<_> {
            (0..24u32)
                .map(|i| {
                    move || {
                        let mut acc = 0.0f64;
                        for j in 0..1_000 {
                            acc += 1.0 / f64::from(i * 1_000 + j + 1);
                        }
                        acc
                    }
                })
                .collect()
        };
        let oracle = par_map(Threads::serial(), make_jobs());
        for threads in [2, 4, 8, 16] {
            let got = par_map(Threads::new(threads), make_jobs());
            assert_eq!(got.len(), oracle.len());
            for (a, b) in got.iter().zip(oracle.iter()) {
                assert!(a == b, "threads = {threads}: {a} != {b}");
            }
        }
    }

    #[test]
    fn cell_quantiles_p50_and_max() {
        let t = ExecTiming {
            cell_seconds: vec![0.4, 0.1, 0.3, 0.2],
            wall_seconds: 0.5,
            steals: 0,
            threads: 2,
        };
        assert_eq!(t.cell_p50(), 0.25, "even length: mean of the middle pair");
        assert_eq!(t.cell_max(), 0.4);
        let odd = ExecTiming { cell_seconds: vec![0.3, 0.1, 0.2], ..t.clone() };
        assert_eq!(odd.cell_p50(), 0.2);
        let empty = ExecTiming { cell_seconds: vec![], ..t };
        assert_eq!(empty.cell_p50(), 0.0);
        assert_eq!(empty.cell_max(), 0.0);
    }

    #[test]
    fn exec_timing_serialized_shape_is_unchanged() {
        // Regression pin for satellite consumers that render the
        // timing struct: p50/max are computed methods, not fields, so
        // the Debug serialization must keep its pre-prof shape.
        let t = ExecTiming {
            cell_seconds: vec![1.0, 3.0],
            wall_seconds: 2.0,
            steals: 1,
            threads: 2,
        };
        assert_eq!(
            format!("{t:?}"),
            "ExecTiming { cell_seconds: [1.0, 3.0], wall_seconds: 2.0, steals: 1, threads: 2 }"
        );
        let jobs: Vec<_> = (0..3u64).map(|i| move || i).collect();
        let report = par_map_indexed(Threads::serial(), jobs);
        let rendered = format!("{report:?}");
        for field in ["results", "cell_seconds", "wall_seconds", "steals", "threads"] {
            assert!(rendered.contains(field), "ParReport keeps field {field}: {rendered}");
        }
        assert!(!rendered.contains("p50"), "no new serialized fields: {rendered}");
    }

    #[test]
    fn pool_timing_comes_from_the_prof_clock_and_emits_cell_scopes() {
        gp_prof::set_enabled(true);
        gp_prof::reset();
        let jobs: Vec<_> = (0..4u64).map(|i| move || i * 3).collect();
        let report = par_map_indexed(Threads::serial(), jobs);
        let profile = gp_prof::take_profile();
        gp_prof::set_enabled(false);
        assert_eq!(report.into_values(), vec![0, 3, 6, 9]);
        // Other tests in this binary may run pool cells concurrently
        // while profiling is enabled, so assert at-least rather than
        // exactly-our-four.
        let root = profile.roots.iter().find(|n| n.name == "exec.cell").expect("cell scope");
        assert!(root.count >= 4, "one scope per pool cell: {}", root.count);
    }
}
