//! Property tests for the work-stealing executor.
//!
//! Compile-gated in `tests/` (like the PR 1 suites): the offline
//! bare-rustc harness skips integration tests that need the real
//! `proptest` crate, while `cargo test` exercises them fully.

use gp_exec::{par_map_indexed, Threads};
use proptest::prelude::*;
use std::time::Duration;

/// Serial oracle: the jobs in index order on one thread.
fn serial_map(durations: &[u64]) -> Vec<u64> {
    run_map(durations, Threads::serial())
}

/// Build one job per duration: sleep `d` microseconds, then return a
/// value derived from index and duration (order-sensitive if slots were
/// ever misplaced).
fn run_map(durations: &[u64], threads: Threads) -> Vec<u64> {
    let jobs: Vec<_> = durations
        .iter()
        .copied()
        .enumerate()
        .map(|(i, d)| {
            move || {
                if d > 0 {
                    std::thread::sleep(Duration::from_micros(d));
                }
                (i as u64).wrapping_mul(0x9e37_79b9) ^ d
            }
        })
        .collect();
    par_map_indexed(threads, jobs).into_values()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random job-duration vectors: the parallel result vector equals
    /// the serial map for arbitrary thread counts 1..=16.
    #[test]
    fn parallel_equals_serial_for_any_thread_count(
        durations in proptest::collection::vec(0u64..400, 0..48),
        threads in 1usize..=16,
    ) {
        let oracle = serial_map(&durations);
        let got = run_map(&durations, Threads::new(threads));
        prop_assert_eq!(got, oracle);
    }

    /// Repeated runs at the same thread count are identical too.
    #[test]
    fn repeated_runs_are_stable(
        durations in proptest::collection::vec(0u64..200, 1..32),
        threads in 2usize..=8,
    ) {
        let first = run_map(&durations, Threads::new(threads));
        let second = run_map(&durations, Threads::new(threads));
        prop_assert_eq!(first, second);
    }
}
