//! Property-based tests for the tensor substrate: linear-algebra
//! identities, aggregation adjointness, loss-gradient correctness.

use proptest::prelude::*;

use gp_tensor::loss::cross_entropy;
use gp_tensor::{Aggregation, Tensor};

/// Strategy: a small random tensor.
fn arb_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(rows, cols, data))
}

/// Strategy: a random aggregation block with `dst` destinations over
/// `src >= dst` sources.
fn arb_block() -> impl Strategy<Value = Aggregation> {
    (1usize..6, 0usize..8).prop_flat_map(|(dst, extra)| {
        let src = dst + extra;
        proptest::collection::vec(
            proptest::collection::vec(0..src as u32, 0..5),
            dst,
        )
        .prop_map(move |lists| Aggregation::from_lists(src, &lists))
    })
}

fn dot(a: &Tensor, b: &Tensor) -> f32 {
    a.data().iter().zip(b.data().iter()).map(|(x, y)| x * y).sum()
}

proptest! {
    /// (A·B)·C == A·(B·C) within float tolerance.
    #[test]
    fn matmul_associative(
        a in arb_tensor(3, 4),
        b in arb_tensor(4, 2),
        c in arb_tensor(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (l, r) in left.data().iter().zip(right.data().iter()) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    /// matmul_at_b(a, b) equals transposing explicitly.
    #[test]
    fn matmul_at_b_is_transpose(a in arb_tensor(4, 3), b in arb_tensor(4, 2)) {
        let fused = a.matmul_at_b(&b);
        // Explicit transpose.
        let mut at = Tensor::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                at.set(c, r, a.get(r, c));
            }
        }
        let explicit = at.matmul(&b);
        for (x, y) in fused.data().iter().zip(explicit.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// matmul_a_bt(a, b) equals a · bᵀ.
    #[test]
    fn matmul_a_bt_is_transpose(a in arb_tensor(3, 4), b in arb_tensor(2, 4)) {
        let fused = a.matmul_a_bt(&b);
        let mut bt = Tensor::zeros(4, 2);
        for r in 0..2 {
            for c in 0..4 {
                bt.set(c, r, b.get(r, c));
            }
        }
        let explicit = a.matmul(&bt);
        for (x, y) in fused.data().iter().zip(explicit.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// The mean aggregation and its backward are adjoint:
    /// <A x, y> == <x, Aᵀ y>.
    #[test]
    fn aggregation_adjoint(block in arb_block(), cols in 1usize..4) {
        let x = gp_tensor::init::synthetic_features(block.num_src(), cols, 1);
        let y = gp_tensor::init::synthetic_features(block.num_dst(), cols, 2);
        let ax = block.mean(&x);
        let aty = block.mean_backward(&y);
        let lhs = dot(&ax, &y);
        let rhs = dot(&x, &aty);
        prop_assert!((lhs - rhs).abs() < 1e-4, "lhs {lhs} rhs {rhs}");
    }

    /// Cross-entropy loss is non-negative and its gradient rows sum to
    /// zero.
    #[test]
    fn cross_entropy_invariants(
        logits in arb_tensor(4, 5),
        labels in proptest::collection::vec(0u32..5, 4),
    ) {
        let (loss, grad) = cross_entropy(&logits, &labels);
        prop_assert!(loss >= 0.0);
        for r in 0..4 {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    /// One SGD step on the cross-entropy loss decreases it (for a small
    /// enough learning rate).
    #[test]
    fn gradient_descends(
        logits in arb_tensor(3, 4),
        labels in proptest::collection::vec(0u32..4, 3),
    ) {
        let (before, grad) = cross_entropy(&logits, &labels);
        let mut stepped = logits.clone();
        for (v, &g) in stepped.data_mut().iter_mut().zip(grad.data().iter()) {
            *v -= 0.1 * g;
        }
        let (after, _) = cross_entropy(&stepped, &labels);
        prop_assert!(after <= before + 1e-6, "{before} -> {after}");
    }
}
