//! Softmax cross-entropy loss.

use crate::tensor::Tensor;

/// Mean softmax cross-entropy over rows.
///
/// Returns `(loss, dlogits)` where `dlogits` is the gradient w.r.t. the
/// logits (already divided by the batch size).
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[u32]) -> (f32, Tensor) {
    assert_eq!(labels.len(), logits.rows(), "one label per row");
    let classes = logits.cols();
    let batch = logits.rows().max(1) as f32;
    let mut dlogits = Tensor::zeros(logits.rows(), classes);
    let mut loss = 0.0f64;
    for (r, &label) in labels.iter().enumerate() {
        let label = label as usize;
        assert!(label < classes, "label {label} out of range {classes}");
        let row = logits.row(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        let drow = dlogits.row_mut(r);
        for (d, &x) in drow.iter_mut().zip(row.iter()) {
            let e = (x - max).exp();
            *d = e;
            sum += e;
        }
        let log_sum = sum.ln() + max;
        loss += f64::from(log_sum - row[label]);
        for d in drow.iter_mut() {
            *d /= sum * batch;
        }
        drow[label] -= 1.0 / batch;
    }
    ((loss / f64::from(batch)) as f32, dlogits)
}

/// Classification accuracy of `logits` against `labels`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()`.
pub fn accuracy(logits: &Tensor, labels: &[u32]) -> f64 {
    assert_eq!(labels.len(), logits.rows());
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &want) in labels.iter().enumerate() {
        let row = logits.row(r);
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty row");
        if pred == want as usize {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Tensor::from_vec(2, 2, vec![10.0, -10.0, -10.0, 10.0]);
        let (loss, _) = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn uniform_prediction_log_k_loss() {
        let logits = Tensor::zeros(1, 4);
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_points_downhill() {
        // Numerical gradient check on a single logit.
        let mut logits = Tensor::from_vec(1, 3, vec![0.1, 0.2, 0.3]);
        let labels = [1u32];
        let (_, d) = cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for c in 0..3 {
            let orig = logits.get(0, c);
            logits.set(0, c, orig + eps);
            let (lp, _) = cross_entropy(&logits, &labels);
            logits.set(0, c, orig - eps);
            let (lm, _) = cross_entropy(&logits, &labels);
            logits.set(0, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - d.get(0, c)).abs() < 1e-3,
                "col {c}: numerical {num} vs analytic {}",
                d.get(0, c)
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let (_, d) = cross_entropy(&logits, &[0, 2]);
        for r in 0..2 {
            let s: f32 = d.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn accuracy_counts() {
        let logits = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        let logits = Tensor::zeros(1, 2);
        let _ = cross_entropy(&logits, &[5]);
    }
}
