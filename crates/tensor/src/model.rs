//! GNN model: a stack of layers of one architecture.

use crate::block::Aggregation;
use crate::layers::{GatLayer, GcnLayer, Layer, SageLayer};
use crate::loss::{accuracy, cross_entropy};
use crate::optim::Optimizer;
use crate::tensor::Tensor;

/// GNN architecture (the paper evaluates all three on DistDGL; DistGNN
/// supports GraphSAGE only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// GraphSAGE with mean aggregator.
    Sage,
    /// GCN with mean normalisation.
    Gcn,
    /// Single-head GAT.
    Gat,
}

impl ModelKind {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Sage => "GraphSage",
            ModelKind::Gcn => "GCN",
            ModelKind::Gat => "GAT",
        }
    }

    /// Parse a case-insensitive name.
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s.to_ascii_lowercase().as_str() {
            "sage" | "graphsage" => Some(ModelKind::Sage),
            "gcn" => Some(ModelKind::Gcn),
            "gat" => Some(ModelKind::Gat),
            _ => None,
        }
    }
}

/// Hyper-parameters of a GNN model (paper Table 3).
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Architecture.
    pub kind: ModelKind,
    /// Input feature dimension (16 / 64 / 512 in the paper).
    pub feature_dim: usize,
    /// Hidden dimension (16 / 64 / 512 in the paper).
    pub hidden_dim: usize,
    /// Number of GNN layers (2 / 3 / 4 in the paper).
    pub num_layers: usize,
    /// Output classes.
    pub num_classes: usize,
    /// Parameter-initialisation seed.
    pub seed: u64,
}

impl ModelConfig {
    /// Dimensions of layer `i`: `(in, out)`.
    pub fn layer_dims(&self, i: usize) -> (usize, usize) {
        let input = if i == 0 { self.feature_dim } else { self.hidden_dim };
        let output = if i + 1 == self.num_layers { self.num_classes } else { self.hidden_dim };
        (input, output)
    }
}

/// A trainable GNN: `num_layers` layers of one [`ModelKind`]; the last
/// layer produces logits (no activation).
pub struct GnnModel {
    config: ModelConfig,
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for GnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GnnModel({}, {} layers)", self.config.kind.name(), self.layers.len())
    }
}

impl GnnModel {
    /// Build a model from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers == 0` or any dimension is zero.
    pub fn new(config: ModelConfig) -> Self {
        assert!(config.num_layers > 0, "need at least one layer");
        assert!(
            config.feature_dim > 0 && config.hidden_dim > 0 && config.num_classes > 0,
            "dimensions must be positive"
        );
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(config.num_layers);
        for i in 0..config.num_layers {
            let (input, output) = config.layer_dims(i);
            let relu = i + 1 != config.num_layers;
            let seed = config.seed.wrapping_add(i as u64 * 0x9e37);
            layers.push(match config.kind {
                ModelKind::Sage => Box::new(SageLayer::new(input, output, relu, seed)),
                ModelKind::Gcn => Box::new(GcnLayer::new(input, output, relu, seed)),
                ModelKind::Gat => Box::new(GatLayer::new(input, output, relu, seed)),
            });
        }
        GnnModel { config, layers }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Set the `gp-exec` width every layer uses for its dense kernels.
    /// Bit-transparent: threaded kernels reproduce the serial results
    /// exactly, so this only changes wall-clock, never training output.
    pub fn set_threads(&mut self, threads: gp_exec::Threads) {
        for l in &mut self.layers {
            l.set_threads(threads);
        }
    }

    /// Forward pass through all layers. `blocks[i]` feeds layer `i`
    /// (outermost sampled hop first); `x` has `blocks[0].num_src()` rows.
    ///
    /// # Panics
    ///
    /// Panics if `blocks.len() != num_layers()` or shapes mismatch.
    pub fn forward(&mut self, blocks: &[&Aggregation], x: &Tensor) -> Tensor {
        assert_eq!(blocks.len(), self.layers.len(), "one block per layer");
        let mut h = x.clone();
        for (layer, block) in self.layers.iter_mut().zip(blocks.iter()) {
            h = layer.forward(block, &h);
        }
        h
    }

    /// Full-batch convenience: use the same block for every layer.
    pub fn forward_full(&mut self, block: &Aggregation, x: &Tensor) -> Tensor {
        let blocks: Vec<&Aggregation> = std::iter::repeat_n(block, self.layers.len()).collect();
        self.forward(&blocks, x)
    }

    /// Backward pass (after [`Self::forward`]) from the loss gradient.
    pub fn backward(&mut self, blocks: &[&Aggregation], dlogits: &Tensor) {
        assert_eq!(blocks.len(), self.layers.len(), "one block per layer");
        let mut grad = dlogits.clone();
        for (layer, block) in self.layers.iter_mut().zip(blocks.iter()).rev() {
            grad = layer.backward(block, &grad);
        }
    }

    /// Zero all parameter gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Apply one optimiser step to all parameters.
    pub fn step<O: Optimizer>(&mut self, opt: &mut O) {
        opt.begin_step();
        for l in &mut self.layers {
            for p in l.params_mut() {
                opt.update(p);
            }
        }
    }

    /// One full training step: forward, loss, backward, update.
    /// Returns `(loss, accuracy)` on the batch.
    pub fn train_step<O: Optimizer>(
        &mut self,
        blocks: &[&Aggregation],
        x: &Tensor,
        labels: &[u32],
        opt: &mut O,
    ) -> (f32, f64) {
        self.zero_grad();
        let logits = self.forward(blocks, x);
        let (loss, dlogits) = cross_entropy(&logits, labels);
        let acc = accuracy(&logits, labels);
        self.backward(blocks, &dlogits);
        self.step(opt);
        (loss, acc)
    }

    /// Total number of scalar parameters.
    pub fn num_params(&mut self) -> usize {
        self.layers.iter_mut().map(|l| l.num_params()).sum()
    }

    /// Size of all parameters (and hence of one gradient all-reduce
    /// message) in bytes.
    pub fn param_bytes(&mut self) -> u64 {
        self.num_params() as u64 * 4
    }

    /// Average gradients across model replicas in place (the all-reduce
    /// of data-parallel training). All models must share an identical
    /// architecture.
    ///
    /// # Panics
    ///
    /// Panics if the replica architectures disagree.
    pub fn allreduce_grads(replicas: &mut [&mut GnnModel]) {
        if replicas.len() <= 1 {
            return;
        }
        let n = replicas.len() as f32;
        let num_layers = replicas[0].layers.len();
        for li in 0..num_layers {
            // Sum grads parameter by parameter into the first replica…
            let num_params = replicas[0].layers[li].params_mut().len();
            for pi in 0..num_params {
                let mut acc = {
                    let p0 = &mut replicas[0].layers[li].params_mut()[pi].grad;
                    p0.clone()
                };
                for r in replicas.iter_mut().skip(1) {
                    acc.add_assign(&r.layers[li].params_mut()[pi].grad);
                }
                acc.scale(1.0 / n);
                // …then broadcast the mean back.
                for r in replicas.iter_mut() {
                    let p = &mut r.layers[li].params_mut()[pi].grad;
                    assert_eq!(
                        (p.rows(), p.cols()),
                        (acc.rows(), acc.cols()),
                        "replica architectures differ"
                    );
                    p.data_mut().copy_from_slice(acc.data());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    fn chain_block(n: usize) -> Aggregation {
        // Every vertex aggregates from its predecessor (vertex 0 from
        // itself), sources == destinations == n.
        let lists: Vec<Vec<u32>> =
            (0..n).map(|i| vec![if i == 0 { 0 } else { (i - 1) as u32 }]).collect();
        Aggregation::from_lists(n, &lists)
    }

    fn mk(kind: ModelKind) -> GnnModel {
        GnnModel::new(ModelConfig {
            kind,
            feature_dim: 6,
            hidden_dim: 8,
            num_layers: 2,
            num_classes: 3,
            seed: 7,
        })
    }

    #[test]
    fn forward_shapes_all_kinds() {
        let block = chain_block(10);
        let x = crate::init::synthetic_features(10, 6, 1);
        for kind in [ModelKind::Sage, ModelKind::Gcn, ModelKind::Gat] {
            let mut m = mk(kind);
            let y = m.forward_full(&block, &x);
            assert_eq!((y.rows(), y.cols()), (10, 3), "{}", kind.name());
        }
    }

    #[test]
    fn training_reduces_loss() {
        let block = chain_block(32);
        let x = crate::init::synthetic_features(32, 6, 2);
        let labels: Vec<u32> = (0..32).map(|i| i % 3).collect();
        for kind in [ModelKind::Sage, ModelKind::Gcn, ModelKind::Gat] {
            let mut m = mk(kind);
            let mut opt = Adam::new(0.02);
            let blocks = [&block, &block];
            let (first_loss, _) = m.train_step(&blocks, &x, &labels, &mut opt);
            let mut last_loss = first_loss;
            for _ in 0..200 {
                let (l, _) = m.train_step(&blocks, &x, &labels, &mut opt);
                last_loss = l;
            }
            assert!(
                last_loss < 0.7 * first_loss,
                "{}: loss {first_loss} -> {last_loss}",
                kind.name()
            );
        }
    }

    #[test]
    fn layer_dims_follow_config() {
        let c = ModelConfig {
            kind: ModelKind::Sage,
            feature_dim: 16,
            hidden_dim: 64,
            num_layers: 3,
            num_classes: 10,
            seed: 0,
        };
        assert_eq!(c.layer_dims(0), (16, 64));
        assert_eq!(c.layer_dims(1), (64, 64));
        assert_eq!(c.layer_dims(2), (64, 10));
    }

    #[test]
    fn allreduce_averages() {
        let block = chain_block(8);
        let x = crate::init::synthetic_features(8, 6, 3);
        let labels: Vec<u32> = (0..8).map(|i| i % 3).collect();
        let mut m1 = mk(ModelKind::Sage);
        let mut m2 = mk(ModelKind::Sage);
        // Different data → different grads.
        let x2 = crate::init::synthetic_features(8, 6, 4);
        for (m, xx) in [(&mut m1, &x), (&mut m2, &x2)] {
            m.zero_grad();
            let logits = m.forward_full(&block, xx);
            let (_, d) = crate::loss::cross_entropy(&logits, &labels);
            m.backward(&[&block, &block], &d);
        }
        let g1_before = m1.layers[0].params_mut()[0].grad.clone();
        let g2_before = m2.layers[0].params_mut()[0].grad.clone();
        GnnModel::allreduce_grads(&mut [&mut m1, &mut m2]);
        let g1_after = m1.layers[0].params_mut()[0].grad.clone();
        let g2_after = m2.layers[0].params_mut()[0].grad.clone();
        assert_eq!(g1_after, g2_after);
        for i in 0..g1_after.data().len() {
            let expect = 0.5 * (g1_before.data()[i] + g2_before.data()[i]);
            assert!((g1_after.data()[i] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn parse_kind() {
        assert_eq!(ModelKind::parse("GraphSAGE"), Some(ModelKind::Sage));
        assert_eq!(ModelKind::parse("gcn"), Some(ModelKind::Gcn));
        assert_eq!(ModelKind::parse("GAT"), Some(ModelKind::Gat));
        assert_eq!(ModelKind::parse("mlp"), None);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn rejects_zero_layers() {
        let _ = GnnModel::new(ModelConfig {
            kind: ModelKind::Sage,
            feature_dim: 4,
            hidden_dim: 4,
            num_layers: 0,
            num_classes: 2,
            seed: 0,
        });
    }
}
