//! Dense row-major `f32` matrix.

use std::fmt;

use gp_exec::{par_map_indexed, Threads};

/// Rows per parallel panel of the blocked matmul kernels. Each panel is
/// an index-addressed `par_map_indexed` job, so the split never changes
/// results — only how they are scheduled.
const ROW_PANEL: usize = 64;

/// Shape-check failure path, kept out of line so the hot kernels carry
/// no format machinery: the happy path is a bare integer compare.
#[cold]
#[inline(never)]
fn dim_panic(kernel: &str, lhs: usize, rhs: usize) -> ! {
    panic!("{kernel}: {lhs} vs {rhs}");
}

/// A dense 2-D `f32` tensor (row-major).
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)
    }
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self · b`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, b: &Tensor) -> Tensor {
        self.matmul_with(b, Threads::serial())
    }

    /// [`Tensor::matmul`] on the `gp-exec` pool: output rows are split
    /// into contiguous panels, one index-addressed job per panel. Every
    /// output element accumulates in the exact order of the serial
    /// kernel, so the product is bit-identical at any width.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_with(&self, b: &Tensor, threads: Threads) -> Tensor {
        if self.cols != b.rows {
            dim_panic("matmul inner dims", self.cols, b.rows);
        }
        let mut out = Tensor::zeros(self.rows, b.cols);
        run_row_panels(self.rows, b.cols, threads, out.data_mut(), |i0, i1, panel| {
            // i-k-j order: streams through b row-wise (cache friendly).
            for i in i0..i1 {
                let a_row = self.row(i);
                let out_row = &mut panel[(i - i0) * b.cols..(i - i0 + 1) * b.cols];
                for (k, &a_ik) in a_row.iter().enumerate() {
                    if a_ik == 0.0 {
                        continue;
                    }
                    let b_row = b.row(k);
                    debug_assert_eq!(out_row.len(), b_row.len(), "panel width");
                    for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a_ik * b_kj;
                    }
                }
            }
        });
        out
    }

    /// `selfᵀ · b` without materialising the transpose
    /// (`self: r×m`, `b: r×n` → `m×n`). This is the `grad_W = Xᵀ·dY`
    /// shape.
    pub fn matmul_at_b(&self, b: &Tensor) -> Tensor {
        self.matmul_at_b_with(b, Threads::serial())
    }

    /// [`Tensor::matmul_at_b`] on the `gp-exec` pool: panels over the
    /// *output* rows (columns of `self`). For every output element the
    /// reduction over `r` runs in the serial kernel's increasing-`r`
    /// order (including its zero-skip), so the result is bit-identical
    /// at any width.
    ///
    /// # Panics
    ///
    /// Panics on outer-dimension mismatch.
    pub fn matmul_at_b_with(&self, b: &Tensor, threads: Threads) -> Tensor {
        if self.rows != b.rows {
            dim_panic("matmul_at_b outer dims", self.rows, b.rows);
        }
        let mut out = Tensor::zeros(self.cols, b.cols);
        run_row_panels(self.cols, b.cols, threads, out.data_mut(), |m0, m1, panel| {
            for r in 0..self.rows {
                let a_row = self.row(r);
                let b_row = b.row(r);
                for (m, &a_rm) in a_row.iter().enumerate().take(m1).skip(m0) {
                    if a_rm == 0.0 {
                        continue;
                    }
                    let out_row = &mut panel[(m - m0) * b.cols..(m - m0 + 1) * b.cols];
                    debug_assert_eq!(out_row.len(), b_row.len(), "panel width");
                    for (o, &b_rn) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a_rm * b_rn;
                    }
                }
            }
        });
        out
    }

    /// `self · bᵀ` (`self: r×m`, `b: n×m` → `r×n`). This is the
    /// `dX = dY·Wᵀ` shape.
    pub fn matmul_a_bt(&self, b: &Tensor) -> Tensor {
        self.matmul_a_bt_with(b, Threads::serial())
    }

    /// [`Tensor::matmul_a_bt`] on the `gp-exec` pool; row panels as in
    /// [`Tensor::matmul_with`], bit-identical at any width.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_a_bt_with(&self, b: &Tensor, threads: Threads) -> Tensor {
        if self.cols != b.cols {
            dim_panic("matmul_a_bt inner dims", self.cols, b.cols);
        }
        let mut out = Tensor::zeros(self.rows, b.rows);
        run_row_panels(self.rows, b.rows, threads, out.data_mut(), |i0, i1, panel| {
            for i in i0..i1 {
                let a_row = self.row(i);
                let out_row = &mut panel[(i - i0) * b.rows..(i - i0 + 1) * b.rows];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = b.row(j);
                    debug_assert_eq!(a_row.len(), b_row.len(), "panel width");
                    let mut acc = 0.0f32;
                    for (&a, &bb) in a_row.iter().zip(b_row.iter()) {
                        acc += a * bb;
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Add a row vector (broadcast over rows), e.g. a bias.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (a, &b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *a += b;
            }
        }
    }

    /// Sum over rows → vector of length `cols` (bias gradient shape).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Fill with zeros (reuse allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Select rows by index into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn select_rows(&self, idx: &[u32]) -> Tensor {
        let mut out = Tensor::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r as usize));
        }
        out
    }
}

/// Drive a row-panel kernel either serially (one panel spanning the
/// whole output, run on the caller's thread) or on the `gp-exec` pool
/// (one index-addressed job per [`ROW_PANEL`]-row panel, results copied
/// back in index order). `kernel(i0, i1, panel)` must fill `panel` with
/// output rows `i0..i1`; because every output element is produced by
/// exactly one panel and each panel computes its elements in the same
/// order as the serial kernel, the split is bit-transparent.
fn run_row_panels<F>(rows: usize, cols: usize, threads: Threads, out: &mut [f32], kernel: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    if threads.count() <= 1 || rows <= ROW_PANEL {
        let _prof = gp_prof::scope("tensor.matmul.panel");
        kernel(0, rows, out);
        return;
    }
    let panels: Vec<(usize, usize)> =
        (0..rows).step_by(ROW_PANEL).map(|i0| (i0, (i0 + ROW_PANEL).min(rows))).collect();
    let kernel = &kernel;
    let jobs: Vec<_> = panels
        .iter()
        .map(|&(i0, i1)| {
            move || {
                let _prof = gp_prof::scope("tensor.matmul.panel");
                let mut buf = vec![0.0f32; (i1 - i0) * cols];
                kernel(i0, i1, &mut buf);
                buf
            }
        })
        .collect();
    let bufs = par_map_indexed(threads, jobs).into_values();
    for (&(i0, i1), buf) in panels.iter().zip(bufs.iter()) {
        out[i0 * cols..i1 * cols].copy_from_slice(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    /// Pseudo-random but deterministic fill with a sprinkle of exact
    /// zeros so the kernels' zero-skip path is exercised.
    fn filled(rows: usize, cols: usize, salt: u64) -> Tensor {
        let mut state = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut data = Vec::with_capacity(rows * cols);
        for _ in 0..rows * cols {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if state % 7 == 0 {
                data.push(0.0);
            } else {
                data.push(((state % 2000) as f32 - 1000.0) / 256.0);
            }
        }
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn threaded_matmul_family_bitwise_matches_serial() {
        // Every output exceeds ROW_PANEL rows so the pool path splits
        // in all three kernels.
        let n = 2 * ROW_PANEL + 17;
        let a = filled(n, n, 1);
        let b = filled(n, 29, 2);
        let bt = filled(29, n, 3);
        let at = filled(n, 29, 4);
        for w in [2usize, 4, 8] {
            let t = Threads::new(w);
            assert_eq!(a.matmul(&b).data(), a.matmul_with(&b, t).data(), "matmul w={w}");
            assert_eq!(
                a.matmul_at_b(&at).data(),
                a.matmul_at_b_with(&at, t).data(),
                "matmul_at_b w={w}"
            );
            assert_eq!(
                a.matmul_a_bt(&bt).data(),
                a.matmul_a_bt_with(&bt, t).data(),
                "matmul_a_bt w={w}"
            );
        }
    }

    #[test]
    fn matmul_basic() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_at_b_equals_explicit_transpose() {
        let a = t(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[1., 0., 0., 1., 1., 1.]);
        // aᵀ = [[1,3,5],[2,4,6]]; aᵀ·b = [[6,8],[8,10]]
        let c = a.matmul_at_b(&b);
        assert_eq!(c.data(), &[6., 8., 8., 10.]);
    }

    #[test]
    fn matmul_a_bt_matches() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(2, 3, &[1., 0., 1., 0., 1., 0.]);
        // a·bᵀ = [[4, 2],[10, 5]]
        let c = a.matmul_a_bt(&b);
        assert_eq!(c.data(), &[4., 2., 10., 5.]);
    }

    #[test]
    fn identity_roundtrip() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        let eye = t(2, 2, &[1., 0., 0., 1.]);
        assert_eq!(a.matmul(&eye).data(), a.data());
    }

    #[test]
    fn bias_and_sum_rows() {
        let mut a = Tensor::zeros(3, 2);
        a.add_bias(&[1.0, 2.0]);
        assert_eq!(a.sum_rows(), vec![3.0, 6.0]);
    }

    #[test]
    fn select_rows_picks() {
        let a = t(3, 2, &[0., 1., 2., 3., 4., 5.]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[4., 5., 0., 1.]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_checked() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scale_and_norm() {
        let mut a = t(1, 2, &[3., 4.]);
        assert_eq!(a.norm(), 5.0);
        a.scale(2.0);
        assert_eq!(a.norm(), 10.0);
    }
}
