//! Dense row-major `f32` matrix.

use std::fmt;

/// A dense 2-D `f32` tensor (row-major).
#[derive(Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)
    }
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self · b`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, b: &Tensor) -> Tensor {
        assert_eq!(self.cols, b.rows, "matmul inner dims: {} vs {}", self.cols, b.rows);
        let mut out = Tensor::zeros(self.rows, b.cols);
        // i-k-j order: streams through b row-wise (cache friendly).
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = b.row(k);
                for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b_kj;
                }
            }
        }
        out
    }

    /// `selfᵀ · b` without materialising the transpose
    /// (`self: r×m`, `b: r×n` → `m×n`). This is the `grad_W = Xᵀ·dY`
    /// shape.
    pub fn matmul_at_b(&self, b: &Tensor) -> Tensor {
        assert_eq!(self.rows, b.rows, "matmul_at_b outer dims: {} vs {}", self.rows, b.rows);
        let mut out = Tensor::zeros(self.cols, b.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = b.row(r);
            for (m, &a_rm) in a_row.iter().enumerate() {
                if a_rm == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(m);
                for (o, &b_rn) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_rm * b_rn;
                }
            }
        }
        out
    }

    /// `self · bᵀ` (`self: r×m`, `b: n×m` → `r×n`). This is the
    /// `dX = dY·Wᵀ` shape.
    pub fn matmul_a_bt(&self, b: &Tensor) -> Tensor {
        assert_eq!(self.cols, b.cols, "matmul_a_bt inner dims: {} vs {}", self.cols, b.cols);
        let mut out = Tensor::zeros(self.rows, b.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = b.row(j);
                let mut acc = 0.0f32;
                for (&a, &bb) in a_row.iter().zip(b_row.iter()) {
                    acc += a * bb;
                }
                *o = acc;
            }
        }
        out
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Add a row vector (broadcast over rows), e.g. a bias.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (a, &b) in self.row_mut(r).iter_mut().zip(bias.iter()) {
                *a += b;
            }
        }
    }

    /// Sum over rows → vector of length `cols` (bias gradient shape).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Fill with zeros (reuse allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Select rows by index into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn select_rows(&self, idx: &[u32]) -> Tensor {
        let mut out = Tensor::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r as usize));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_basic() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_at_b_equals_explicit_transpose() {
        let a = t(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[1., 0., 0., 1., 1., 1.]);
        // aᵀ = [[1,3,5],[2,4,6]]; aᵀ·b = [[6,8],[8,10]]
        let c = a.matmul_at_b(&b);
        assert_eq!(c.data(), &[6., 8., 8., 10.]);
    }

    #[test]
    fn matmul_a_bt_matches() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(2, 3, &[1., 0., 1., 0., 1., 0.]);
        // a·bᵀ = [[4, 2],[10, 5]]
        let c = a.matmul_a_bt(&b);
        assert_eq!(c.data(), &[4., 2., 10., 5.]);
    }

    #[test]
    fn identity_roundtrip() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        let eye = t(2, 2, &[1., 0., 0., 1.]);
        assert_eq!(a.matmul(&eye).data(), a.data());
    }

    #[test]
    fn bias_and_sum_rows() {
        let mut a = Tensor::zeros(3, 2);
        a.add_bias(&[1.0, 2.0]);
        assert_eq!(a.sum_rows(), vec![3.0, 6.0]);
    }

    #[test]
    fn select_rows_picks() {
        let a = t(3, 2, &[0., 1., 2., 3., 4., 5.]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[4., 5., 0., 1.]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_checked() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn scale_and_norm() {
        let mut a = t(1, 2, &[3., 4.]);
        assert_eq!(a.norm(), 5.0);
        a.scale(2.0);
        assert_eq!(a.norm(), 10.0);
    }
}
