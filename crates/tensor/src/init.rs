//! Parameter initialisation.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialisation: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Tensor {
    let a = (6.0 / (rows + cols) as f64).sqrt() as f32;
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols).map(|_| (rng.random::<f32>() * 2.0 - 1.0) * a).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Deterministic feature matrix for synthetic experiments: values in
/// `[-0.5, 0.5]`, seeded per vertex so any subset of rows is
/// reproducible without materialising the full matrix elsewhere.
pub fn synthetic_features(num_rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut t = Tensor::zeros(num_rows, cols);
    for r in 0..num_rows {
        let mut rng = StdRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for v in t.row_mut(r) {
            *v = rng.random::<f32>() - 0.5;
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds() {
        let t = xavier_uniform(64, 64, 1);
        let a = (6.0f64 / 128.0).sqrt() as f32;
        assert!(t.data().iter().all(|&v| v.abs() <= a));
        // Not all zero.
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn xavier_deterministic() {
        assert_eq!(xavier_uniform(8, 8, 3), xavier_uniform(8, 8, 3));
        assert_ne!(xavier_uniform(8, 8, 3), xavier_uniform(8, 8, 4));
    }

    #[test]
    fn synthetic_features_row_stable() {
        // Row r has the same contents regardless of matrix height.
        let a = synthetic_features(10, 4, 7);
        let b = synthetic_features(5, 4, 7);
        assert_eq!(a.row(3), b.row(3));
    }

    #[test]
    fn synthetic_features_in_range() {
        let t = synthetic_features(20, 8, 1);
        assert!(t.data().iter().all(|&v| (-0.5..=0.5).contains(&v)));
    }
}
