//! Trainable parameters and optimisers (SGD, Adam).

use crate::tensor::Tensor;

/// A trainable parameter: value, gradient accumulator and optimiser
/// state (first/second moments, used by Adam, zero-cost for SGD).
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the backward pass.
    pub grad: Tensor,
    /// First-moment estimate (Adam).
    m: Tensor,
    /// Second-moment estimate (Adam).
    v: Tensor,
}

impl Param {
    /// Wrap an initial value.
    pub fn new(value: Tensor) -> Self {
        let (r, c) = (value.rows(), value.cols());
        Param { value, grad: Tensor::zeros(r, c), m: Tensor::zeros(r, c), v: Tensor::zeros(r, c) }
    }

    /// Reset the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.data().len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An optimiser updates parameters from their accumulated gradients.
pub trait Optimizer {
    /// Apply one update step to `param` (gradient already accumulated).
    fn update(&mut self, param: &mut Param);

    /// Called once per optimisation step *before* updating parameters
    /// (Adam uses it to advance its time step).
    fn begin_step(&mut self) {}
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, param: &mut Param) {
        let lr = self.lr;
        for (v, &g) in param.value.data_mut().iter_mut().zip(param.grad.data().iter()) {
            *v -= lr * g;
        }
    }
}

/// Adam (Kingma & Ba, 2015).
#[derive(Debug, Clone, Copy)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u32,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, param: &mut Param) {
        let t = self.t.max(1) as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        let (b1, b2, lr, eps) = (self.beta1, self.beta2, self.lr, self.eps);
        let g = param.grad.data();
        let m = param.m.data_mut();
        let v = param.v.data_mut();
        for i in 0..g.len() {
            m[i] = b1 * m[i] + (1.0 - b1) * g[i];
            v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
        }
        let val = param.value.data_mut();
        for i in 0..val.len() {
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            val[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f32) -> Param {
        Param::new(Tensor::from_vec(1, 1, vec![x0]))
    }

    /// Minimise f(x) = x² with the given optimiser; return final |x|.
    fn minimise<O: Optimizer>(mut opt: O, steps: u32) -> f32 {
        let mut p = quadratic_param(5.0);
        for _ in 0..steps {
            opt.begin_step();
            // df/dx = 2x
            let x = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * x);
            opt.update(&mut p);
            p.zero_grad();
        }
        p.value.get(0, 0).abs()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(minimise(Sgd::new(0.1), 100) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(minimise(Adam::new(0.3), 200) < 1e-2);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = quadratic_param(1.0);
        p.grad.set(0, 0, 7.0);
        p.zero_grad();
        assert_eq!(p.grad.get(0, 0), 0.0);
    }

    #[test]
    fn param_len() {
        let p = Param::new(Tensor::zeros(3, 4));
        assert_eq!(p.len(), 12);
        assert!(!p.is_empty());
    }

    #[test]
    fn sgd_step_is_linear_in_lr() {
        let mut p = quadratic_param(1.0);
        p.grad.set(0, 0, 1.0);
        let mut opt = Sgd::new(0.5);
        opt.update(&mut p);
        assert!((p.value.get(0, 0) - 0.5).abs() < 1e-7);
    }
}
