//! Element-wise activations with explicit backward passes.

use crate::tensor::Tensor;

/// ReLU forward (in place): `x = max(x, 0)`.
pub fn relu_inplace(x: &mut Tensor) {
    for v in x.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// ReLU backward: zero `dy` where the *output* `y` was zero.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn relu_backward_inplace(dy: &mut Tensor, y: &Tensor) {
    assert_eq!(dy.rows(), y.rows());
    assert_eq!(dy.cols(), y.cols());
    for (d, &o) in dy.data_mut().iter_mut().zip(y.data().iter()) {
        if o <= 0.0 {
            *d = 0.0;
        }
    }
}

/// Leaky-ReLU forward (in place) with slope `alpha` for negatives.
pub fn leaky_relu_inplace(x: &mut Tensor, alpha: f32) {
    for v in x.data_mut() {
        if *v < 0.0 {
            *v *= alpha;
        }
    }
}

/// Leaky-ReLU derivative w.r.t. the *input* value.
#[inline]
pub fn leaky_relu_grad(input: f32, alpha: f32) -> f32 {
    if input >= 0.0 {
        1.0
    } else {
        alpha
    }
}

/// Scalar ELU-like exponential used by GAT attention softmax: numerically
/// stable row softmax over an arbitrary slice.
pub fn softmax_slice(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for v in values.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in values.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps() {
        let mut t = Tensor::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        relu_inplace(&mut t);
        assert_eq!(t.data(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let y = Tensor::from_vec(1, 3, vec![0.0, 1.0, 0.0]);
        let mut dy = Tensor::from_vec(1, 3, vec![5.0, 5.0, 5.0]);
        relu_backward_inplace(&mut dy, &y);
        assert_eq!(dy.data(), &[0.0, 5.0, 0.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let mut t = Tensor::from_vec(1, 2, vec![-2.0, 2.0]);
        leaky_relu_inplace(&mut t, 0.1);
        assert_eq!(t.data(), &[-0.2, 2.0]);
        assert_eq!(leaky_relu_grad(-1.0, 0.1), 0.1);
        assert_eq!(leaky_relu_grad(1.0, 0.1), 1.0);
    }

    #[test]
    fn softmax_sums_to_one() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax_slice(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let mut v = vec![1000.0, 1000.0];
        softmax_slice(&mut v);
        assert!((v[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_noop() {
        let mut v: Vec<f32> = vec![];
        softmax_slice(&mut v);
        assert!(v.is_empty());
    }
}
