//! Analytic FLOP and byte counting.
//!
//! The cluster cost model converts these counts into simulated time. The
//! counts mirror exactly what the layer implementations execute, so a
//! "simulated second" corresponds to real arithmetic the layers would
//! perform at full scale.

use crate::model::{ModelConfig, ModelKind};

/// Shape of one layer's aggregation block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockShape {
    /// Destination rows.
    pub num_dst: u64,
    /// Source rows.
    pub num_src: u64,
    /// Aggregation edges.
    pub num_edges: u64,
}

/// Forward FLOPs of a single layer.
pub fn layer_forward_flops(
    kind: ModelKind,
    shape: BlockShape,
    in_dim: u64,
    out_dim: u64,
) -> u64 {
    let BlockShape { num_dst, num_src, num_edges } = shape;
    match kind {
        // Two matmuls (self + neigh) plus mean aggregation.
        ModelKind::Sage => {
            2 * num_dst * in_dim * out_dim * 2 + num_edges * in_dim + num_dst * out_dim
        }
        // One matmul plus mean aggregation.
        ModelKind::Gcn => 2 * num_dst * in_dim * out_dim + num_edges * in_dim + num_dst * out_dim,
        // Projection of every source + per-edge attention (two dots +
        // weighted sum) + softmax.
        ModelKind::Gat => {
            2 * num_src * in_dim * out_dim + num_edges * (3 * out_dim + 4) + num_dst * out_dim
        }
    }
}

/// Training FLOPs of one layer ≈ forward + backward ≈ 3 × forward (the
/// standard rule of thumb: backward costs about twice the forward pass).
pub fn layer_train_flops(kind: ModelKind, shape: BlockShape, in_dim: u64, out_dim: u64) -> u64 {
    3 * layer_forward_flops(kind, shape, in_dim, out_dim)
}

/// Forward FLOPs of a whole model given each layer's block shape
/// (`shapes[i]` feeds layer `i`).
///
/// # Panics
///
/// Panics if `shapes.len() != config.num_layers`.
pub fn model_forward_flops(config: &ModelConfig, shapes: &[BlockShape]) -> u64 {
    assert_eq!(shapes.len(), config.num_layers, "one shape per layer");
    shapes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let (input, output) = config.layer_dims(i);
            layer_forward_flops(config.kind, s, input as u64, output as u64)
        })
        .sum()
}

/// Training FLOPs of a whole model (forward + backward).
///
/// # Panics
///
/// Panics if `shapes.len() != config.num_layers`.
pub fn model_train_flops(config: &ModelConfig, shapes: &[BlockShape]) -> u64 {
    3 * model_forward_flops(config, shapes)
}

/// Bytes of one vertex state vector of dimension `dim` (f32).
pub fn state_bytes(dim: u64) -> u64 {
    4 * dim
}

/// Total number of scalar parameters of a model configuration.
pub fn model_param_count(config: &ModelConfig) -> u64 {
    (0..config.num_layers)
        .map(|i| {
            let (input, output) = config.layer_dims(i);
            let (input, output) = (input as u64, output as u64);
            match config.kind {
                ModelKind::Sage => 2 * input * output + output,
                ModelKind::Gcn => input * output + output,
                ModelKind::Gat => input * output + 3 * output,
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: ModelKind) -> ModelConfig {
        ModelConfig {
            kind,
            feature_dim: 16,
            hidden_dim: 64,
            num_layers: 2,
            num_classes: 8,
            seed: 0,
        }
    }

    const SHAPE: BlockShape = BlockShape { num_dst: 100, num_src: 400, num_edges: 1000 };

    #[test]
    fn gat_costs_more_than_sage() {
        let sage = layer_forward_flops(ModelKind::Sage, SHAPE, 64, 64);
        let gat = layer_forward_flops(ModelKind::Gat, SHAPE, 64, 64);
        assert!(gat > sage, "gat {gat} <= sage {sage}");
    }

    #[test]
    fn sage_costs_more_than_gcn() {
        let sage = layer_forward_flops(ModelKind::Sage, SHAPE, 64, 64);
        let gcn = layer_forward_flops(ModelKind::Gcn, SHAPE, 64, 64);
        assert!(sage > gcn);
    }

    #[test]
    fn flops_scale_with_hidden_dim() {
        let small = layer_forward_flops(ModelKind::Sage, SHAPE, 16, 16);
        let large = layer_forward_flops(ModelKind::Sage, SHAPE, 512, 512);
        assert!(large > 100 * small);
    }

    #[test]
    fn model_flops_sum_layers() {
        let c = cfg(ModelKind::Sage);
        let shapes = [SHAPE, SHAPE];
        let total = model_forward_flops(&c, &shapes);
        let l0 = layer_forward_flops(ModelKind::Sage, SHAPE, 16, 64);
        let l1 = layer_forward_flops(ModelKind::Sage, SHAPE, 64, 8);
        assert_eq!(total, l0 + l1);
        assert_eq!(model_train_flops(&c, &shapes), 3 * total);
    }

    #[test]
    fn param_count_matches_model() {
        for kind in [ModelKind::Sage, ModelKind::Gcn, ModelKind::Gat] {
            let c = cfg(kind);
            let mut m = crate::GnnModel::new(c);
            assert_eq!(model_param_count(&c), m.num_params() as u64, "{}", kind.name());
        }
    }

    #[test]
    fn state_bytes_is_4x() {
        assert_eq!(state_bytes(64), 256);
    }
}
