//! Aggregation blocks: the bipartite adjacency a GNN layer consumes.
//!
//! A block maps `num_src` *source* rows to `num_dst` *destination* rows.
//! Convention (borrowed from DGL): the first `num_dst` source rows ARE
//! the destination vertices, so a destination can always read its own
//! previous-layer representation at the same index. In full-batch
//! training `num_src == num_dst == |V|` and the block is the whole graph
//! adjacency; in mini-batch training each layer has its own block
//! produced by neighbourhood sampling.

/// Bipartite aggregation structure (CSR over destinations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aggregation {
    num_src: usize,
    /// CSR offsets, one entry per destination + 1.
    offsets: Vec<u32>,
    /// Source indices each destination aggregates from.
    indices: Vec<u32>,
}

impl Aggregation {
    /// Build from CSR parts.
    ///
    /// # Panics
    ///
    /// Panics if the CSR is malformed (offsets not monotone, index out of
    /// range, or fewer sources than destinations).
    pub fn new(num_src: usize, offsets: Vec<u32>, indices: Vec<u32>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        let num_dst = offsets.len() - 1;
        assert!(num_src >= num_dst, "sources ({num_src}) must include all destinations ({num_dst})");
        assert_eq!(*offsets.last().expect("non-empty") as usize, indices.len());
        for w in offsets.windows(2) {
            assert!(w[0] <= w[1], "offsets must be monotone");
        }
        for &i in &indices {
            assert!((i as usize) < num_src, "index {i} out of range {num_src}");
        }
        Aggregation { num_src, offsets, indices }
    }

    /// Build a block from per-destination neighbour lists.
    pub fn from_lists(num_src: usize, lists: &[Vec<u32>]) -> Self {
        let mut offsets = Vec::with_capacity(lists.len() + 1);
        offsets.push(0u32);
        let mut indices = Vec::new();
        for l in lists {
            indices.extend_from_slice(l);
            offsets.push(indices.len() as u32);
        }
        Aggregation::new(num_src, offsets, indices)
    }

    /// Number of destination rows.
    #[inline]
    pub fn num_dst(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of source rows.
    #[inline]
    pub fn num_src(&self) -> usize {
        self.num_src
    }

    /// Total number of aggregation edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.indices.len()
    }

    /// Neighbours (source indices) of destination `d`.
    #[inline]
    pub fn neighbors(&self, d: usize) -> &[u32] {
        &self.indices[self.offsets[d] as usize..self.offsets[d + 1] as usize]
    }

    /// In-degree of destination `d` within the block.
    #[inline]
    pub fn degree(&self, d: usize) -> usize {
        (self.offsets[d + 1] - self.offsets[d]) as usize
    }

    /// Mean aggregation: `out[d] = mean_{s in N(d)} x[s]`.
    /// Destinations without neighbours get a zero row.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != num_src`.
    pub fn mean(&self, x: &crate::Tensor) -> crate::Tensor {
        assert_eq!(x.rows(), self.num_src, "x rows must equal num_src");
        let mut out = crate::Tensor::zeros(self.num_dst(), x.cols());
        for d in 0..self.num_dst() {
            let nbrs = self.neighbors(d);
            if nbrs.is_empty() {
                continue;
            }
            let inv = 1.0 / nbrs.len() as f32;
            let row = out.row_mut(d);
            for &s in nbrs {
                for (o, &v) in row.iter_mut().zip(x.row(s as usize).iter()) {
                    *o += v;
                }
            }
            for o in row.iter_mut() {
                *o *= inv;
            }
        }
        out
    }

    /// Backward of [`Self::mean`]: scatter `dy` back to the sources.
    ///
    /// # Panics
    ///
    /// Panics if `dy.rows() != num_dst()`.
    pub fn mean_backward(&self, dy: &crate::Tensor) -> crate::Tensor {
        assert_eq!(dy.rows(), self.num_dst(), "dy rows must equal num_dst");
        let mut dx = crate::Tensor::zeros(self.num_src, dy.cols());
        for d in 0..self.num_dst() {
            let nbrs = self.neighbors(d);
            if nbrs.is_empty() {
                continue;
            }
            let inv = 1.0 / nbrs.len() as f32;
            let dyr = dy.row(d);
            for &s in nbrs {
                let dst_row = dx.row_mut(s as usize);
                for (o, &v) in dst_row.iter_mut().zip(dyr.iter()) {
                    *o += v * inv;
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    /// Two destinations; dst 0 aggregates from sources {0, 2}, dst 1 from
    /// {1}. Three sources total.
    fn block() -> Aggregation {
        Aggregation::from_lists(3, &[vec![0, 2], vec![1]])
    }

    #[test]
    fn shape_queries() {
        let b = block();
        assert_eq!(b.num_dst(), 2);
        assert_eq!(b.num_src(), 3);
        assert_eq!(b.num_edges(), 3);
        assert_eq!(b.degree(0), 2);
        assert_eq!(b.neighbors(1), &[1]);
    }

    #[test]
    fn mean_aggregation() {
        let b = block();
        let x = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let y = b.mean(&x);
        assert_eq!(y.row(0), &[3., 4.]); // mean of rows 0 and 2
        assert_eq!(y.row(1), &[3., 4.]); // row 1
    }

    #[test]
    fn mean_backward_scatters() {
        let b = block();
        let dy = Tensor::from_vec(2, 2, vec![2., 2., 4., 4.]);
        let dx = b.mean_backward(&dy);
        assert_eq!(dx.row(0), &[1., 1.]); // half of dy[0]
        assert_eq!(dx.row(1), &[4., 4.]);
        assert_eq!(dx.row(2), &[1., 1.]);
    }

    #[test]
    fn mean_and_backward_are_adjoint() {
        // <A x, y> == <x, Aᵀ y> for the mean operator.
        let b = block();
        let x = Tensor::from_vec(3, 1, vec![1., 2., 3.]);
        let y = Tensor::from_vec(2, 1, vec![5., 7.]);
        let ax = b.mean(&x);
        let aty = b.mean_backward(&y);
        let lhs: f32 = ax.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(aty.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-6);
    }

    #[test]
    fn empty_neighbor_list_gives_zero_row() {
        let b = Aggregation::from_lists(2, &[vec![], vec![0]]);
        let x = Tensor::from_vec(2, 1, vec![3., 5.]);
        let y = b.mean(&x);
        assert_eq!(y.row(0), &[0.]);
        assert_eq!(y.row(1), &[3.]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        Aggregation::from_lists(2, &[vec![5]]);
    }

    #[test]
    #[should_panic(expected = "must include all destinations")]
    fn rejects_fewer_sources_than_dsts() {
        Aggregation::from_lists(1, &[vec![0], vec![0]]);
    }
}
