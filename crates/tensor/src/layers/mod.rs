//! GNN layers with explicit forward/backward.
//!
//! All layers implement [`Layer`]: they consume an [`Aggregation`] block
//! plus a source feature matrix (`num_src` rows) and produce a
//! destination matrix (`num_dst` rows). Hidden layers apply ReLU; the
//! final layer of a model is constructed without activation so its
//! output feeds the softmax cross-entropy loss directly.

pub mod gat;
pub mod gcn;
pub mod linear;
pub mod sage;

pub use gat::GatLayer;
pub use gcn::GcnLayer;
pub use linear::DenseLayer;
pub use sage::SageLayer;

use gp_exec::Threads;

use crate::block::Aggregation;
use crate::optim::Param;
use crate::tensor::Tensor;

/// A differentiable GNN layer.
pub trait Layer {
    /// Forward pass: `x` has `block.num_src()` rows; the result has
    /// `block.num_dst()` rows. Caches whatever backward needs.
    fn forward(&mut self, block: &Aggregation, x: &Tensor) -> Tensor;

    /// Backward pass: `dy` has `block.num_dst()` rows; returns the
    /// gradient w.r.t. `x` (`block.num_src()` rows) and accumulates
    /// parameter gradients. Must be called with the same block as the
    /// preceding [`Layer::forward`].
    fn backward(&mut self, block: &Aggregation, dy: &Tensor) -> Tensor;

    /// Mutable access to all trainable parameters.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Input feature dimension.
    fn in_dim(&self) -> usize;

    /// Output feature dimension.
    fn out_dim(&self) -> usize;

    /// Reset all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar parameters.
    fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Set the `gp-exec` width used by this layer's dense kernels.
    /// Threaded kernels are bit-identical to serial, so this only
    /// changes scheduling, never results. Default: ignore (serial).
    fn set_threads(&mut self, _threads: Threads) {}
}

#[cfg(test)]
pub(crate) mod gradcheck {
    use super::*;

    /// Finite-difference gradient check for any layer: perturb each of a
    /// few input entries and parameters and compare against the analytic
    /// gradient of the scalar loss `L = sum(y)`.
    pub fn check_layer<L: Layer>(layer: &mut L, block: &Aggregation, x: &Tensor) {
        let eps = 3e-3f32;
        let tol = 3e-2f32;
        // Analytic gradients.
        layer.zero_grad();
        let y = layer.forward(block, x);
        let dy = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.rows() * y.cols()]);
        let dx = layer.backward(block, &dy);

        let loss = |layer: &mut L, x: &Tensor| -> f32 {
            layer.forward(block, x).data().iter().sum()
        };

        // Check a handful of input coordinates.
        let mut xp = x.clone();
        let stride = (x.data().len() / 7).max(1);
        for i in (0..x.data().len()).step_by(stride) {
            let orig = xp.data()[i];
            xp.data_mut()[i] = orig + eps;
            let lp = loss(layer, &xp);
            xp.data_mut()[i] = orig - eps;
            let lm = loss(layer, &xp);
            xp.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = dx.data()[i];
            assert!(
                (num - ana).abs() < tol * (1.0 + num.abs().max(ana.abs())),
                "input grad mismatch at {i}: numerical {num} vs analytic {ana}"
            );
        }

        // Check a handful of parameter coordinates. Snapshot analytic
        // gradients first (recomputing forward would clear caches).
        let grads: Vec<Vec<f32>> =
            layer.params_mut().iter().map(|p| p.grad.data().to_vec()).collect();
        for (pi, pgrads) in grads.iter().enumerate() {
            let plen = pgrads.len();
            let stride = (plen / 5).max(1);
            for i in (0..plen).step_by(stride) {
                let orig = layer.params_mut()[pi].value.data()[i];
                layer.params_mut()[pi].value.data_mut()[i] = orig + eps;
                let lp = loss(layer, x);
                layer.params_mut()[pi].value.data_mut()[i] = orig - eps;
                let lm = loss(layer, x);
                layer.params_mut()[pi].value.data_mut()[i] = orig;
                let num = (lp - lm) / (2.0 * eps);
                let ana = pgrads[i];
                assert!(
                    (num - ana).abs() < tol * (1.0 + num.abs().max(ana.abs())),
                    "param {pi} grad mismatch at {i}: numerical {num} vs analytic {ana}"
                );
            }
        }
    }

    /// A small test block: 3 destinations, 5 sources.
    pub fn test_block() -> Aggregation {
        Aggregation::from_lists(5, &[vec![1, 3, 4], vec![0, 2], vec![2, 4]])
    }

    /// Deterministic input features for the test block.
    pub fn test_input(cols: usize) -> Tensor {
        crate::init::synthetic_features(5, cols, 99)
    }
}
