//! GAT layer — single-head graph attention (Veličković et al., ICLR 2018).
//!
//! ```text
//! z_i    = x_i · W
//! e_ds   = LeakyReLU(a_l·z_d + a_r·z_s)        for s ∈ N(d)
//! α_ds   = softmax_s(e_ds)
//! y_d    = act( Σ_s α_ds z_s + b )
//! ```
//!
//! The attention coefficients are computed per block edge, which is what
//! makes GAT noticeably more compute-heavy than GraphSAGE — an effect
//! the paper's Figure 25 shows directly.

use gp_exec::Threads;

use crate::block::Aggregation;
use crate::init::xavier_uniform;
use crate::layers::Layer;
use crate::ops::{leaky_relu_grad, relu_backward_inplace, relu_inplace, softmax_slice};
use crate::optim::Param;
use crate::tensor::Tensor;

const ATTENTION_SLOPE: f32 = 0.2;

/// Single-head GAT layer.
#[derive(Debug)]
pub struct GatLayer {
    w: Param,
    a_left: Param,
    a_right: Param,
    b: Param,
    relu: bool,
    in_dim: usize,
    out_dim: usize,
    threads: Threads,
    cache_x: Option<Tensor>,
    cache_z: Option<Tensor>,
    /// Attention weights per block edge (in `Aggregation` index order).
    cache_alpha: Option<Vec<f32>>,
    /// Pre-activation attention logits per block edge.
    cache_pre: Option<Vec<f32>>,
    cache_y: Option<Tensor>,
}

impl GatLayer {
    /// New GAT layer. `relu = false` for the final (logit) layer.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, seed: u64) -> Self {
        GatLayer {
            w: Param::new(xavier_uniform(in_dim, out_dim, seed)),
            a_left: Param::new(xavier_uniform(1, out_dim, seed ^ 0x1111)),
            a_right: Param::new(xavier_uniform(1, out_dim, seed ^ 0x2222)),
            b: Param::new(Tensor::zeros(1, out_dim)),
            relu,
            in_dim,
            out_dim,
            threads: Threads::serial(),
            cache_x: None,
            cache_z: None,
            cache_alpha: None,
            cache_pre: None,
            cache_y: None,
        }
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

impl Layer for GatLayer {
    fn forward(&mut self, block: &Aggregation, x: &Tensor) -> Tensor {
        assert_eq!(x.rows(), block.num_src(), "x rows must equal num_src");
        assert_eq!(x.cols(), self.in_dim);
        let z = x.matmul_with(&self.w.value, self.threads);
        let a_l = self.a_left.value.row(0);
        let a_r = self.a_right.value.row(0);
        // Right attention term per source (reused across destinations).
        let r: Vec<f32> = (0..block.num_src()).map(|s| dot(a_r, z.row(s))).collect();
        let mut alpha: Vec<f32> = Vec::with_capacity(block.num_edges());
        let mut pre: Vec<f32> = Vec::with_capacity(block.num_edges());
        let mut y = Tensor::zeros(block.num_dst(), self.out_dim);
        for d in 0..block.num_dst() {
            let nbrs = block.neighbors(d);
            if nbrs.is_empty() {
                continue;
            }
            let l_d = dot(a_l, z.row(d));
            let start = alpha.len();
            for &s in nbrs {
                let p = l_d + r[s as usize];
                pre.push(p);
                alpha.push(if p >= 0.0 { p } else { ATTENTION_SLOPE * p });
            }
            softmax_slice(&mut alpha[start..]);
            let row = y.row_mut(d);
            for (i, &s) in nbrs.iter().enumerate() {
                let a = alpha[start + i];
                for (o, &v) in row.iter_mut().zip(z.row(s as usize).iter()) {
                    *o += a * v;
                }
            }
        }
        y.add_bias(self.b.value.row(0));
        if self.relu {
            relu_inplace(&mut y);
        }
        self.cache_x = Some(x.clone());
        self.cache_z = Some(z);
        self.cache_alpha = Some(alpha);
        self.cache_pre = Some(pre);
        self.cache_y = Some(y.clone());
        y
    }

    fn backward(&mut self, block: &Aggregation, dy: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("forward before backward");
        let z = self.cache_z.take().expect("forward before backward");
        let alpha = self.cache_alpha.take().expect("forward before backward");
        let pre = self.cache_pre.take().expect("forward before backward");
        let y = self.cache_y.take().expect("forward before backward");
        let mut dh = dy.clone();
        if self.relu {
            relu_backward_inplace(&mut dh, &y);
        }
        self.b.grad.add_assign(&Tensor::from_vec(1, self.out_dim, dh.sum_rows()));

        let a_l = self.a_left.value.row(0).to_vec();
        let a_r = self.a_right.value.row(0).to_vec();
        let mut dz = Tensor::zeros(block.num_src(), self.out_dim);
        let mut da_l = vec![0.0f32; self.out_dim];
        let mut da_r = vec![0.0f32; self.out_dim];

        let mut cursor = 0usize;
        for d in 0..block.num_dst() {
            let nbrs = block.neighbors(d);
            if nbrs.is_empty() {
                continue;
            }
            let dh_d = dh.row(d);
            let a_slice = &alpha[cursor..cursor + nbrs.len()];
            let p_slice = &pre[cursor..cursor + nbrs.len()];
            // dα_ds = dh_d · z_s ; aggregation gradient dz_s += α dh_d.
            let mut dalpha: Vec<f32> = Vec::with_capacity(nbrs.len());
            for (i, &s) in nbrs.iter().enumerate() {
                dalpha.push(dot(dh_d, z.row(s as usize)));
                let dst = dz.row_mut(s as usize);
                for (o, &v) in dst.iter_mut().zip(dh_d.iter()) {
                    *o += a_slice[i] * v;
                }
            }
            // Softmax backward.
            let inner: f32 = a_slice.iter().zip(dalpha.iter()).map(|(a, d)| a * d).sum();
            let mut dl_d = 0.0f32;
            for (i, &s) in nbrs.iter().enumerate() {
                let de = a_slice[i] * (dalpha[i] - inner);
                let dpre = de * leaky_relu_grad(p_slice[i], ATTENTION_SLOPE);
                dl_d += dpre;
                // dr_s = dpre → da_r and dz_s.
                let zs = z.row(s as usize);
                for c in 0..self.out_dim {
                    da_r[c] += dpre * zs[c];
                }
                let dst = dz.row_mut(s as usize);
                for (o, &ar) in dst.iter_mut().zip(a_r.iter()) {
                    *o += dpre * ar;
                }
            }
            // dl_d → da_l and dz_d.
            let zd = z.row(d);
            for c in 0..self.out_dim {
                da_l[c] += dl_d * zd[c];
            }
            let dst = dz.row_mut(d);
            for (o, &al) in dst.iter_mut().zip(a_l.iter()) {
                *o += dl_d * al;
            }
            cursor += nbrs.len();
        }

        self.a_left.grad.add_assign(&Tensor::from_vec(1, self.out_dim, da_l));
        self.a_right.grad.add_assign(&Tensor::from_vec(1, self.out_dim, da_r));
        self.w.grad.add_assign(&x.matmul_at_b_with(&dz, self.threads));
        dz.matmul_a_bt_with(&self.w.value, self.threads)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.a_left, &mut self.a_right, &mut self.b]
    }

    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn set_threads(&mut self, threads: Threads) {
        self.threads = threads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::{check_layer, test_block, test_input};

    #[test]
    fn shapes() {
        let block = test_block();
        let x = test_input(4);
        let mut l = GatLayer::new(4, 6, true, 1);
        let y = l.forward(&block, &x);
        assert_eq!((y.rows(), y.cols()), (3, 6));
        let dx = l.backward(&block, &Tensor::zeros(3, 6));
        assert_eq!((dx.rows(), dx.cols()), (5, 4));
    }

    #[test]
    fn gradients_correct() {
        let block = test_block();
        let x = test_input(4);
        let mut l = GatLayer::new(4, 3, false, 2);
        check_layer(&mut l, &block, &x);
    }

    #[test]
    fn attention_weights_sum_to_one() {
        let block = test_block();
        let x = test_input(4);
        let mut l = GatLayer::new(4, 3, false, 3);
        let _ = l.forward(&block, &x);
        let alpha = l.cache_alpha.as_ref().unwrap();
        let mut cursor = 0;
        for d in 0..block.num_dst() {
            let n = block.degree(d);
            let sum: f32 = alpha[cursor..cursor + n].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "dst {d} alpha sum {sum}");
            cursor += n;
        }
    }

    #[test]
    fn uniform_attention_when_scores_equal() {
        // With a_l = a_r = 0, attention is uniform and GAT degenerates to
        // a mean aggregator (over z).
        let block = test_block();
        let x = test_input(3);
        let mut l = GatLayer::new(3, 3, false, 1);
        l.a_left.value.fill_zero();
        l.a_right.value.fill_zero();
        l.w.value.fill_zero();
        for i in 0..3 {
            l.w.value.set(i, i, 1.0);
        }
        let y = l.forward(&block, &x);
        let expect = block.mean(&x);
        for r in 0..3 {
            for c in 0..3 {
                assert!((y.get(r, c) - expect.get(r, c)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn param_count() {
        let mut l = GatLayer::new(4, 6, true, 1);
        assert_eq!(l.num_params(), 4 * 6 + 6 + 6 + 6);
    }
}
