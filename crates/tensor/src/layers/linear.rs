//! Dense (fully-connected) layer.
//!
//! Ignores the block topology except for selecting the destination rows;
//! useful as an MLP baseline and as the building block the GNN layers
//! are tested against.

use gp_exec::Threads;

use crate::block::Aggregation;
use crate::init::xavier_uniform;
use crate::layers::Layer;
use crate::ops::{relu_backward_inplace, relu_inplace};
use crate::optim::Param;
use crate::tensor::Tensor;

/// `y = act(x_dst · W + b)`.
#[derive(Debug)]
pub struct DenseLayer {
    w: Param,
    b: Param,
    relu: bool,
    in_dim: usize,
    out_dim: usize,
    threads: Threads,
    cache_x_dst: Option<Tensor>,
    cache_y: Option<Tensor>,
}

impl DenseLayer {
    /// New dense layer. `relu = false` for the final (logit) layer.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, seed: u64) -> Self {
        DenseLayer {
            w: Param::new(xavier_uniform(in_dim, out_dim, seed)),
            b: Param::new(Tensor::zeros(1, out_dim)),
            relu,
            in_dim,
            out_dim,
            threads: Threads::serial(),
            cache_x_dst: None,
            cache_y: None,
        }
    }
}

impl Layer for DenseLayer {
    fn forward(&mut self, block: &Aggregation, x: &Tensor) -> Tensor {
        assert_eq!(x.rows(), block.num_src(), "x rows must equal num_src");
        assert_eq!(x.cols(), self.in_dim);
        let dst_idx: Vec<u32> = (0..block.num_dst() as u32).collect();
        let x_dst = x.select_rows(&dst_idx);
        let mut y = x_dst.matmul_with(&self.w.value, self.threads);
        y.add_bias(self.b.value.row(0));
        if self.relu {
            relu_inplace(&mut y);
        }
        self.cache_x_dst = Some(x_dst);
        self.cache_y = Some(y.clone());
        y
    }

    fn backward(&mut self, block: &Aggregation, dy: &Tensor) -> Tensor {
        let x_dst = self.cache_x_dst.take().expect("forward before backward");
        let y = self.cache_y.take().expect("forward before backward");
        let mut dy = dy.clone();
        if self.relu {
            relu_backward_inplace(&mut dy, &y);
        }
        self.w.grad.add_assign(&x_dst.matmul_at_b_with(&dy, self.threads));
        self.b.grad.add_assign(&Tensor::from_vec(1, self.out_dim, dy.sum_rows()));
        let dx_dst = dy.matmul_a_bt_with(&self.w.value, self.threads);
        // Scatter onto the full source gradient (non-destination sources
        // receive zero gradient from a dense layer).
        let mut dx = Tensor::zeros(block.num_src(), self.in_dim);
        for d in 0..block.num_dst() {
            dx.row_mut(d).copy_from_slice(dx_dst.row(d));
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn set_threads(&mut self, threads: Threads) {
        self.threads = threads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::{check_layer, test_block, test_input};

    #[test]
    fn shapes() {
        let block = test_block();
        let x = test_input(4);
        let mut l = DenseLayer::new(4, 6, true, 1);
        let y = l.forward(&block, &x);
        assert_eq!((y.rows(), y.cols()), (3, 6));
        let dy = Tensor::zeros(3, 6);
        let dx = l.backward(&block, &dy);
        assert_eq!((dx.rows(), dx.cols()), (5, 4));
    }

    #[test]
    fn gradients_correct() {
        let block = test_block();
        let x = test_input(4);
        let mut l = DenseLayer::new(4, 3, false, 2);
        check_layer(&mut l, &block, &x);
    }

    #[test]
    fn relu_masks_negative_outputs() {
        let block = test_block();
        let x = test_input(4);
        let mut l = DenseLayer::new(4, 8, true, 3);
        let y = l.forward(&block, &x);
        assert!(y.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn param_count() {
        let mut l = DenseLayer::new(4, 6, true, 1);
        assert_eq!(l.num_params(), 4 * 6 + 6);
    }

    #[test]
    #[should_panic(expected = "forward before backward")]
    fn backward_requires_forward() {
        let block = test_block();
        let mut l = DenseLayer::new(4, 3, false, 1);
        let _ = l.backward(&block, &Tensor::zeros(3, 3));
    }
}
