//! GraphSAGE layer with mean aggregator (Hamilton et al., NeurIPS 2017).
//!
//! `y_d = act( x_d · W_self + mean_{s ∈ N(d)}(x_s) · W_neigh + b )`
//!
//! This is the model DistGNN supports and the paper's primary
//! architecture.

use gp_exec::Threads;

use crate::block::Aggregation;
use crate::init::xavier_uniform;
use crate::layers::Layer;
use crate::ops::{relu_backward_inplace, relu_inplace};
use crate::optim::Param;
use crate::tensor::Tensor;

/// GraphSAGE-mean layer.
#[derive(Debug)]
pub struct SageLayer {
    w_self: Param,
    w_neigh: Param,
    b: Param,
    relu: bool,
    in_dim: usize,
    out_dim: usize,
    threads: Threads,
    cache_x_dst: Option<Tensor>,
    cache_agg: Option<Tensor>,
    cache_y: Option<Tensor>,
}

impl SageLayer {
    /// New GraphSAGE layer. `relu = false` for the final (logit) layer.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, seed: u64) -> Self {
        SageLayer {
            w_self: Param::new(xavier_uniform(in_dim, out_dim, seed)),
            w_neigh: Param::new(xavier_uniform(in_dim, out_dim, seed ^ 0x5a5a)),
            b: Param::new(Tensor::zeros(1, out_dim)),
            relu,
            in_dim,
            out_dim,
            threads: Threads::serial(),
            cache_x_dst: None,
            cache_agg: None,
            cache_y: None,
        }
    }
}

impl Layer for SageLayer {
    fn forward(&mut self, block: &Aggregation, x: &Tensor) -> Tensor {
        assert_eq!(x.rows(), block.num_src(), "x rows must equal num_src");
        assert_eq!(x.cols(), self.in_dim);
        let dst_idx: Vec<u32> = (0..block.num_dst() as u32).collect();
        let x_dst = x.select_rows(&dst_idx);
        let agg = block.mean(x);
        let mut y = x_dst.matmul_with(&self.w_self.value, self.threads);
        y.add_assign(&agg.matmul_with(&self.w_neigh.value, self.threads));
        y.add_bias(self.b.value.row(0));
        if self.relu {
            relu_inplace(&mut y);
        }
        self.cache_x_dst = Some(x_dst);
        self.cache_agg = Some(agg);
        self.cache_y = Some(y.clone());
        y
    }

    fn backward(&mut self, block: &Aggregation, dy: &Tensor) -> Tensor {
        let x_dst = self.cache_x_dst.take().expect("forward before backward");
        let agg = self.cache_agg.take().expect("forward before backward");
        let y = self.cache_y.take().expect("forward before backward");
        let mut dy = dy.clone();
        if self.relu {
            relu_backward_inplace(&mut dy, &y);
        }
        self.w_self.grad.add_assign(&x_dst.matmul_at_b_with(&dy, self.threads));
        self.w_neigh.grad.add_assign(&agg.matmul_at_b_with(&dy, self.threads));
        self.b.grad.add_assign(&Tensor::from_vec(1, self.out_dim, dy.sum_rows()));
        // Gradient to sources: through the self path (destinations only)
        // and through the mean aggregation (all sources).
        let dx_self = dy.matmul_a_bt_with(&self.w_self.value, self.threads);
        let dagg = dy.matmul_a_bt_with(&self.w_neigh.value, self.threads);
        let mut dx = block.mean_backward(&dagg);
        for d in 0..block.num_dst() {
            let row = dx.row_mut(d);
            for (o, &v) in row.iter_mut().zip(dx_self.row(d).iter()) {
                *o += v;
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_self, &mut self.w_neigh, &mut self.b]
    }

    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn set_threads(&mut self, threads: Threads) {
        self.threads = threads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::{check_layer, test_block, test_input};

    #[test]
    fn shapes() {
        let block = test_block();
        let x = test_input(4);
        let mut l = SageLayer::new(4, 6, true, 1);
        let y = l.forward(&block, &x);
        assert_eq!((y.rows(), y.cols()), (3, 6));
        let dx = l.backward(&block, &Tensor::zeros(3, 6));
        assert_eq!((dx.rows(), dx.cols()), (5, 4));
    }

    #[test]
    fn gradients_correct() {
        let block = test_block();
        let x = test_input(4);
        let mut l = SageLayer::new(4, 3, false, 2);
        check_layer(&mut l, &block, &x);
    }

    #[test]
    fn aggregates_neighbors() {
        // With W_self = 0 and W_neigh = I, the output equals the
        // neighbour mean.
        let block = test_block();
        let x = test_input(3);
        let mut l = SageLayer::new(3, 3, false, 1);
        l.w_self.value.fill_zero();
        l.w_neigh.value.fill_zero();
        for i in 0..3 {
            l.w_neigh.value.set(i, i, 1.0);
        }
        let y = l.forward(&block, &x);
        let expect = block.mean(&x);
        for r in 0..3 {
            for c in 0..3 {
                assert!((y.get(r, c) - expect.get(r, c)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn param_count() {
        let mut l = SageLayer::new(4, 6, true, 1);
        assert_eq!(l.num_params(), 2 * 4 * 6 + 6);
    }

    #[test]
    fn zero_grad_resets() {
        let block = test_block();
        let x = test_input(4);
        let mut l = SageLayer::new(4, 3, false, 2);
        let y = l.forward(&block, &x);
        let dy = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; 9]);
        let _ = l.backward(&block, &dy);
        assert!(l.w_self.grad.norm() > 0.0);
        l.zero_grad();
        assert_eq!(l.w_self.grad.norm(), 0.0);
    }
}
