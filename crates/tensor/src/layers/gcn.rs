//! GCN layer (Kipf & Welling, ICLR 2017), mean-normalised variant.
//!
//! `y_d = act( (½ x_d + ½ mean_{s ∈ N(d)}(x_s)) · W + b )`
//!
//! The self-loop term of the original symmetric normalisation is
//! approximated by averaging the destination's own representation with
//! its neighbour mean — the standard "GCN with mean norm" used when
//! degrees differ between the sampled block and the full graph.

use gp_exec::Threads;

use crate::block::Aggregation;
use crate::init::xavier_uniform;
use crate::layers::Layer;
use crate::ops::{relu_backward_inplace, relu_inplace};
use crate::optim::Param;
use crate::tensor::Tensor;

/// GCN layer with mean normalisation.
#[derive(Debug)]
pub struct GcnLayer {
    w: Param,
    b: Param,
    relu: bool,
    in_dim: usize,
    out_dim: usize,
    threads: Threads,
    cache_h: Option<Tensor>,
    cache_y: Option<Tensor>,
}

impl GcnLayer {
    /// New GCN layer. `relu = false` for the final (logit) layer.
    pub fn new(in_dim: usize, out_dim: usize, relu: bool, seed: u64) -> Self {
        GcnLayer {
            w: Param::new(xavier_uniform(in_dim, out_dim, seed)),
            b: Param::new(Tensor::zeros(1, out_dim)),
            relu,
            in_dim,
            out_dim,
            threads: Threads::serial(),
            cache_h: None,
            cache_y: None,
        }
    }
}

impl Layer for GcnLayer {
    fn forward(&mut self, block: &Aggregation, x: &Tensor) -> Tensor {
        assert_eq!(x.rows(), block.num_src(), "x rows must equal num_src");
        assert_eq!(x.cols(), self.in_dim);
        // h = ½ x_dst + ½ mean(x)
        let mut h = block.mean(x);
        h.scale(0.5);
        for d in 0..block.num_dst() {
            let row = h.row_mut(d);
            for (o, &v) in row.iter_mut().zip(x.row(d).iter()) {
                *o += 0.5 * v;
            }
        }
        let mut y = h.matmul_with(&self.w.value, self.threads);
        y.add_bias(self.b.value.row(0));
        if self.relu {
            relu_inplace(&mut y);
        }
        self.cache_h = Some(h);
        self.cache_y = Some(y.clone());
        y
    }

    fn backward(&mut self, block: &Aggregation, dy: &Tensor) -> Tensor {
        let h = self.cache_h.take().expect("forward before backward");
        let y = self.cache_y.take().expect("forward before backward");
        let mut dy = dy.clone();
        if self.relu {
            relu_backward_inplace(&mut dy, &y);
        }
        self.w.grad.add_assign(&h.matmul_at_b_with(&dy, self.threads));
        self.b.grad.add_assign(&Tensor::from_vec(1, self.out_dim, dy.sum_rows()));
        let mut dh = dy.matmul_a_bt_with(&self.w.value, self.threads);
        dh.scale(0.5);
        // dh flows to sources through the mean and to destinations
        // directly (both scaled by ½, already applied above).
        let mut dx = block.mean_backward(&dh);
        for d in 0..block.num_dst() {
            let row = dx.row_mut(d);
            for (o, &v) in row.iter_mut().zip(dh.row(d).iter()) {
                *o += v;
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn set_threads(&mut self, threads: Threads) {
        self.threads = threads;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck::{check_layer, test_block, test_input};

    #[test]
    fn shapes() {
        let block = test_block();
        let x = test_input(4);
        let mut l = GcnLayer::new(4, 6, true, 1);
        let y = l.forward(&block, &x);
        assert_eq!((y.rows(), y.cols()), (3, 6));
        let dx = l.backward(&block, &Tensor::zeros(3, 6));
        assert_eq!((dx.rows(), dx.cols()), (5, 4));
    }

    #[test]
    fn gradients_correct() {
        let block = test_block();
        let x = test_input(4);
        let mut l = GcnLayer::new(4, 3, false, 2);
        check_layer(&mut l, &block, &x);
    }

    #[test]
    fn identity_weight_averages_self_and_neighbors() {
        let block = test_block();
        let x = test_input(3);
        let mut l = GcnLayer::new(3, 3, false, 1);
        l.w.value.fill_zero();
        for i in 0..3 {
            l.w.value.set(i, i, 1.0);
        }
        let y = l.forward(&block, &x);
        let agg = block.mean(&x);
        for r in 0..3 {
            for c in 0..3 {
                let expect = 0.5 * x.get(r, c) + 0.5 * agg.get(r, c);
                assert!((y.get(r, c) - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn param_count() {
        let mut l = GcnLayer::new(4, 6, true, 1);
        assert_eq!(l.num_params(), 4 * 6 + 6);
    }
}
