//! # gp-tensor — minimal dense tensor + GNN layers with manual backprop
//!
//! The NN substrate for both training engines. Everything the paper's
//! models need, nothing more:
//!
//! * [`Tensor`] — dense row-major `f32` matrix with the three matmul
//!   variants backprop needs (`A·B`, `Aᵀ·B`, `A·Bᵀ`).
//! * [`Aggregation`] — a sampled *block* (DGL terminology): a bipartite
//!   adjacency from `num_src` source rows to `num_dst` destination rows,
//!   with the convention that the first `num_dst` source rows are the
//!   destinations themselves.
//! * [`layers`] — GraphSAGE (mean), GCN and GAT layers, each with
//!   explicit `forward` / `backward`.
//! * [`GnnModel`] — a stack of layers of one [`ModelKind`] with a final
//!   linear classifier, cross-entropy loss and an analytic FLOP counter
//!   used by the cluster cost model.
//! * [`optim`] — SGD and Adam.
//!
//! Graph aggregation structure is the *engine's* responsibility (that is
//! where communication happens and is accounted); layers only see dense
//! matrices plus the block topology.

pub mod block;
pub mod flops;
pub mod init;
pub mod layers;
pub mod loss;
pub mod model;
pub mod ops;
pub mod optim;
pub mod tensor;

pub use block::Aggregation;
pub use model::{GnnModel, ModelConfig, ModelKind};
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::Tensor;
