//! DistDGL artifacts: Figures 12–26 and Table 5.

use gp_core::amortize::{epochs_to_amortize, fmt_amortize};
use gp_core::config::{PaperParams, ParamGrid};
use gp_core::experiment::distdgl_epoch;
use gp_core::report::{fmt, Distribution, Table};
use gp_core::sweep::distdgl_grid_threaded;
use gp_graph::DatasetId;
use gp_tensor::ModelKind;

use crate::{scale_out_factors, Ctx};

/// Global batch size scaled to the analogue datasets (the paper's 1024
/// on 200×-larger graphs).
const DEFAULT_GBS: u32 = 1024;

/// Batch sizes of the Figure-26 sweep: scaled analogues of the paper's
/// 512 … 32768 (same ×64 span).
const BATCH_SWEEP: [u32; 7] = [32, 64, 128, 256, 512, 1024, 2048];

fn dist_cells(d: &Distribution) -> Vec<String> {
    vec![fmt(d.min), fmt(d.p25), fmt(d.median), fmt(d.p75), fmt(d.max), fmt(d.mean)]
}

/// Figure 12: edge-cut ratio per graph, partitioner and partition count.
/// Expected: KaHIP lowest (near zero on DI), Random highest.
pub fn fig12(ctx: &Ctx) {
    let mut t = Table::new("fig12_edge_cut", &["graph", "k", "partitioner", "edge_cut"]);
    for id in DatasetId::ALL {
        for &k in &scale_out_factors(ctx.scale) {
            for tp in ctx.vertex_partitions(id, k).iter() {
                t.push(vec![
                    id.name().into(),
                    k.to_string(),
                    tp.name.clone(),
                    format!("{:.4}", tp.partition.edge_cut_ratio()),
                ]);
            }
        }
    }
    ctx.emit(&t);
}

/// Figure 13: training-vertex balance at 8 partitions.
pub fn fig13(ctx: &Ctx) {
    let k = if scale_out_factors(ctx.scale).contains(&8) { 8 } else { 4 };
    let mut t =
        Table::new("fig13_train_vertex_balance", &["graph", "partitioner", "train_balance"]);
    for id in DatasetId::ALL {
        let split = ctx.split(id);
        for tp in ctx.vertex_partitions(id, k).iter() {
            t.push(vec![
                id.name().into(),
                tp.name.clone(),
                fmt(tp.partition.subset_balance(&split.train)),
            ]);
        }
    }
    ctx.emit(&t);
}

/// Figure 14: balance of mini-batches in terms of input vertices, small
/// and large cluster. Expected: imbalance grows with partition count.
pub fn fig14(ctx: &Ctx) {
    let factors = scale_out_factors(ctx.scale);
    let mut t = Table::new("fig14_input_balance", &["graph", "k", "partitioner", "input_balance"]);
    for id in DatasetId::ALL {
        for k in [factors[0], *factors.last().expect("non-empty")] {
            let split = ctx.split(id);
            for tp in ctx.vertex_partitions(id, k).iter() {
                let summary = distdgl_epoch(
                    &ctx.graph(id),
                    &tp.partition,
                    &split,
                    PaperParams::middle(),
                    ModelKind::Sage,
                    DEFAULT_GBS,
                );
                t.push(vec![
                    id.name().into(),
                    k.to_string(),
                    tp.name.clone(),
                    fmt(summary.mean_input_balance),
                ]);
            }
        }
    }
    ctx.emit(&t);
}

/// Figure 15: vertex-partitioning time (paper shows a log scale; we emit
/// raw seconds). Expected: KaHIP slowest, Random/LDG fastest.
pub fn fig15(ctx: &Ctx) {
    let factors = scale_out_factors(ctx.scale);
    let k_hi = *factors.last().expect("non-empty");
    let mut t = Table::new("fig15_partitioning_time", &["graph", "k", "partitioner", "seconds"]);
    for id in DatasetId::ALL {
        for k in [4, k_hi] {
            for tp in ctx.vertex_partitions(id, k).iter() {
                t.push(vec![
                    id.name().into(),
                    k.to_string(),
                    tp.name.clone(),
                    format!("{:.4}", tp.seconds),
                ]);
            }
        }
    }
    ctx.emit(&t);
}

/// Figure 16: DistDGL GraphSage speedup distribution over the grid per
/// graph, partitioner and cluster size.
pub fn fig16(ctx: &Ctx) {
    let grid: Vec<PaperParams> = ParamGrid::iter().collect();
    let mut t = Table::new(
        "fig16_distdgl_speedup",
        &["graph", "k", "partitioner", "min", "p25", "median", "p75", "max", "mean"],
    );
    for id in DatasetId::ALL {
        for &k in &scale_out_factors(ctx.scale) {
            let parts = ctx.vertex_partitions(id, k);
            let split = ctx.split(id);
            for outcome in
                distdgl_grid_threaded(&ctx.graph(id), &split, &parts, &grid, ModelKind::Sage, DEFAULT_GBS, ctx.threads)
            {
                let d = Distribution::of(&outcome.speedups).expect("non-empty grid");
                let mut row = vec![id.name().to_string(), k.to_string(), outcome.name.clone()];
                row.extend(dist_cells(&d));
                t.push(row);
            }
        }
    }
    ctx.emit(&t);
}

/// Figure 17: per-step training-time balance across workers.
pub fn fig17(ctx: &Ctx) {
    let k = if scale_out_factors(ctx.scale).contains(&8) { 8 } else { 4 };
    let mut t = Table::new("fig17_time_balance", &["graph", "partitioner", "time_balance"]);
    for id in DatasetId::ALL {
        let split = ctx.split(id);
        for tp in ctx.vertex_partitions(id, k).iter() {
            let summary = distdgl_epoch(
                &ctx.graph(id),
                &tp.partition,
                &split,
                PaperParams::middle(),
                ModelKind::Sage,
                DEFAULT_GBS,
            );
            t.push(vec![id.name().into(), tp.name.clone(), fmt(summary.mean_time_balance)]);
        }
    }
    ctx.emit(&t);
}

/// Speedup vs one hyper-parameter axis at the smallest and largest
/// cluster (shared engine for Figures 18, 20, 23).
fn speedup_axis(ctx: &Ctx, name: &str, grids: &[(usize, PaperParams)]) {
    let factors = scale_out_factors(ctx.scale);
    let mut t =
        Table::new(name, &["graph", "k", "value", "partitioner", "speedup"]);
    let grid: Vec<PaperParams> = grids.iter().map(|&(_, p)| p).collect();
    for id in DatasetId::ALL {
        for k in [factors[0], *factors.last().expect("non-empty")] {
            let parts = ctx.vertex_partitions(id, k);
            let split = ctx.split(id);
            for outcome in
                distdgl_grid_threaded(&ctx.graph(id), &split, &parts, &grid, ModelKind::Sage, DEFAULT_GBS, ctx.threads)
            {
                for (&(value, _), &s) in grids.iter().zip(outcome.speedups.iter()) {
                    t.push(vec![
                        id.name().into(),
                        k.to_string(),
                        value.to_string(),
                        outcome.name.clone(),
                        fmt(s),
                    ]);
                }
            }
        }
    }
    ctx.emit(&t);
}

/// Figure 18: speedup vs feature size. Expected: larger features ⇒
/// partitioning more effective.
pub fn fig18(ctx: &Ctx) {
    let grids: Vec<(usize, PaperParams)> = [16, 64, 512]
        .into_iter()
        .map(|f| (f, PaperParams { feature_size: f, ..PaperParams::middle() }))
        .collect();
    speedup_axis(ctx, "fig18_speedup_vs_feature", &grids);
}

/// Figure 20: speedup vs hidden dimension. Expected: larger hidden ⇒
/// partitioning less effective (compute dominates).
pub fn fig20(ctx: &Ctx) {
    let grids: Vec<(usize, PaperParams)> = [16, 64, 512]
        .into_iter()
        .map(|h| (h, PaperParams { hidden_dim: h, ..PaperParams::middle() }))
        .collect();
    speedup_axis(ctx, "fig20_speedup_vs_hidden", &grids);
}

/// Figure 23: speedup vs number of layers. Expected: no strong trend.
pub fn fig23(ctx: &Ctx) {
    let grids: Vec<(usize, PaperParams)> = [2, 3, 4]
        .into_iter()
        .map(|l| (l, PaperParams { num_layers: l, ..PaperParams::middle() }))
        .collect();
    speedup_axis(ctx, "fig23_speedup_vs_layers", &grids);
}

/// Phase-time table for a fixed configuration across one axis.
fn phase_table(
    ctx: &Ctx,
    name: &str,
    id: DatasetId,
    k: u32,
    kind: ModelKind,
    configs: &[(String, PaperParams, u32)],
) {
    let mut t = Table::new(
        name,
        &["config", "partitioner", "sampling", "feature_load", "forward", "backward", "update"],
    );
    let split = ctx.split(id);
    for (label, params, gbs) in configs {
        for tp in ctx.vertex_partitions(id, k).iter() {
            let s = distdgl_epoch(&ctx.graph(id), &tp.partition, &split, *params, kind, *gbs);
            t.push(vec![
                label.clone(),
                tp.name.clone(),
                format!("{:.4}", s.phases.sampling),
                format!("{:.4}", s.phases.feature_load),
                format!("{:.4}", s.phases.forward),
                format!("{:.4}", s.phases.backward),
                format!("{:.4}", s.phases.update),
            ]);
        }
    }
    ctx.emit(&t);
}

/// Figure 19: phase times of a 3-layer GraphSAGE (h=64) on EU and DI for
/// different feature sizes. Expected: fetching dominates at f=512 on EU,
/// sampling dominates on DI.
pub fn fig19(ctx: &Ctx) {
    for id in [DatasetId::EU, DatasetId::DI] {
        let configs: Vec<(String, PaperParams, u32)> = [16, 64, 512]
            .into_iter()
            .map(|f| {
                (
                    format!("f={f}"),
                    PaperParams { feature_size: f, ..PaperParams::middle() },
                    DEFAULT_GBS,
                )
            })
            .collect();
        phase_table(
            ctx,
            &format!("fig19_phases_{}", id.name().to_lowercase()),
            id,
            4,
            ModelKind::Sage,
            &configs,
        );
    }
}

/// Figure 21: phase times vs layer count (OR, f=h=64, 4 machines).
pub fn fig21(ctx: &Ctx) {
    let configs: Vec<(String, PaperParams, u32)> = [2, 3, 4]
        .into_iter()
        .map(|l| {
            (format!("layers={l}"), PaperParams { num_layers: l, ..PaperParams::middle() }, DEFAULT_GBS)
        })
        .collect();
    phase_table(ctx, "fig21_phases_vs_layers", DatasetId::OR, 4, ModelKind::Sage, &configs);
}

/// Figure 22: phase times vs hidden dimension (OR, 3 layers, f=64).
pub fn fig22(ctx: &Ctx) {
    let configs: Vec<(String, PaperParams, u32)> = [16, 64, 512]
        .into_iter()
        .map(|h| {
            (format!("h={h}"), PaperParams { hidden_dim: h, ..PaperParams::middle() }, DEFAULT_GBS)
        })
        .collect();
    phase_table(ctx, "fig22_phases_vs_hidden", DatasetId::OR, 4, ModelKind::Sage, &configs);
}

/// Figure 24: scale-out effectiveness of DistDGL — mean speedup, remote
/// vertices % and edge-cut % of Random per cluster size. Expected:
/// effectiveness decreases with k (except on DI).
pub fn fig24(ctx: &Ctx) {
    let grid: Vec<PaperParams> = vec![PaperParams::middle()];
    let mut t = Table::new(
        "fig24_scaleout",
        &["graph", "k", "partitioner", "speedup", "remote_pct", "edge_cut_pct"],
    );
    for id in DatasetId::ALL {
        for &k in &scale_out_factors(ctx.scale) {
            let parts = ctx.vertex_partitions(id, k);
            let split = ctx.split(id);
            let cut_random = parts
                .iter()
                .find(|p| p.name == "Random")
                .expect("baseline")
                .partition
                .edge_cut_ratio();
            for outcome in
                distdgl_grid_threaded(&ctx.graph(id), &split, &parts, &grid, ModelKind::Sage, DEFAULT_GBS, ctx.threads)
            {
                let tp = parts.iter().find(|p| p.name == outcome.name).expect("same set");
                t.push(vec![
                    id.name().into(),
                    k.to_string(),
                    outcome.name.clone(),
                    fmt(outcome.speedups[0]),
                    fmt(outcome.remote_pct[0]),
                    fmt(100.0 * tp.partition.edge_cut_ratio() / cut_random.max(1e-12)),
                ]);
            }
        }
    }
    ctx.emit(&t);
}

/// Figure 25: phase times of 3-layer GAT vs GraphSage (f=512, h=64) on
/// OR across cluster sizes. Expected: GAT compute-heavier; feature
/// loading shrinks with scale-out.
pub fn fig25(ctx: &Ctx) {
    let params = PaperParams { feature_size: 512, ..PaperParams::middle() };
    for kind in [ModelKind::Gat, ModelKind::Sage] {
        let mut t = Table::new(
            &format!("fig25_phases_{}", kind.name().to_lowercase()),
            &["k", "partitioner", "sampling", "feature_load", "forward", "backward", "update"],
        );
        let id = DatasetId::OR;
        let split = ctx.split(id);
        for &k in &scale_out_factors(ctx.scale) {
            for tp in ctx.vertex_partitions(id, k).iter() {
                let s =
                    distdgl_epoch(&ctx.graph(id), &tp.partition, &split, params, kind, DEFAULT_GBS);
                t.push(vec![
                    k.to_string(),
                    tp.name.clone(),
                    format!("{:.4}", s.phases.sampling),
                    format!("{:.4}", s.phases.feature_load),
                    format!("{:.4}", s.phases.forward),
                    format!("{:.4}", s.phases.backward),
                    format!("{:.4}", s.phases.update),
                ]);
            }
        }
        ctx.emit(&t);
    }
}

/// Figure 26: batch-size sweep on OR (16 machines where available):
/// speedup, traffic % and remote vertices % of Random for a 3-layer
/// GraphSage (f=512, h=64). Expected: traffic % falls as batches grow;
/// effectiveness rises for large features.
pub fn fig26(ctx: &Ctx) {
    let id = DatasetId::OR;
    let factors = scale_out_factors(ctx.scale);
    let k = if factors.contains(&16) { 16 } else { *factors.last().expect("non-empty") };
    let split = ctx.split(id);
    let parts = ctx.vertex_partitions(id, k);
    for (label, params) in [
        ("f512", PaperParams { feature_size: 512, ..PaperParams::middle() }),
        ("f64", PaperParams::middle()),
    ] {
        let mut t = Table::new(
            &format!("fig26_batch_sweep_{label}"),
            &["batch_size", "partitioner", "speedup", "traffic_pct", "remote_pct"],
        );
        for &gbs in &BATCH_SWEEP {
            for outcome in distdgl_grid_threaded(
                &ctx.graph(id),
                &split,
                &parts,
                &[params],
                ModelKind::Sage,
                gbs,
                ctx.threads,
            ) {
                t.push(vec![
                    gbs.to_string(),
                    outcome.name.clone(),
                    fmt(outcome.speedups[0]),
                    fmt(outcome.traffic_pct[0]),
                    fmt(outcome.remote_pct[0]),
                ]);
            }
        }
        ctx.emit(&t);
    }
}

/// Table 5: epochs until partitioning time is amortised (DistDGL),
/// averaged over cluster sizes at the middle configuration.
pub fn table5(ctx: &Ctx) {
    let mut t = Table::new(
        "table5_amortization_distdgl",
        &["graph", "ByteGNN", "KaHIP", "LDG", "Spinner", "METIS"],
    );
    let params = PaperParams::middle();
    for id in DatasetId::ALL {
        let split = ctx.split(id);
        let mut row = vec![id.name().to_string()];
        for name in ["ByteGNN", "KaHIP", "LDG", "Spinner", "METIS"] {
            let mut values = Vec::new();
            for &k in &scale_out_factors(ctx.scale) {
                let parts = ctx.vertex_partitions(id, k);
                let random = parts.iter().find(|p| p.name == "Random").expect("baseline");
                let own = parts.iter().find(|p| p.name == name).expect("registered");
                let base = distdgl_epoch(
                    &ctx.graph(id),
                    &random.partition,
                    &split,
                    params,
                    ModelKind::Sage,
                    DEFAULT_GBS,
                );
                let report = distdgl_epoch(
                    &ctx.graph(id),
                    &own.partition,
                    &split,
                    params,
                    ModelKind::Sage,
                    DEFAULT_GBS,
                );
                values.push(epochs_to_amortize(
                    own.seconds,
                    base.epoch_time(),
                    report.epoch_time(),
                ));
            }
            let avg = if values.iter().any(Option::is_none) {
                None
            } else {
                Some(values.iter().map(|v| v.expect("checked")).sum::<f64>() / values.len() as f64)
            };
            row.push(fmt_amortize(avg));
        }
        t.push(row);
    }
    ctx.emit(&t);
}
