//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * `hdrf-lambda` — HDRF's balance weight λ: replication vs balance.
//! * `hep-tau` — HEP's threshold τ: streaming share vs quality.
//! * `fanout` — fan-out sampling vs full-neighbourhood expansion.
//! * `costmodel` — bandwidth sensitivity of the simulated speedups.
//! * `cache` — DistDGL-style hot-vertex feature cache (extension).
//! * `greedy` — PowerGraph Greedy vs its descendant HDRF (extension).
//! * `extensions` — Grid2D / Greedy / ReLDG against the paper roster.
//! * `cdr` — DistGNN cd-r delayed aggregation (sync every r epochs).
//! * `faults` — recovery overhead per partitioner under seeded fault
//!   injection (crashes + stragglers + brownouts; extension).
//! * `mitigation` — mitigated vs unmitigated epoch time per partitioner
//!   under a crash-free straggler/brownout stress schedule (extension).
//! * `phases` — per-(worker, phase) breakdown of traced engine runs via
//!   the span recorder (extension; the aggregate `gnnpart trace
//!   --phase-csv` emits).
//! * `diagnose` — per-partitioner skew/summary CSVs, Prometheus text,
//!   markdown run reports and `BENCH_diagnose.json` from the metrics
//!   aggregation layer, exactness-cross-checked against the engine
//!   reports (extension; the aggregates behind `gnnpart diagnose`).
//! * `chaos` — elastic-membership soak per partitioner: seeded churn
//!   (leaves + rejoins) and faults with periodic checkpoints through
//!   both engines' `.elastic(..)` `RunSpec` legs, the elastic contract
//!   (bit-identical reruns, traced == untraced, never worse than
//!   crash-only recovery, exact span sums) verified per row, plus
//!   `BENCH_chaos.json` with the recovery-overhead and lost-progress
//!   trajectory (extension; the soak behind `gnnpart chaos`).
//! * `netchaos` — the chaos soak composed with a seeded message-level
//!   network-fault plan (loss, duplication, reorder, partition windows)
//!   through both engines' `.net(..)` `RunSpec` legs, verifying
//!   exactly-once delivery and that the bounded-staleness degraded mode
//!   is never worse than abort-and-recover, plus `BENCH_netchaos.json`
//!   (extension; the soak behind `gnnpart netchaos`).
//! * `stream` — streaming dynamic-graph sweep: every partitioner of
//!   both rosters replays a seeded mutation stream under each
//!   repartition policy (never / threshold / periodic), the partition
//!   maintained incrementally with the modeled repartition cost
//!   charged in simulated seconds, the stream contract (bit-identical
//!   reruns, traced == untraced, policies never worse than `never`)
//!   verified per row, plus `BENCH_stream.json` with the per-batch
//!   quality-decay curves and recovered speedups (extension; the
//!   sweep behind `gnnpart stream`).
//! * `perf` — host-time benchmark of the pinned workload matrix
//!   (generated OR analogue → all 12 partitioners → one healthy epoch
//!   per (partitioner, engine) at pool widths 1 and auto), measured
//!   with `gp-prof` scoped timers and the counting allocator, plus
//!   `BENCH_perf.json` and `PERF_report.md` (extension; the matrix
//!   behind `gnnpart bench`). Unlike every other ablation its values
//!   are real wall seconds and vary run to run, so it is **not** part
//!   of `all` and its artifact is compared structurally
//!   (`scripts/bench_diff.py`), never byte for byte.
//!
//! ```text
//! cargo run -p gp-bench --release --bin ablations -- all
//! cargo run -p gp-bench --release --bin ablations -- phases --quick --threads 4
//! ```
//!
//! `--quick` shrinks the fault/mitigation ablations to a tiny-scale
//! smoke configuration (CSVs land in `results/ablations-quick` so the
//! committed full-scale results stay untouched). `--threads N|auto`
//! sets the sweep-level `gp-exec` pool width (one cell per job) and
//! `--engine-threads N|auto` the intra-epoch width inside each engine
//! (per-worker compute); the emitted CSVs are bit-identical for every
//! choice of either knob (`--threads 1 --engine-threads 1` is the
//! serial reference oracle) — only the wall-clock speedup printed to
//! stdout changes.

use gp_bench::Ctx;
use gp_cluster::{ClusterSpec, NetworkSpec, RunSpec};
use gp_core::config::PaperParams;
use gp_core::report::{fmt, Table};
use gp_distdgl::{DistDglConfig, DistDglEngine};
use gp_distgnn::{DistGnnConfig, DistGnnEngine};
use gp_graph::{DatasetId, GraphScale};
use gp_partition::prelude::*;
use gp_tensor::ModelKind;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    args.retain(|a| a != "--quick");
    // `--prof` turns the gp-prof scoped timers on for any ablation and
    // prints the host-time profile to stdout afterwards. The profile
    // never reaches an artifact file: every emitted CSV/JSON stays
    // byte-identical with and without the flag.
    let prof = args.iter().any(|a| a == "--prof");
    args.retain(|a| a != "--prof");
    if prof {
        gp_prof::set_enabled(true);
        gp_prof::set_mem_enabled(true);
    }
    let threads = match gp_bench::take_parallelism_flags(&mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let which = args.first().map(String::as_str).unwrap_or("all");
    let (scale, out_dir) = if quick {
        (GraphScale::Tiny, "results/ablations-quick")
    } else {
        (GraphScale::Small, "results/ablations")
    };
    let ctx = Ctx::with_threads(scale, out_dir.into(), threads);
    match which {
        "hdrf-lambda" => hdrf_lambda(&ctx),
        "hep-tau" => hep_tau(&ctx),
        "fanout" => fanout(&ctx),
        "costmodel" => costmodel(&ctx),
        "cache" => cache(&ctx),
        "greedy" => greedy(&ctx),
        "extensions" => extensions(&ctx),
        "cdr" => cdr(&ctx),
        "faults" => faults(&ctx, quick),
        "mitigation" => mitigation(&ctx, quick),
        "phases" => phases(&ctx, quick),
        "diagnose" => diagnose(&ctx, quick),
        "chaos" => chaos(&ctx, quick),
        "netchaos" => netchaos(&ctx, quick),
        "stream" => stream(&ctx, quick),
        "perf" => perf(&ctx, quick),
        "all" => {
            hdrf_lambda(&ctx);
            hep_tau(&ctx);
            fanout(&ctx);
            costmodel(&ctx);
            cache(&ctx);
            greedy(&ctx);
            extensions(&ctx);
            cdr(&ctx);
            faults(&ctx, quick);
            mitigation(&ctx, quick);
            phases(&ctx, quick);
            diagnose(&ctx, quick);
            chaos(&ctx, quick);
            netchaos(&ctx, quick);
            stream(&ctx, quick);
            // `perf` is deliberately absent: its artifact holds host
            // wall-clock values, and `all` must stay byte-reproducible.
        }
        other => {
            eprintln!(
                "unknown ablation {other:?} \
                 (hdrf-lambda|hep-tau|fanout|costmodel|cache|greedy|extensions|cdr|faults|\
                 mitigation|phases|diagnose|chaos|netchaos|stream|perf|all) [--quick] \
                 [--prof] [--threads N|auto] [--engine-threads N|auto]"
            );
            std::process::exit(2);
        }
    }
    if prof {
        let profile = gp_prof::take_profile();
        if !profile.is_empty() {
            println!("\nhost-time profile:");
            print!("{}", profile.to_markdown());
        }
    }
}

/// HDRF λ sweep: λ → 0 greedily minimises replication but loses edge
/// balance; large λ balances at the cost of replication.
fn hdrf_lambda(ctx: &Ctx) {
    let graph = ctx.graph(DatasetId::OR);
    let mut t = Table::new(
        "ablation_hdrf_lambda",
        &["lambda", "replication_factor", "edge_balance"],
    );
    for lambda in [0.0, 0.25, 0.5, 1.0, 1.1, 2.0, 4.0, 16.0] {
        let part = Hdrf { lambda }.partition_edges(&graph, 16, 1).expect("valid");
        t.push(vec![
            format!("{lambda}"),
            fmt(part.replication_factor()),
            fmt(part.edge_balance()),
        ]);
    }
    ctx.emit(&t);
}

/// HEP τ sweep: larger τ moves more edges into the in-memory NE phase.
fn hep_tau(ctx: &Ctx) {
    let graph = ctx.graph(DatasetId::HW);
    let mut t = Table::new(
        "ablation_hep_tau",
        &["tau", "replication_factor", "vertex_balance", "seconds"],
    );
    for tau in [0.1, 0.5, 1.0, 4.0, 10.0, 100.0] {
        let start = std::time::Instant::now();
        let part =
            Hep { tau, lambda: 1.1 }.partition_edges(&graph, 16, 1).expect("valid");
        t.push(vec![
            format!("{tau}"),
            fmt(part.replication_factor()),
            fmt(part.vertex_balance()),
            format!("{:.4}", start.elapsed().as_secs_f64()),
        ]);
    }
    ctx.emit(&t);
}

/// Fan-out schedule ablation: tapered (paper-style) vs uniform vs
/// unbounded sampling, at equal layer count.
fn fanout(ctx: &Ctx) {
    let graph = ctx.graph(DatasetId::OR);
    let split = ctx.split(DatasetId::OR);
    let partition = Metis::default().partition_vertices(&graph, 8, 1).expect("valid");
    let mut t = Table::new(
        "ablation_fanout",
        &["schedule", "input_vertices", "remote_vertices", "epoch_ms"],
    );
    let schedules: [(&str, Vec<u32>); 3] = [
        ("tapered(4,3,3)", vec![4, 3, 3]),
        ("uniform(3,3,3)", vec![3, 3, 3]),
        ("full(1k,1k,1k)", vec![1000, 1000, 1000]),
    ];
    for (name, fanouts) in schedules {
        let mut config = DistDglConfig::paper(
            PaperParams::middle().model(ModelKind::Sage),
            ClusterSpec::paper(8),
        );
        config.fanouts = fanouts;
        let engine = DistDglEngine::builder(&graph, &partition, &split)
            .config(config)
            .threads(ctx.threads.engine)
            .build()
            .expect("valid");
        let summary = engine.run(&RunSpec::healthy()).expect("healthy run").into_healthy().remove(0);
        t.push(vec![
            name.to_string(),
            summary.total_input_vertices.to_string(),
            summary.total_remote_vertices.to_string(),
            format!("{:.2}", summary.epoch_time() * 1e3),
        ]);
    }
    ctx.emit(&t);
}

/// Cost-model sensitivity: the HEP-100-vs-Random speedup across network
/// bandwidths. Slower networks amplify partitioning, faster ones damp
/// it — the qualitative findings must not flip.
fn costmodel(ctx: &Ctx) {
    let graph = ctx.graph(DatasetId::OR);
    let mut t = Table::new(
        "ablation_costmodel",
        &["network", "hep100_speedup_over_random"],
    );
    let parts = ctx.edge_partitions(DatasetId::OR, 16);
    let random = parts.iter().find(|p| p.name == "Random").expect("baseline");
    let hep = parts.iter().find(|p| p.name == "HEP-100").expect("registered");
    // Built through the validating constructor: a typo'd bandwidth or
    // latency aborts the ablation instead of silently producing zero or
    // negative transfer times.
    let networks: [(&str, NetworkSpec); 3] = [
        ("1 Gbit/s", NetworkSpec::validated(1.25e8, 50e-6).expect("positive and finite")),
        ("10 Gbit/s", NetworkSpec::validated(1.25e9, 2e-6).expect("positive and finite")),
        ("100 Gbit/s", NetworkSpec::validated(1.25e10, 10e-6).expect("positive and finite")),
    ];
    for (name, network) in networks {
        let mut cluster = ClusterSpec::paper(16);
        cluster.network = network;
        let config =
            DistGnnConfig::paper(PaperParams::middle().model(ModelKind::Sage), cluster);
        let base = DistGnnEngine::builder(&graph, &random.partition)
            .config(config)
            .threads(ctx.threads.engine)
            .build()
            .expect("valid")
            .run(&RunSpec::healthy())
            .expect("healthy run")
            .into_healthy()
            .remove(0);
        let own = DistGnnEngine::builder(&graph, &hep.partition)
            .config(config)
            .threads(ctx.threads.engine)
            .build()
            .expect("valid")
            .run(&RunSpec::healthy())
            .expect("healthy run")
            .into_healthy()
            .remove(0);
        t.push(vec![name.to_string(), fmt(base.epoch_time() / own.epoch_time())]);
    }
    ctx.emit(&t);
}

/// Hot-vertex feature cache: traffic and epoch time vs cache size
/// (extension — DistDGL ships an equivalent cache).
fn cache(ctx: &Ctx) {
    let graph = ctx.graph(DatasetId::OR);
    let split = ctx.split(DatasetId::OR);
    let partition = Metis::default().partition_vertices(&graph, 8, 1).expect("valid");
    let mut t = Table::new(
        "ablation_feature_cache",
        &["cache_entries", "cache_hit_rate", "traffic_mb", "feature_load_ms"],
    );
    let n = graph.num_vertices();
    for entries in [0u32, n / 200, n / 50, n / 10] {
        let mut config = DistDglConfig::paper(
            PaperParams { feature_size: 512, ..PaperParams::middle() }.model(ModelKind::Sage),
            ClusterSpec::paper(8),
        );
        config.feature_cache_entries = entries;
        let engine = DistDglEngine::builder(&graph, &partition, &split)
            .config(config)
            .threads(ctx.threads.engine)
            .build()
            .expect("valid");
        let s = engine.run(&RunSpec::healthy()).expect("healthy run").into_healthy().remove(0);
        let hit_rate = s.cache_hits as f64 / s.total_remote_vertices.max(1) as f64;
        t.push(vec![
            entries.to_string(),
            fmt(hit_rate),
            fmt(s.counters.total_network_bytes() as f64 / 1e6),
            format!("{:.3}", s.phases.feature_load * 1e3),
        ]);
    }
    ctx.emit(&t);
}

/// Greedy (PowerGraph) vs HDRF — its descendant with degree-weighted
/// scoring (extension). On graphs with strong community structure the
/// capacity-capped Greedy is surprisingly competitive; HDRF's advantage
/// shows on pure power-law topologies (see `vertex_cut::greedy` tests).
fn greedy(ctx: &Ctx) {
    let mut t = Table::new(
        "ablation_greedy_vs_hdrf",
        &["graph", "partitioner", "replication_factor", "edge_balance"],
    );
    for id in [DatasetId::OR, DatasetId::HW, DatasetId::DI] {
        let graph = ctx.graph(id);
        for (name, part) in [
            ("Greedy", Greedy.partition_edges(&graph, 16, 1).expect("valid")),
            ("HDRF", Hdrf::default().partition_edges(&graph, 16, 1).expect("valid")),
        ] {
            t.push(vec![
                id.name().to_string(),
                name.to_string(),
                fmt(part.replication_factor()),
                fmt(part.edge_balance()),
            ]);
        }
    }
    ctx.emit(&t);
}

/// Extension partitioners vs the paper roster: RF/bound for vertex-cuts,
/// cut for edge-cuts, on OR at k = 16.
fn extensions(ctx: &Ctx) {
    use gp_core::registry;
    let graph = ctx.graph(DatasetId::OR);
    let split = ctx.split(DatasetId::OR);
    let mut t = Table::new(
        "ablation_extensions",
        &["partitioner", "kind", "rf_or_cut", "balance", "seconds"],
    );
    let all_edge: Vec<&str> = registry::edge_partitioner_names()
        .iter()
        .copied()
        .chain(registry::EXTENSION_EDGE_PARTITIONERS)
        .collect();
    for name in all_edge {
        let p = registry::edge_partitioner(name).expect("registered");
        let start = std::time::Instant::now();
        let part = p.partition_edges(&graph, 16, 1).expect("valid");
        t.push(vec![
            name.to_string(),
            "vertex-cut".into(),
            fmt(part.replication_factor()),
            fmt(part.edge_balance()),
            format!("{:.4}", start.elapsed().as_secs_f64()),
        ]);
    }
    let all_vertex: Vec<&str> = registry::vertex_partitioner_names()
        .iter()
        .copied()
        .chain(registry::EXTENSION_VERTEX_PARTITIONERS)
        .collect();
    for name in all_vertex {
        let p = registry::vertex_partitioner(name, Some(split.train.clone())).expect("registered");
        let start = std::time::Instant::now();
        let part = p.partition_vertices(&graph, 16, 1).expect("valid");
        t.push(vec![
            name.to_string(),
            "edge-cut".into(),
            fmt(part.edge_cut_ratio()),
            fmt(part.vertex_balance()),
            format!("{:.4}", start.elapsed().as_secs_f64()),
        ]);
    }
    ctx.emit(&t);
}

/// Fault injection: per-partitioner recovery overhead under a seeded
/// schedule of crashes, stragglers and network brownouts (extension —
/// the paper trains on healthy clusters only). Better partitions keep
/// their edge under faults too: recovery traffic scales with the
/// replication factor (DistGNN) / redistributed training set (DistDGL).
fn faults(ctx: &Ctx, quick: bool) {
    use gp_core::fault_sweep::{distdgl_fault_sweep, distgnn_fault_sweep, fault_sweep_table};
    let graph = ctx.graph(DatasetId::OR);
    let mtbfs: &[f64] = if quick { &[2.0] } else { &[2.0, 5.0, 10.0] };
    let (k, epochs) = if quick { (8, 4) } else { (16, 10) };
    let parts = ctx.edge_partitions(DatasetId::OR, k);
    let rows =
        distgnn_fault_sweep(&graph, &parts, PaperParams::middle(), epochs, mtbfs, 2, 0xfa11);
    ctx.emit(&fault_sweep_table("ablation_faults_distgnn", &rows));

    let split = ctx.split(DatasetId::OR);
    let vparts = ctx.vertex_partitions(DatasetId::OR, k);
    let rows = distdgl_fault_sweep(
        &graph,
        &split,
        &vparts,
        PaperParams::middle(),
        ModelKind::Sage,
        1024,
        epochs,
        mtbfs,
        0xfa11,
    );
    ctx.emit(&fault_sweep_table("ablation_faults_distdgl", &rows));
}

/// Straggler mitigation: mitigated vs unmitigated simulated epoch time
/// per partitioner under a crash-free stress schedule of deep slowdowns
/// (4× for three epochs) and network brownouts (extension). DistGNN
/// runs the adaptive cd-r + master-rebalancing policy; DistDGL compares
/// work stealing, speculative re-execution, and both combined. Both
/// runs of each cell replay the identical seeded `FaultPlan`, so the
/// difference is exactly the mitigation layer's effect.
fn mitigation(ctx: &Ctx, quick: bool) {
    use gp_cluster::MitigationPolicy;
    use gp_core::fault_sweep::{
        distdgl_mitigation_sweep, distgnn_mitigation_sweep, mitigation_stress_spec,
        mitigation_sweep_table,
    };
    let (k, epochs) = if quick { (8, 6) } else { (16, 12) };
    let graph = ctx.graph(DatasetId::OR);
    let spec = mitigation_stress_spec(k, epochs, 0x517a11);
    let parts = ctx.edge_partitions(DatasetId::OR, k);
    let rows = distgnn_mitigation_sweep(
        &graph,
        &parts,
        PaperParams::middle(),
        &spec,
        2,
        MitigationPolicy::adaptive(),
    );
    ctx.emit(&mitigation_sweep_table("ablation_mitigation_distgnn", &rows));

    let split = ctx.split(DatasetId::OR);
    let vparts = ctx.vertex_partitions(DatasetId::OR, k);
    let mut rows = Vec::new();
    for policy in
        [MitigationPolicy::steal(), MitigationPolicy::speculate(), MitigationPolicy::all()]
    {
        rows.extend(distdgl_mitigation_sweep(
            &graph,
            &split,
            &vparts,
            PaperParams::middle(),
            ModelKind::Sage,
            1024,
            &spec,
            policy,
        ));
    }
    ctx.emit(&mitigation_sweep_table("ablation_mitigation_distdgl", &rows));
}

/// Traced phase breakdown: run both engines — every partitioner of the
/// roster — with the span recorder attached and emit the per-(worker,
/// phase) aggregates — where a simulated epoch's time, bytes and flops
/// actually go (extension). The span-accounting invariant (engine test
/// suites) guarantees these rows sum exactly to the engines' reported
/// phase totals, and tracing never perturbs the simulation itself.
///
/// The traced runs execute as cells on the `gp-exec` pool; the runner's
/// own sequential-vs-parallel speedup goes to **stdout only** (wall
/// clock is nondeterministic — keeping it out of the CSVs keeps them
/// byte-identical across `--threads`).
fn phases(ctx: &Ctx, quick: bool) {
    use gp_core::trace_run::{distdgl_trace_runs, distgnn_trace_runs, phase_table};
    let (k, epochs) = if quick { (4, 2) } else { (8, 4) };
    let graph = ctx.graph(DatasetId::OR);
    let parts = ctx.edge_partitions(DatasetId::OR, k);
    let config = DistGnnConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(k),
    );
    let (sinks, timing) =
        distgnn_trace_runs(&graph, &parts, config, epochs, None, false, ctx.threads)
            .expect("healthy traced runs");
    for (name, sink) in &sinks {
        let table_name = format!("ablation_phase_breakdown_distgnn_{}", slug(name));
        ctx.emit(&phase_table(&table_name, sink));
    }
    report_runner(&timing, "distgnn");

    let split = ctx.split(DatasetId::OR);
    let vparts = ctx.vertex_partitions(DatasetId::OR, k);
    let config = DistDglConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(k),
    );
    let (sinks, timing) =
        distdgl_trace_runs(&graph, &split, &vparts, config, epochs, None, false, ctx.threads)
            .expect("healthy traced runs");
    for (name, sink) in &sinks {
        let table_name = format!("ablation_phase_breakdown_distdgl_{}", slug(name));
        ctx.emit(&phase_table(&table_name, sink));
    }
    report_runner(&timing, "distdgl");
}

/// Metrics aggregation + automated run diagnosis: both engines, every
/// partitioner of the roster, through the `gp_core::diagnose` layer
/// (extension). Emits per-partitioner skew and summary CSVs, the merged
/// Prometheus text exposition, the markdown run reports, and
/// `BENCH_diagnose.json` (per-partitioner imbalance index + p99 phase
/// times). Every run cross-checks its aggregated per-worker phase
/// totals against the engine report exactly (f64 `==`) — a mismatch
/// aborts the ablation. All artifacts are deterministic: bit-identical
/// across `--threads` choices and repeated runs.
fn diagnose(ctx: &Ctx, quick: bool) {
    use gp_cluster::MitigationPolicy;
    use gp_core::diagnose::{
        bench_json, diagnose_distdgl_runs, diagnose_distgnn_runs, diagnose_prometheus,
        diagnose_report, skew_table, summary_table,
    };
    let (k, epochs) = if quick { (4, 2) } else { (8, 4) };
    let graph = ctx.graph(DatasetId::OR);
    let parts = ctx.edge_partitions(DatasetId::OR, k);
    let config = DistGnnConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(k),
    );
    let (gnn_runs, timing) = diagnose_distgnn_runs(
        &graph,
        &parts,
        config,
        epochs,
        None,
        MitigationPolicy::none(),
        ctx.threads,
    )
    .expect("healthy diagnosed runs");
    ctx.emit(&skew_table("ablation_diagnose_skew_distgnn", &gnn_runs));
    ctx.emit(&summary_table("ablation_diagnose_summary_distgnn", &gnn_runs));
    report_runner(&timing, "distgnn");

    let split = ctx.split(DatasetId::OR);
    let vparts = ctx.vertex_partitions(DatasetId::OR, k);
    let config = DistDglConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(k),
    );
    let (dgl_runs, timing) = diagnose_distdgl_runs(
        &graph,
        &split,
        &vparts,
        config,
        epochs,
        None,
        MitigationPolicy::none(),
        ctx.threads,
    )
    .expect("healthy diagnosed runs");
    ctx.emit(&skew_table("ablation_diagnose_skew_distdgl", &dgl_runs));
    ctx.emit(&summary_table("ablation_diagnose_summary_distdgl", &dgl_runs));
    report_runner(&timing, "distdgl");

    write_artifact(ctx, "ablation_diagnose_distgnn.prom", &diagnose_prometheus(&gnn_runs));
    write_artifact(ctx, "ablation_diagnose_distdgl.prom", &diagnose_prometheus(&dgl_runs));
    write_artifact(ctx, "ablation_diagnose_distgnn.md", &diagnose_report("distgnn", &gnn_runs));
    write_artifact(ctx, "ablation_diagnose_distdgl.md", &diagnose_report("distdgl", &dgl_runs));

    // One benchmark snapshot over both engines; engine-prefixed names
    // keep partitioners that appear in both rosters distinct.
    let mut all = Vec::new();
    for mut r in gnn_runs {
        r.name = format!("distgnn/{}", r.name);
        all.push(r);
    }
    for mut r in dgl_runs {
        r.name = format!("distdgl/{}", r.name);
        all.push(r);
    }
    write_artifact(ctx, "BENCH_diagnose.json", &bench_json(&all));
}

/// Elastic-membership chaos soak: every partitioner of both rosters
/// runs a multi-epoch schedule of seeded churn (leaves + rejoins) and
/// faults with periodic checkpoints through the `.elastic(..)` leg,
/// and the elastic contract is checked per row — the rerun is
/// bit-identical, the traced run equals the untraced one, the elastic
/// run is never worse than the crash-without-handoff baseline, and
/// per-worker span sums equal the engines' phase totals exactly
/// (extension; the soak behind `gnnpart chaos`). A red invariant
/// aborts the ablation. Emits per-engine CSVs plus `BENCH_chaos.json`
/// with the recovery-overhead and lost-progress metrics per
/// partitioner; all three artifacts are deterministic — bit-identical
/// across `--threads` choices and repeated runs (no wall-clock
/// fields).
fn chaos(ctx: &Ctx, quick: bool) {
    use gp_core::chaos::{
        chaos_bench_json, chaos_table, distdgl_chaos_soak_threaded, distgnn_chaos_soak_threaded,
    };
    let (k, epochs, mtbf, every) = if quick { (8, 10, 4.0, 2) } else { (16, 40, 6.0, 4) };
    let seed = 0xc4a05;
    let graph = ctx.graph(DatasetId::OR);
    let parts = ctx.edge_partitions(DatasetId::OR, k);
    let gnn_rows = distgnn_chaos_soak_threaded(
        &graph,
        &parts,
        PaperParams::middle(),
        epochs,
        mtbf,
        every,
        seed,
        ctx.threads,
    );
    ctx.emit(&chaos_table("ablation_chaos_distgnn", &gnn_rows));

    let split = ctx.split(DatasetId::OR);
    let vparts = ctx.vertex_partitions(DatasetId::OR, k);
    let dgl_rows = distdgl_chaos_soak_threaded(
        &graph,
        &split,
        &vparts,
        PaperParams::middle(),
        ModelKind::Sage,
        1024,
        epochs,
        mtbf,
        every,
        seed,
        ctx.threads,
    );
    ctx.emit(&chaos_table("ablation_chaos_distdgl", &dgl_rows));

    for r in gnn_rows.iter().chain(&dgl_rows) {
        assert!(
            r.holds(),
            "{}: elastic contract violated (completed {}/{}, deterministic={}, \
             trace_transparent={}, elastic_never_worse={}, spans_exact={})",
            r.name,
            r.completed_epochs,
            r.epochs,
            r.deterministic,
            r.trace_transparent,
            r.elastic_never_worse,
            r.spans_exact,
        );
    }
    write_artifact(ctx, "BENCH_chaos.json", &chaos_bench_json(&gnn_rows, &dgl_rows));
}

/// Network-fault chaos soak: the `chaos` environment composed with a
/// seeded message-level fault plan — per-message loss, duplication and
/// reorder plus partition windows splitting the fleet into quorum and
/// minority islands — through both engines'
/// the `.net(..)` `RunSpec` leg (extension; the soak behind `gnnpart
/// netchaos`). Per row the network contract is checked: bit-identical
/// reruns, traced == untraced, exactly-once-effective delivery, exact
/// span sums, and the bounded-staleness degraded mode never worse than
/// the abort-and-recover baseline (adopt-only by construction). A red
/// invariant aborts the ablation. Emits per-engine CSVs plus
/// `BENCH_netchaos.json`; all artifacts are deterministic —
/// bit-identical across `--threads` choices and repeated runs.
fn netchaos(ctx: &Ctx, quick: bool) {
    use gp_core::netchaos::{
        distdgl_netchaos_soak_threaded, distgnn_netchaos_soak_threaded, netchaos_bench_json,
        netchaos_table,
    };
    let (k, epochs, mtbf, every) = if quick { (8, 10, 4.0, 2) } else { (16, 40, 6.0, 4) };
    // Not the chaos seed: 0xc4a05 happens to arm zero partition
    // windows at both scales, and a windowless soak never exercises
    // the degraded/abort decision this ablation exists to check.
    let seed = 7;
    let graph = ctx.graph(DatasetId::OR);
    let parts = ctx.edge_partitions(DatasetId::OR, k);
    let gnn_rows = distgnn_netchaos_soak_threaded(
        &graph,
        &parts,
        PaperParams::middle(),
        epochs,
        mtbf,
        every,
        seed,
        ctx.threads,
    );
    ctx.emit(&netchaos_table("ablation_netchaos_distgnn", &gnn_rows));

    let split = ctx.split(DatasetId::OR);
    let vparts = ctx.vertex_partitions(DatasetId::OR, k);
    let dgl_rows = distdgl_netchaos_soak_threaded(
        &graph,
        &split,
        &vparts,
        PaperParams::middle(),
        ModelKind::Sage,
        1024,
        epochs,
        mtbf,
        every,
        seed,
        ctx.threads,
    );
    ctx.emit(&netchaos_table("ablation_netchaos_distdgl", &dgl_rows));

    for r in gnn_rows.iter().chain(&dgl_rows) {
        assert!(
            r.holds(),
            "{}: network fault contract violated (completed {}/{}, deterministic={}, \
             trace_transparent={}, degraded_never_worse={}, exactly_once={}, spans_exact={})",
            r.name,
            r.completed_epochs,
            r.epochs,
            r.deterministic,
            r.trace_transparent,
            r.degraded_never_worse,
            r.exactly_once,
            r.spans_exact,
        );
    }
    write_artifact(ctx, "BENCH_netchaos.json", &netchaos_bench_json(&gnn_rows, &dgl_rows));
}

/// Streaming dynamic-graph sweep: every partitioner of both rosters
/// replays the same seeded mutation stream through its engine's
/// `.stream(..)` `RunSpec` leg once per repartition policy (never /
/// threshold-on-imbalance / periodic), training one epoch per batch on
/// the live snapshot while the partition is maintained incrementally
/// and policy-triggered full repartitions are charged their modeled
/// cost in simulated seconds (extension; the sweep behind `gnnpart
/// stream`). Per row the stream contract is checked: bit-identical
/// reruns, traced == untraced, and — the adopt-only gate — no policy
/// worse than the `never` baseline on total training time. A red
/// invariant aborts the ablation. Emits per-engine CSVs plus
/// `BENCH_stream.json` with the per-batch quality-decay curves,
/// repartition counts/costs, recovered speedups and amortization
/// epochs; all artifacts are deterministic — bit-identical across
/// `--threads` choices and repeated runs (no wall-clock fields).
fn stream(ctx: &Ctx, quick: bool) {
    use gp_core::registry;
    use gp_core::stream_sweep::{
        distdgl_stream_sweep_threaded, distgnn_stream_sweep_threaded, stream_bench_json,
        stream_policies, stream_table,
    };
    let (k, batches) = if quick { (4, 6) } else { (8, 10) };
    let spec = gp_graph::StreamSpec::paper_default(batches, 0xd21f7);
    let policies = stream_policies();
    let graph = ctx.graph(DatasetId::OR);
    let gnn_rows = distgnn_stream_sweep_threaded(
        &graph,
        registry::edge_partitioner_names(),
        k,
        PaperParams::middle(),
        &spec,
        &policies,
        1,
        ctx.threads,
    );
    ctx.emit(&stream_table("ablation_stream_distgnn", &gnn_rows));

    let split = ctx.split(DatasetId::OR);
    let dgl_rows = distdgl_stream_sweep_threaded(
        &graph,
        &split,
        registry::vertex_partitioner_names(),
        k,
        PaperParams::middle(),
        ModelKind::Sage,
        1024,
        &spec,
        &policies,
        1,
        ctx.threads,
    );
    ctx.emit(&stream_table("ablation_stream_distdgl", &dgl_rows));

    for r in gnn_rows.iter().chain(&dgl_rows) {
        assert!(
            r.holds(),
            "{}/{}: stream contract violated (completed {}/{}, deterministic={}, \
             trace_transparent={}, never_worse={})",
            r.name,
            r.policy,
            r.completed_batches,
            r.batches,
            r.deterministic,
            r.trace_transparent,
            r.never_worse,
        );
    }
    write_artifact(ctx, "BENCH_stream.json", &stream_bench_json(&gnn_rows, &dgl_rows));
}

/// Host-time benchmark: the pinned workload matrix behind
/// `gnnpart bench`, emitting `BENCH_perf.json` (single-line JSON with
/// the pinned structure `scripts/bench_diff.py` keys on) and
/// `PERF_report.md` (tables plus the hierarchical host-time profile).
fn perf(ctx: &Ctx, quick: bool) {
    use gp_core::perf::{perf_bench_json, perf_report_markdown, run_perf, PerfSpec};
    let k = if quick { 4 } else { 8 };
    let spec = PerfSpec { scale: ctx.scale, k, ..PerfSpec::pinned(ctx.scale) };
    println!(
        "perf: pinned workload {} at {:?} scale, {k} parts \
         (12 partitioners, 2 engines, pool widths 1 and auto)",
        spec.dataset.name(),
        spec.scale,
    );
    let (report, profile) = run_perf(&spec);
    for r in &report.engines {
        println!(
            "perf[{}/{}]: t1 {:.4}s, auto {:.4}s (speedup {:.2}x), \
             peak {:.1} MiB, identical_across_widths={}",
            r.engine,
            r.partitioner,
            r.wall_seconds_t1,
            r.wall_seconds_auto,
            r.pool_speedup,
            r.peak_bytes as f64 / (1 << 20) as f64,
            r.identical_across_widths,
        );
    }
    write_artifact(ctx, "BENCH_perf.json", &perf_bench_json(&report));
    write_artifact(ctx, "PERF_report.md", &perf_report_markdown(&report, &profile));
    let diverged = report.engines.iter().filter(|r| !r.identical_across_widths).count();
    assert_eq!(diverged, 0, "{diverged} engine rows diverged between pool widths");
}

/// Write a non-CSV diagnose artifact (Prometheus text, markdown report,
/// benchmark JSON) into the context's output directory.
fn write_artifact(ctx: &Ctx, name: &str, contents: &str) {
    if let Err(e) = std::fs::create_dir_all(&ctx.out_dir) {
        eprintln!("warning: could not create {}: {e}", ctx.out_dir.display());
        return;
    }
    let path = ctx.out_dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Partitioner name → filesystem/CSV-safe lowercase slug
/// (`HEP-100` → `hep_100`).
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect()
}

/// Print the pool's wall-clock numbers to stdout (never into CSVs).
fn report_runner(timing: &gp_exec::ExecTiming, label: &str) {
    println!(
        "runner[{label}]: {} cells on {} thread(s) in {:.3}s \
         (sum of cells {:.3}s, speedup {:.2}x, {} steals)",
        timing.cell_seconds.len(),
        timing.threads,
        timing.wall_seconds,
        timing.serial_seconds(),
        timing.speedup(),
        timing.steals,
    );
}

/// DistGNN cd-r: per-epoch sync cost vs the sync period (extension;
/// staleness/convergence effects are outside the cost model — the
/// DistGNN paper shows accuracy degrades gracefully up to r ≈ 4).
fn cdr(ctx: &Ctx) {
    let graph = ctx.graph(DatasetId::OR);
    let parts = ctx.edge_partitions(DatasetId::OR, 16);
    let random = parts.iter().find(|p| p.name == "Random").expect("baseline");
    let mut t = Table::new(
        "ablation_cdr",
        &["sync_period", "epoch_ms", "sync_ms", "traffic_mb"],
    );
    for period in [1u32, 2, 4, 8] {
        let mut config = DistGnnConfig::paper(
            PaperParams::middle().model(ModelKind::Sage),
            ClusterSpec::paper(16),
        );
        config.sync_period = period;
        let report = DistGnnEngine::builder(&graph, &random.partition)
            .config(config)
            .threads(ctx.threads.engine)
            .build()
            .expect("valid")
            .run(&RunSpec::healthy())
            .expect("healthy run")
            .into_healthy()
            .remove(0);
        t.push(vec![
            period.to_string(),
            format!("{:.3}", report.epoch_time() * 1e3),
            format!("{:.3}", report.phases.sync * 1e3),
            fmt(report.counters.total_network_bytes() as f64 / 1e6),
        ]);
    }
    ctx.emit(&t);
}
