//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures all                      # everything, Small scale
//! figures fig7 table4              # selected artifacts
//! figures all --scale tiny         # quick smoke run
//! figures all --out results/       # output directory
//! figures all --threads 4          # sweep-level pool width (CSVs identical)
//! figures all --engine-threads 4   # intra-epoch engine width (CSVs identical)
//! ```

use std::path::PathBuf;

use gp_bench::{run_artifact, take_parallelism_flags, Ctx, ALL_ARTIFACTS};
use gp_graph::GraphScale;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let threads = match take_parallelism_flags(&mut args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut scale = GraphScale::Small;
    let mut out_dir = PathBuf::from("results");
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => GraphScale::Tiny,
                    Some("small") => GraphScale::Small,
                    Some("medium") => GraphScale::Medium,
                    other => {
                        eprintln!("unknown scale {other:?} (tiny|small|medium)");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = PathBuf::from(dir),
                    None => {
                        eprintln!("--out requires a directory");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    if ids.iter().any(|i| i == "all") {
        ids = ALL_ARTIFACTS.iter().map(|s| s.to_string()).collect();
    }

    let ctx = Ctx::with_threads(scale, out_dir, threads);
    let total = ids.len();
    for (n, id) in ids.iter().enumerate() {
        let start = std::time::Instant::now();
        eprintln!("[{}/{}] {id} ...", n + 1, total);
        if !run_artifact(&ctx, id) {
            eprintln!("unknown artifact {id:?}; known: {ALL_ARTIFACTS:?}");
            std::process::exit(2);
        }
        eprintln!("[{}/{}] {id} done in {:.1?}", n + 1, total, start.elapsed());
    }
}

fn print_usage() {
    eprintln!(
        "usage: figures <artifact>... [--scale tiny|small|medium] [--out DIR] \
         [--threads N|auto] [--engine-threads N|auto]"
    );
    eprintln!("artifacts: all {}", ALL_ARTIFACTS.join(" "));
}
