//! # gp-bench — figure/table regeneration harness
//!
//! The `figures` binary regenerates every table and figure of the
//! paper's evaluation (see `DESIGN.md` for the full index):
//!
//! ```text
//! cargo run -p gp-bench --release --bin figures -- all
//! cargo run -p gp-bench --release --bin figures -- fig7 fig16 --scale small
//! ```
//!
//! Results are printed as Markdown and written as CSV under `results/`.
//! The [`Ctx`] memoises graphs, splits and (expensive) partitioning runs
//! so that the ~30 artifacts share work.

pub mod distdgl_figs;
pub mod distgnn_figs;
pub mod table1;

use std::cell::RefCell;
use std::collections::HashMap;
use std::path::PathBuf;
use std::rc::Rc;

use gp_core::experiment::{
    timed_edge_partitions_threaded, timed_vertex_partitions_threaded, TimedEdgePartition,
    TimedVertexPartition,
};
use gp_exec::{Parallelism, Threads};
use gp_graph::{DatasetId, Graph, GraphScale, VertexSplit};

/// Memoisation table keyed by `(dataset, k)`.
type PartCache<T> = RefCell<HashMap<(DatasetId, u32), Rc<Vec<T>>>>;

/// Shared, memoising experiment context.
///
/// The context itself is single-threaded (`Rc`-memoised); parallelism
/// lives inside the `gp_core` sweeps it calls, steered by
/// [`Ctx::threads`] — a two-level [`Parallelism`]: sweep-level cell
/// fan-out plus intra-epoch engine compute. Both levels are
/// bit-transparent, so any width pair reproduces the serial artifacts
/// byte-for-byte.
pub struct Ctx {
    /// Dataset scale for every experiment.
    pub scale: GraphScale,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// `(sweep, engine)` worker-count policy handed to every
    /// `*_threaded` sweep.
    pub threads: Parallelism,
    graphs: RefCell<HashMap<DatasetId, Rc<Graph>>>,
    splits: RefCell<HashMap<DatasetId, Rc<VertexSplit>>>,
    edge_parts: PartCache<TimedEdgePartition>,
    vertex_parts: PartCache<TimedVertexPartition>,
}

impl Ctx {
    /// New context writing CSVs to `out_dir`, sweeping with
    /// [`Threads::auto`] workers (engines stay serial unless asked).
    pub fn new(scale: GraphScale, out_dir: PathBuf) -> Self {
        Ctx::with_threads(scale, out_dir, Threads::auto())
    }

    /// New context with an explicit worker-count policy. A bare
    /// [`Threads`] sets the sweep level only; a full [`Parallelism`]
    /// additionally threads the engines' intra-epoch compute
    /// (`Threads::serial()` reproduces the historical sequential runs
    /// bit-for-bit).
    pub fn with_threads(
        scale: GraphScale,
        out_dir: PathBuf,
        threads: impl Into<Parallelism>,
    ) -> Self {
        Ctx {
            scale,
            out_dir,
            threads: threads.into(),
            graphs: RefCell::new(HashMap::new()),
            splits: RefCell::new(HashMap::new()),
            edge_parts: RefCell::new(HashMap::new()),
            vertex_parts: RefCell::new(HashMap::new()),
        }
    }

    /// The (memoised) analogue graph for `id`.
    pub fn graph(&self, id: DatasetId) -> Rc<Graph> {
        self.graphs
            .borrow_mut()
            .entry(id)
            .or_insert_with(|| Rc::new(id.generate(self.scale).expect("dataset presets valid")))
            .clone()
    }

    /// The (memoised) 10/10/80 split for `id`.
    pub fn split(&self, id: DatasetId) -> Rc<VertexSplit> {
        let graph = self.graph(id);
        self.splits
            .borrow_mut()
            .entry(id)
            .or_insert_with(|| {
                Rc::new(
                    VertexSplit::paper_default(graph.num_vertices(), 0x5eed)
                        .expect("fractions valid"),
                )
            })
            .clone()
    }

    /// All six timed edge partitions of `id` into `k` parts (memoised).
    pub fn edge_partitions(&self, id: DatasetId, k: u32) -> Rc<Vec<TimedEdgePartition>> {
        if let Some(p) = self.edge_parts.borrow().get(&(id, k)) {
            return p.clone();
        }
        let graph = self.graph(id);
        let parts = Rc::new(timed_edge_partitions_threaded(&graph, k, 0x9a9a, self.threads.sweep));
        self.edge_parts.borrow_mut().insert((id, k), parts.clone());
        parts
    }

    /// All six timed vertex partitions of `id` into `k` parts (memoised).
    pub fn vertex_partitions(&self, id: DatasetId, k: u32) -> Rc<Vec<TimedVertexPartition>> {
        if let Some(p) = self.vertex_parts.borrow().get(&(id, k)) {
            return p.clone();
        }
        let graph = self.graph(id);
        let split = self.split(id);
        let parts = Rc::new(timed_vertex_partitions_threaded(
            &graph,
            k,
            0x9a9a,
            &split.train,
            self.threads.sweep,
        ));
        self.vertex_parts.borrow_mut().insert((id, k), parts.clone());
        parts
    }

    /// Emit a finished table: Markdown to stdout, CSV to `out_dir`.
    pub fn emit(&self, table: &gp_core::report::Table) {
        println!("\n## {}\n", table.name);
        println!("{}", table.to_markdown());
        if let Err(e) = table.write_csv(&self.out_dir) {
            eprintln!("warning: could not write {}: {e}", table.name);
        }
    }
}

/// Every artifact id, in paper order.
pub const ALL_ARTIFACTS: [&str; 28] = [
    "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "table4", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
    "fig21", "fig22", "fig23", "fig24", "fig25", "fig26", "table5",
];

/// Run one artifact by id. Returns `false` for an unknown id.
pub fn run_artifact(ctx: &Ctx, id: &str) -> bool {
    match id {
        "table1" => table1::table1(ctx),
        "fig2" => distgnn_figs::fig2(ctx),
        "fig3" => distgnn_figs::fig3(ctx),
        "fig4" => distgnn_figs::fig4(ctx),
        "fig5" => distgnn_figs::fig5(ctx),
        "fig6" => distgnn_figs::fig6(ctx),
        "fig7" => distgnn_figs::fig7(ctx),
        "fig8" => distgnn_figs::fig8(ctx),
        "fig9" => distgnn_figs::fig9(ctx),
        "fig10" => distgnn_figs::fig10(ctx),
        "fig11" => distgnn_figs::fig11(ctx),
        "table4" => distgnn_figs::table4(ctx),
        "fig12" => distdgl_figs::fig12(ctx),
        "fig13" => distdgl_figs::fig13(ctx),
        "fig14" => distdgl_figs::fig14(ctx),
        "fig15" => distdgl_figs::fig15(ctx),
        "fig16" => distdgl_figs::fig16(ctx),
        "fig17" => distdgl_figs::fig17(ctx),
        "fig18" => distdgl_figs::fig18(ctx),
        "fig19" => distdgl_figs::fig19(ctx),
        "fig20" => distdgl_figs::fig20(ctx),
        "fig21" => distdgl_figs::fig21(ctx),
        "fig22" => distdgl_figs::fig22(ctx),
        "fig23" => distdgl_figs::fig23(ctx),
        "fig24" => distdgl_figs::fig24(ctx),
        "fig25" => distdgl_figs::fig25(ctx),
        "fig26" => distdgl_figs::fig26(ctx),
        "table5" => distdgl_figs::table5(ctx),
        _ => return false,
    }
    true
}

/// Pop a `--threads N|auto` (or `--threads=N`) flag out of `args`;
/// absent means [`Threads::auto`]. Shared by the `figures` and
/// `ablations` binaries.
///
/// # Errors
///
/// A usage message when the value is missing or unparsable.
pub fn take_threads_flag(args: &mut Vec<String>) -> Result<Threads, String> {
    let mut threads = Threads::auto();
    let mut i = 0;
    while i < args.len() {
        if let Some(value) = args[i].strip_prefix("--threads=") {
            let value = value.to_string();
            threads = Threads::parse(&value)
                .ok_or_else(|| format!("--threads expects a count or \"auto\", got {value:?}"))?;
            args.remove(i);
        } else if args[i] == "--threads" {
            if i + 1 >= args.len() {
                return Err("--threads expects a count or \"auto\"".into());
            }
            let value = args.remove(i + 1);
            threads = Threads::parse(&value)
                .ok_or_else(|| format!("--threads expects a count or \"auto\", got {value:?}"))?;
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(threads)
}

/// Pop an `--engine-threads N|auto` (or `--engine-threads=N`) flag out
/// of `args`; absent means [`Threads::serial`] — intra-epoch engine
/// compute stays sequential unless explicitly requested. Combine with
/// [`take_threads_flag`] into a [`Parallelism`] via
/// [`take_parallelism_flags`].
///
/// # Errors
///
/// A usage message when the value is missing or unparsable.
pub fn take_engine_threads_flag(args: &mut Vec<String>) -> Result<Threads, String> {
    let mut threads = Threads::serial();
    let mut i = 0;
    while i < args.len() {
        if let Some(value) = args[i].strip_prefix("--engine-threads=") {
            let value = value.to_string();
            threads = Threads::parse(&value).ok_or_else(|| {
                format!("--engine-threads expects a count or \"auto\", got {value:?}")
            })?;
            args.remove(i);
        } else if args[i] == "--engine-threads" {
            if i + 1 >= args.len() {
                return Err("--engine-threads expects a count or \"auto\"".into());
            }
            let value = args.remove(i + 1);
            threads = Threads::parse(&value).ok_or_else(|| {
                format!("--engine-threads expects a count or \"auto\", got {value:?}")
            })?;
            args.remove(i);
        } else {
            i += 1;
        }
    }
    Ok(threads)
}

/// Pop both `--threads` (sweep level) and `--engine-threads`
/// (intra-epoch level) out of `args` and fold them into one two-level
/// [`Parallelism`].
///
/// # Errors
///
/// A usage message when either value is missing or unparsable.
pub fn take_parallelism_flags(args: &mut Vec<String>) -> Result<Parallelism, String> {
    let engine = take_engine_threads_flag(args)?;
    let sweep = take_threads_flag(args)?;
    Ok(Parallelism::new(sweep, engine))
}

/// Cluster sizes used throughout (paper's scale-out factors), trimmed at
/// tiny scale where 32 partitions of a 1k-vertex graph are degenerate.
pub fn scale_out_factors(scale: GraphScale) -> Vec<u32> {
    match scale {
        GraphScale::Tiny => vec![4, 8],
        _ => vec![4, 8, 16, 32],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_ctx() -> Ctx {
        Ctx::new(GraphScale::Tiny, std::env::temp_dir().join("gp_bench_test"))
    }

    #[test]
    fn ctx_memoises_graphs() {
        let ctx = test_ctx();
        let a = ctx.graph(DatasetId::DI);
        let b = ctx.graph(DatasetId::DI);
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn ctx_memoises_partitions() {
        let ctx = test_ctx();
        let a = ctx.edge_partitions(DatasetId::DI, 4);
        let b = ctx.edge_partitions(DatasetId::DI, 4);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 6);
        let v = ctx.vertex_partitions(DatasetId::DI, 4);
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn ctx_threads_do_not_change_partitions() {
        let serial = Ctx::with_threads(
            GraphScale::Tiny,
            std::env::temp_dir().join("gp_bench_test"),
            Threads::serial(),
        );
        let par = Ctx::with_threads(
            GraphScale::Tiny,
            std::env::temp_dir().join("gp_bench_test"),
            Threads::new(4),
        );
        let a = serial.edge_partitions(DatasetId::DI, 4);
        let b = par.edge_partitions(DatasetId::DI, 4);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.partition, y.partition);
        }
    }

    #[test]
    fn threads_flag_is_popped_and_parsed() {
        let mut args: Vec<String> =
            ["phases", "--threads", "4", "--quick"].iter().map(|s| s.to_string()).collect();
        let t = take_threads_flag(&mut args).unwrap();
        assert_eq!(t.count(), 4);
        assert_eq!(args, ["phases", "--quick"]);

        let mut args: Vec<String> = ["--threads=auto"].iter().map(|s| s.to_string()).collect();
        let t = take_threads_flag(&mut args).unwrap();
        assert!(t.count() >= 1);
        assert!(args.is_empty());

        let mut args: Vec<String> = ["all"].iter().map(|s| s.to_string()).collect();
        assert!(take_threads_flag(&mut args).is_ok());

        let mut args: Vec<String> = ["--threads"].iter().map(|s| s.to_string()).collect();
        assert!(take_threads_flag(&mut args).is_err());
        let mut args: Vec<String> =
            ["--threads", "lots"].iter().map(|s| s.to_string()).collect();
        assert!(take_threads_flag(&mut args).is_err());
    }

    #[test]
    fn engine_threads_flag_is_popped_and_parsed() {
        let mut args: Vec<String> = ["quick", "--engine-threads", "4", "--threads", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let par = take_parallelism_flags(&mut args).unwrap();
        assert_eq!(par.engine.count(), 4);
        assert_eq!(par.sweep.count(), 2);
        assert_eq!(args, ["quick"]);

        // Absent flag keeps the engine level serial.
        let mut args: Vec<String> = ["--threads=4"].iter().map(|s| s.to_string()).collect();
        let par = take_parallelism_flags(&mut args).unwrap();
        assert!(par.engine.is_serial());
        assert_eq!(par.sweep.count(), 4);

        let mut args: Vec<String> =
            ["--engine-threads=auto"].iter().map(|s| s.to_string()).collect();
        assert!(take_engine_threads_flag(&mut args).unwrap().count() >= 1);
        assert!(args.is_empty());

        let mut args: Vec<String> = ["--engine-threads"].iter().map(|s| s.to_string()).collect();
        assert!(take_engine_threads_flag(&mut args).is_err());
        let mut args: Vec<String> =
            ["--engine-threads", "lots"].iter().map(|s| s.to_string()).collect();
        assert!(take_engine_threads_flag(&mut args).is_err());
    }

    #[test]
    fn unknown_artifact_rejected() {
        let ctx = test_ctx();
        assert!(!run_artifact(&ctx, "fig99"));
    }

    #[test]
    fn artifact_list_covers_every_paper_artifact() {
        // 26 figures/tables + table1 + table4 = 28 ids, all distinct.
        let mut ids = ALL_ARTIFACTS.to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL_ARTIFACTS.len());
    }

    #[test]
    fn tiny_scale_trims_cluster_sizes() {
        assert_eq!(scale_out_factors(GraphScale::Tiny), vec![4, 8]);
        assert_eq!(scale_out_factors(GraphScale::Small).len(), 4);
    }
}
