//! Table 1: dataset statistics of the five analogue graphs.

use gp_core::report::Table;
use gp_graph::{DatasetId, DegreeStats};

use crate::Ctx;

/// Regenerate Table 1 (graph type, direction, |E|, |V|) plus the degree
/// statistics used to validate the analogues.
pub fn table1(ctx: &Ctx) {
    let mut t = Table::new(
        "table1_datasets",
        &["graph", "type", "directed", "E", "V", "mean_deg", "max_deg", "gini"],
    );
    for id in DatasetId::ALL {
        let g = ctx.graph(id);
        let stats = DegreeStats::compute(&g);
        t.push(vec![
            id.name().to_string(),
            id.category().to_string(),
            if id.is_directed() { "yes" } else { "no" }.to_string(),
            g.num_edges().to_string(),
            g.num_vertices().to_string(),
            format!("{:.1}", g.mean_degree()),
            stats.max.to_string(),
            format!("{:.3}", stats.gini),
        ]);
    }
    ctx.emit(&t);
}
