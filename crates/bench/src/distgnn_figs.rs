//! DistGNN artifacts: Figures 2–11 and Table 4.

use gp_core::amortize::{epochs_to_amortize, fmt_amortize};
use gp_core::config::{PaperParams, ParamGrid};
use gp_core::correlate::r_squared;
use gp_core::experiment::distgnn_epoch;
use gp_core::report::{fmt, Distribution, Table};
use gp_core::sweep::distgnn_grid_threaded;
use gp_graph::DatasetId;

use crate::{scale_out_factors, Ctx};

fn dist_cells(d: &Distribution) -> Vec<String> {
    vec![fmt(d.min), fmt(d.p25), fmt(d.median), fmt(d.p75), fmt(d.max), fmt(d.mean)]
}

/// Figure 2: replication factors per graph, partitioner and partition
/// count. Expected shape: Random worst, HEP-100 best, RF grows with k.
pub fn fig2(ctx: &Ctx) {
    let mut t = Table::new("fig2_replication_factor", &["graph", "k", "partitioner", "rf"]);
    for id in DatasetId::ALL {
        for &k in &scale_out_factors(ctx.scale) {
            for tp in ctx.edge_partitions(id, k).iter() {
                t.push(vec![
                    id.name().into(),
                    k.to_string(),
                    tp.name.clone(),
                    fmt(tp.partition.replication_factor()),
                ]);
            }
        }
    }
    ctx.emit(&t);
}

/// Figure 3: replication factor vs network traffic on OR for different
/// machine counts and layer counts. Expected: R² ≥ 0.95.
pub fn fig3(ctx: &Ctx) {
    let mut t = Table::new(
        "fig3_rf_vs_traffic",
        &["machines", "layers", "partitioner", "rf", "network_gb"],
    );
    let id = DatasetId::OR;
    let mut rf_all = Vec::new();
    let mut traffic_all = Vec::new();
    for &k in &scale_out_factors(ctx.scale) {
        for layers in [2usize, 3, 4] {
            let params = PaperParams { num_layers: layers, ..PaperParams::middle() };
            for tp in ctx.edge_partitions(id, k).iter() {
                let report = distgnn_epoch(&ctx.graph(id), &tp.partition, params);
                let gb = report.counters.total_network_bytes() as f64 / 1e9;
                rf_all.push(tp.partition.replication_factor());
                traffic_all.push(gb);
                t.push(vec![
                    k.to_string(),
                    layers.to_string(),
                    tp.name.clone(),
                    fmt(tp.partition.replication_factor()),
                    fmt(gb),
                ]);
            }
        }
    }
    // The paper fits one line per (machines, layers) series.
    let mut corr = Table::new("fig3_r_squared", &["machines", "layers", "r_squared"]);
    for &k in &scale_out_factors(ctx.scale) {
        for layers in [2usize, 3, 4] {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            let params = PaperParams { num_layers: layers, ..PaperParams::middle() };
            for tp in ctx.edge_partitions(id, k).iter() {
                let report = distgnn_epoch(&ctx.graph(id), &tp.partition, params);
                xs.push(tp.partition.replication_factor());
                ys.push(report.counters.total_network_bytes() as f64);
            }
            corr.push(vec![k.to_string(), layers.to_string(), fmt(r_squared(&xs, &ys))]);
        }
    }
    ctx.emit(&t);
    ctx.emit(&corr);
}

/// Figure 4: vertex balance of edge partitioners at the smallest and
/// largest cluster. Expected: 2PS-L and HEP imbalanced, others ~1.0.
pub fn fig4(ctx: &Ctx) {
    let factors = scale_out_factors(ctx.scale);
    let (k_lo, k_hi) = (factors[0], *factors.last().expect("non-empty"));
    let mut t = Table::new("fig4_vertex_balance", &["graph", "k", "partitioner", "vertex_balance"]);
    for id in DatasetId::ALL {
        for k in [k_lo, k_hi] {
            for tp in ctx.edge_partitions(id, k).iter() {
                t.push(vec![
                    id.name().into(),
                    k.to_string(),
                    tp.name.clone(),
                    fmt(tp.partition.vertex_balance()),
                ]);
            }
        }
    }
    ctx.emit(&t);
}

/// Figure 5: memory-utilisation balance on 4 machines, next to the
/// vertex balance it correlates with.
pub fn fig5(ctx: &Ctx) {
    let mut t = Table::new(
        "fig5_memory_balance",
        &["graph", "partitioner", "memory_balance", "vertex_balance"],
    );
    let mut vb_all = Vec::new();
    let mut mb_all = Vec::new();
    for id in DatasetId::ALL {
        for tp in ctx.edge_partitions(id, 4).iter() {
            let report = distgnn_epoch(&ctx.graph(id), &tp.partition, PaperParams::middle());
            let mb = report.memory_balance();
            let vb = tp.partition.vertex_balance();
            vb_all.push(vb);
            mb_all.push(mb);
            t.push(vec![id.name().into(), tp.name.clone(), fmt(mb), fmt(vb)]);
        }
    }
    ctx.emit(&t);
    let mut corr = Table::new("fig5_r_squared", &["r_squared"]);
    corr.push(vec![fmt(r_squared(&vb_all, &mb_all))]);
    ctx.emit(&corr);
}

/// Figure 6: edge-partitioning time for 4 and the largest k.
pub fn fig6(ctx: &Ctx) {
    let factors = scale_out_factors(ctx.scale);
    let k_hi = *factors.last().expect("non-empty");
    let mut t = Table::new("fig6_partitioning_time", &["graph", "k", "partitioner", "seconds"]);
    for id in DatasetId::ALL {
        for k in [4, k_hi] {
            for tp in ctx.edge_partitions(id, k).iter() {
                t.push(vec![
                    id.name().into(),
                    k.to_string(),
                    tp.name.clone(),
                    format!("{:.4}", tp.seconds),
                ]);
            }
        }
    }
    ctx.emit(&t);
}

/// Figure 7: DistGNN speedup distribution over the full Table-3 grid per
/// graph, partitioner and cluster size. Expected: HEP-100 largest,
/// speedups grow with machine count.
pub fn fig7(ctx: &Ctx) {
    let grid: Vec<PaperParams> = ParamGrid::iter().collect();
    let mut t = Table::new(
        "fig7_distgnn_speedup",
        &["graph", "k", "partitioner", "min", "p25", "median", "p75", "max", "mean"],
    );
    for id in DatasetId::ALL {
        for &k in &scale_out_factors(ctx.scale) {
            let parts = ctx.edge_partitions(id, k);
            for outcome in distgnn_grid_threaded(&ctx.graph(id), &parts, &grid, ctx.threads) {
                let d = Distribution::of(&outcome.speedups).expect("non-empty grid");
                let mut row = vec![id.name().to_string(), k.to_string(), outcome.name.clone()];
                row.extend(dist_cells(&d));
                t.push(row);
            }
        }
    }
    ctx.emit(&t);
}

/// Figure 8: RF vs mean speedup on EN with the vertex balance
/// annotated. Expected: low RF → high speedup; 2PS-L's imbalance costs.
pub fn fig8(ctx: &Ctx) {
    let id = DatasetId::EN;
    let k = *scale_out_factors(ctx.scale).last().expect("non-empty");
    let grid: Vec<PaperParams> = ParamGrid::iter().collect();
    let parts = ctx.edge_partitions(id, k);
    let mut t = Table::new(
        "fig8_rf_vs_speedup_en",
        &["partitioner", "rf", "vertex_balance", "mean_speedup"],
    );
    for outcome in distgnn_grid_threaded(&ctx.graph(id), &parts, &grid, ctx.threads) {
        let tp = parts.iter().find(|p| p.name == outcome.name).expect("same set");
        t.push(vec![
            outcome.name.clone(),
            fmt(tp.partition.replication_factor()),
            fmt(tp.partition.vertex_balance()),
            fmt(outcome.mean_speedup()),
        ]);
    }
    ctx.emit(&t);
}

/// Figure 9: distribution of memory footprint in % of Random at the
/// smallest and largest cluster.
pub fn fig9(ctx: &Ctx) {
    let factors = scale_out_factors(ctx.scale);
    let grid: Vec<PaperParams> = ParamGrid::iter().collect();
    let mut t = Table::new(
        "fig9_memory_pct",
        &["graph", "k", "partitioner", "min", "p25", "median", "p75", "max", "mean"],
    );
    for id in DatasetId::ALL {
        for k in [factors[0], *factors.last().expect("non-empty")] {
            let parts = ctx.edge_partitions(id, k);
            for outcome in distgnn_grid_threaded(&ctx.graph(id), &parts, &grid, ctx.threads) {
                let d = Distribution::of(&outcome.memory_pct).expect("non-empty grid");
                let mut row = vec![id.name().to_string(), k.to_string(), outcome.name.clone()];
                row.extend(dist_cells(&d));
                t.push(row);
            }
        }
    }
    ctx.emit(&t);
}

/// Figure 10: memory in % of Random on OR (8 machines) as one
/// hyper-parameter varies. Expected: larger feature/hidden/layers ⇒
/// partitioning more effective (lower %).
pub fn fig10(ctx: &Ctx) {
    let id = DatasetId::OR;
    let k = 8;
    let parts = ctx.edge_partitions(id, k);
    // `state_pct` excludes the per-machine model/optimiser state, which
    // is negligible at the paper's scale but not at 1/200 scale; the
    // paper's trends are about the vertex state.
    let mut t = Table::new(
        "fig10_memory_vs_params",
        &["axis", "value", "partitioner", "memory_pct_of_random", "state_pct_of_random"],
    );
    let axes: [(&str, Vec<PaperParams>); 3] = [
        (
            "feature_size",
            [16, 64, 512]
                .into_iter()
                .map(|f| PaperParams { feature_size: f, ..PaperParams::middle() })
                .collect(),
        ),
        (
            "hidden_dim",
            [16, 64, 512]
                .into_iter()
                .map(|h| PaperParams { hidden_dim: h, ..PaperParams::middle() })
                .collect(),
        ),
        (
            "num_layers",
            [2, 3, 4]
                .into_iter()
                // The layer effect shows when hidden state dominates:
                // small features, large hidden dim (paper Section 4.3).
                .map(|l| PaperParams { feature_size: 16, hidden_dim: 512, num_layers: l })
                .collect(),
        ),
    ];
    let graph = ctx.graph(id);
    let random = parts.iter().find(|p| p.name == "Random").expect("baseline");
    for (axis, grid) in axes {
        for params in &grid {
            let base = distgnn_epoch(&graph, &random.partition, *params);
            for tp in parts.iter() {
                let report = distgnn_epoch(&graph, &tp.partition, *params);
                let value = match axis {
                    "feature_size" => params.feature_size,
                    "hidden_dim" => params.hidden_dim,
                    _ => params.num_layers,
                };
                t.push(vec![
                    axis.to_string(),
                    value.to_string(),
                    tp.name.clone(),
                    fmt(100.0 * report.total_memory() as f64 / base.total_memory() as f64),
                    fmt(100.0 * report.total_state_memory() as f64
                        / base.total_state_memory() as f64),
                ]);
            }
        }
    }
    ctx.emit(&t);
}

/// Figure 11: scale-out effectiveness — mean speedup, memory % and RF %
/// of Random per cluster size (aggregated over graphs and the grid).
pub fn fig11(ctx: &Ctx) {
    let grid: Vec<PaperParams> = ParamGrid::iter().collect();
    let mut t = Table::new(
        "fig11_scaleout",
        &["k", "partitioner", "mean_speedup", "memory_pct", "rf_pct_of_random"],
    );
    for &k in &scale_out_factors(ctx.scale) {
        // name -> (speedups, memory pcts, rf pcts)
        type Acc = (Vec<f64>, Vec<f64>, Vec<f64>);
        let mut acc: std::collections::BTreeMap<String, Acc> = std::collections::BTreeMap::new();
        for id in DatasetId::ALL {
            let parts = ctx.edge_partitions(id, k);
            let rf_random = parts
                .iter()
                .find(|p| p.name == "Random")
                .expect("baseline")
                .partition
                .replication_factor();
            for outcome in distgnn_grid_threaded(&ctx.graph(id), &parts, &grid, ctx.threads) {
                let tp = parts.iter().find(|p| p.name == outcome.name).expect("same set");
                let entry = acc.entry(outcome.name.clone()).or_default();
                entry.0.extend_from_slice(&outcome.speedups);
                entry.1.extend_from_slice(&outcome.memory_pct);
                entry.2.push(100.0 * tp.partition.replication_factor() / rf_random);
            }
        }
        for (name, (speedups, mems, rfs)) in acc {
            t.push(vec![
                k.to_string(),
                name,
                fmt(mean(&speedups)),
                fmt(mean(&mems)),
                fmt(mean(&rfs)),
            ]);
        }
    }
    ctx.emit(&t);
}

/// Table 4: epochs until partitioning time is amortised (DistGNN),
/// averaged over cluster sizes at the paper's middle configuration.
pub fn table4(ctx: &Ctx) {
    let mut t = Table::new(
        "table4_amortization_distgnn",
        &["graph", "DBH", "2PS-L", "HDRF", "HEP-10", "HEP-100"],
    );
    let params = PaperParams::middle();
    for id in DatasetId::ALL {
        let mut row = vec![id.name().to_string()];
        for name in ["DBH", "2PS-L", "HDRF", "HEP-10", "HEP-100"] {
            let mut values = Vec::new();
            for &k in &scale_out_factors(ctx.scale) {
                let parts = ctx.edge_partitions(id, k);
                let random = parts.iter().find(|p| p.name == "Random").expect("baseline");
                let own = parts.iter().find(|p| p.name == name).expect("registered");
                let base = distgnn_epoch(&ctx.graph(id), &random.partition, params);
                let report = distgnn_epoch(&ctx.graph(id), &own.partition, params);
                values.push(epochs_to_amortize(
                    own.seconds,
                    base.epoch_time(),
                    report.epoch_time(),
                ));
            }
            // Average over cluster sizes; any slowdown makes it "no".
            let avg = if values.iter().any(Option::is_none) {
                None
            } else {
                Some(values.iter().map(|v| v.expect("checked")).sum::<f64>() / values.len() as f64)
            };
            row.push(fmt_amortize(avg));
        }
        t.push(row);
    }
    ctx.emit(&t);
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}
