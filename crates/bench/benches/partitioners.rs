//! Criterion benchmarks: partitioning throughput of all 12 algorithms
//! (the raw-speed complement of the paper's Figures 6 and 15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gp_core::registry;
use gp_graph::{DatasetId, GraphScale};

fn bench_edge_partitioners(c: &mut Criterion) {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).expect("preset valid");
    let mut group = c.benchmark_group("edge_partitioners_or_tiny");
    for &name in registry::edge_partitioner_names() {
        let partitioner = registry::edge_partitioner(name).expect("registered");
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter(|| black_box(partitioner.partition_edges(g, 8, 42).expect("valid")));
        });
    }
    group.finish();
}

fn bench_vertex_partitioners(c: &mut Criterion) {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).expect("preset valid");
    let mut group = c.benchmark_group("vertex_partitioners_or_tiny");
    // KaHIP runs multiple repetitions: give the group a little headroom.
    group.sample_size(20);
    for &name in registry::vertex_partitioner_names() {
        let partitioner = registry::vertex_partitioner(name, None).expect("registered");
        group.bench_with_input(BenchmarkId::from_parameter(name), &graph, |b, g| {
            b.iter(|| black_box(partitioner.partition_vertices(g, 8, 42).expect("valid")));
        });
    }
    group.finish();
}

fn bench_partitioning_scaling(c: &mut Criterion) {
    // HDRF cost grows with k (paper: "the complexity of the scoring
    // function depends on the number of partitions").
    let graph = DatasetId::EU.generate(GraphScale::Tiny).expect("preset valid");
    let hdrf = registry::edge_partitioner("HDRF").expect("registered");
    let mut group = c.benchmark_group("hdrf_vs_partition_count");
    for k in [4u32, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(hdrf.partition_edges(&graph, k, 42).expect("valid")));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_edge_partitioners,
    bench_vertex_partitioners,
    bench_partitioning_scaling
);
criterion_main!(benches);
