//! Criterion benchmarks: simulation throughput of the two training
//! engines (how fast the harness itself can sweep the paper's grid).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gp_cluster::{ClusterSpec, RunSpec};
use gp_core::config::PaperParams;
use gp_distdgl::{DistDglConfig, DistDglEngine};
use gp_distgnn::{DistGnnConfig, DistGnnEngine};
use gp_graph::{DatasetId, GraphScale, VertexSplit};
use gp_partition::prelude::*;
use gp_tensor::ModelKind;

fn bench_distgnn_simulation(c: &mut Criterion) {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).expect("preset valid");
    let partition = Hdrf::default().partition_edges(&graph, 8, 1).expect("valid");
    let config = DistGnnConfig::paper(PaperParams::middle().model(ModelKind::Sage), ClusterSpec::paper(8));
    let engine = DistGnnEngine::builder(&graph, &partition).config(config).build().expect("valid");
    c.bench_function("distgnn_healthy_epoch", |b| {
        b.iter(|| black_box(engine.run(&RunSpec::healthy()).expect("healthy run")));
    });
}

fn bench_distdgl_sampling(c: &mut Criterion) {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).expect("preset valid");
    let split = VertexSplit::paper_default(graph.num_vertices(), 1).expect("valid");
    let partition = Metis::default().partition_vertices(&graph, 8, 1).expect("valid");
    let mut config = DistDglConfig::paper(
        PaperParams::middle().model(ModelKind::Sage),
        ClusterSpec::paper(8),
    );
    config.global_batch_size = 256;
    let engine = DistDglEngine::builder(&graph, &partition, &split).config(config).build().expect("valid");
    c.bench_function("distdgl_sample_epoch", |b| {
        b.iter(|| black_box(engine.sample_epoch(0)));
    });
    c.bench_function("distdgl_healthy_epoch", |b| {
        b.iter(|| black_box(engine.run(&RunSpec::healthy()).expect("healthy run")));
    });
}

fn bench_engine_setup(c: &mut Criterion) {
    let graph = DatasetId::OR.generate(GraphScale::Tiny).expect("preset valid");
    let partition = Hep::hep100().partition_edges(&graph, 8, 1).expect("valid");
    let config = DistGnnConfig::paper(PaperParams::middle().model(ModelKind::Sage), ClusterSpec::paper(8));
    c.bench_function("distgnn_engine_build", |b| {
        b.iter(|| black_box(DistGnnEngine::builder(&graph, &partition).config(config).build().expect("valid")));
    });
}

criterion_group!(benches, bench_distgnn_simulation, bench_distdgl_sampling, bench_engine_setup);
criterion_main!(benches);
