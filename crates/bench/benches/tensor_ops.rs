//! Criterion benchmarks: NN substrate throughput (matmul and the three
//! GNN layer forward/backward passes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gp_tensor::init::{synthetic_features, xavier_uniform};
use gp_tensor::layers::{GatLayer, GcnLayer, Layer, SageLayer};
use gp_tensor::Aggregation;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_square");
    for n in [32usize, 128, 256] {
        let a = xavier_uniform(n, n, 1);
        let b = xavier_uniform(n, n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b)));
        });
    }
    group.finish();
}

/// A bipartite block of 256 destinations over 1024 sources with ~8
/// neighbours each — the shape of a sampled mini-batch layer.
fn sample_block() -> Aggregation {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(3);
    let lists: Vec<Vec<u32>> =
        (0..256).map(|_| (0..8).map(|_| rng.random_range(0..1024u32)).collect()).collect();
    Aggregation::from_lists(1024, &lists)
}

fn bench_layers(c: &mut Criterion) {
    let block = sample_block();
    let x = synthetic_features(1024, 64, 5);
    let mut group = c.benchmark_group("layer_forward_backward_64");
    let mut layers: Vec<(&str, Box<dyn Layer>)> = vec![
        ("sage", Box::new(SageLayer::new(64, 64, true, 1))),
        ("gcn", Box::new(GcnLayer::new(64, 64, true, 1))),
        ("gat", Box::new(GatLayer::new(64, 64, true, 1))),
    ];
    for (name, layer) in &mut layers {
        group.bench_with_input(BenchmarkId::from_parameter(*name), &(), |bench, ()| {
            bench.iter(|| {
                let y = layer.forward(&block, &x);
                black_box(layer.backward(&block, &y))
            });
        });
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let block = sample_block();
    let x = synthetic_features(1024, 128, 5);
    c.bench_function("block_mean_aggregation_128", |b| {
        b.iter(|| black_box(block.mean(&x)));
    });
}

criterion_group!(benches, bench_matmul, bench_layers, bench_aggregation);
criterion_main!(benches);
