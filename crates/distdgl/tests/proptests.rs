//! Engine-level property tests for the DistDGL mitigation layer.
//!
//! The per-step adoption guard promises that mitigation (work stealing
//! and speculative re-execution) never makes an epoch slower than the
//! unmitigated fault path, that an empty fault plan is bit-identical to
//! the healthy baseline, and that the whole pipeline is deterministic.
//! Unit tests pin those properties on hand-picked slowdowns; here they
//! are checked over randomised slowdown schedules and policies.

// These properties step the engine epoch by epoch through a shared
// mitigation session, which only the deprecated per-epoch wrappers
// expose; they stay pinned here until the wrappers are removed.
#![allow(deprecated)]

use gp_cluster::{
    ClusterSpec, FaultEvent, FaultPlan, MitigationPolicy, MitigationReport,
};
use gp_distdgl::{DistDglConfig, DistDglEngine};
use gp_graph::generators::{community, CommunityParams};
use gp_graph::{Graph, VertexSplit};
use gp_partition::prelude::*;
use gp_tensor::{ModelConfig, ModelKind};
use proptest::prelude::*;

const K: u32 = 4;
const EPOCHS: u32 = 6;

fn setup() -> (Graph, VertexPartition, VertexSplit) {
    let g = community(
        CommunityParams {
            n: 400,
            m: 4_000,
            communities: 4,
            intra_prob: 0.75,
            degree_exponent: 2.3,
        },
        5,
    )
    .unwrap();
    let split = VertexSplit::paper_default(g.num_vertices(), 3).unwrap();
    let part = Metis::default().partition_vertices(&g, K, 1).unwrap();
    (g, part, split)
}

fn config() -> DistDglConfig {
    DistDglConfig::paper(
        ModelConfig {
            kind: ModelKind::Sage,
            feature_dim: 32,
            hidden_dim: 32,
            num_layers: 2,
            num_classes: 8,
            seed: 0,
        },
        ClusterSpec::paper(K),
    )
}

fn slowdown_plan(slowdowns: &[(u32, f64, u32, u32)]) -> FaultPlan {
    FaultPlan {
        events: slowdowns
            .iter()
            .map(|&(machine, factor, from, until)| FaultEvent::Slowdown {
                machine,
                from_epoch: from,
                until_epoch: until,
                factor,
            })
            .collect(),
        machines: K,
        epochs: EPOCHS,
        recovery_budget_secs: f64::INFINITY,
    }
}

fn policy(ix: u8) -> MitigationPolicy {
    match ix % 3 {
        0 => MitigationPolicy::steal(),
        1 => MitigationPolicy::speculate(),
        _ => MitigationPolicy::all(),
    }
}

proptest! {
    // Each case simulates 2 × EPOCHS epochs; a handful of cases keeps
    // the suite fast while still exploring the schedule space.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn mitigated_never_worse_and_deterministic_under_slowdowns(
        slowdowns in proptest::collection::vec(
            (0..K, 0.1f64..0.9, 0u32..3, 1u32..4),
            1..3,
        ),
        pol in 0u8..3,
    ) {
        let spec: Vec<(u32, f64, u32, u32)> = slowdowns
            .into_iter()
            .map(|(m, f, from, len)| (m, f, from, from + len))
            .collect();
        let (g, part, split) = setup();
        let engine = DistDglEngine::builder(&g, &part, &split).config(config()).build().unwrap();
        let plan = slowdown_plan(&spec);
        let mut s1 = engine.mitigation(policy(pol));
        let mut s2 = engine.mitigation(policy(pol));
        for epoch in 0..EPOCHS {
            let unmit = engine.simulate_epoch_with_faults(epoch, &plan).unwrap();
            let a = engine.simulate_epoch_mitigated(epoch, &plan, &mut s1).unwrap();
            let b = engine.simulate_epoch_mitigated(epoch, &plan, &mut s2).unwrap();
            prop_assert!(
                a.summary.epoch_time() <= unmit.summary.epoch_time() + 1e-9,
                "epoch {epoch}: mitigated {} > unmitigated {}",
                a.summary.epoch_time(),
                unmit.summary.epoch_time()
            );
            prop_assert_eq!(a.summary.phases, b.summary.phases);
            prop_assert_eq!(&a.summary.counters, &b.summary.counters);
            prop_assert_eq!(a.mitigation, b.mitigation);
        }
    }

    #[test]
    fn empty_plan_mitigated_is_bit_identical(pol in 0u8..3, epoch in 0u32..3) {
        let (g, part, split) = setup();
        let engine = DistDglEngine::builder(&g, &part, &split).config(config()).build().unwrap();
        let mut session = engine.mitigation(policy(pol));
        let base = engine.simulate_epoch(epoch);
        let mit = engine
            .simulate_epoch_mitigated(epoch, &FaultPlan::empty(), &mut session)
            .unwrap();
        prop_assert_eq!(mit.summary.phases, base.phases);
        prop_assert_eq!(&mit.summary.counters, &base.counters);
        prop_assert_eq!(mit.mitigation, MitigationReport::default());
    }
}
