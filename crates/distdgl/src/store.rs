//! Partitioned graph/feature store.
//!
//! DistDGL co-locates each vertex's adjacency list, features and label
//! with its owning partition. The store answers two questions the
//! sampler and feature loader need constantly: *who owns this vertex?*
//! and *which training vertices are local to worker w?*

use gp_graph::{Graph, VertexSplit};
use gp_partition::VertexPartition;

use crate::error::DistDglError;

/// Ownership-aware view of a vertex-partitioned graph.
#[derive(Debug, Clone)]
pub struct PartitionedStore {
    k: u32,
    /// Owner partition per vertex.
    owner: Vec<u32>,
    /// Training vertices per partition (each worker trains on its own).
    local_train: Vec<Vec<u32>>,
}

impl PartitionedStore {
    /// Build a store from a partition and the train/val/test split.
    ///
    /// # Errors
    ///
    /// Fails if the partition does not cover the graph.
    pub fn new(
        graph: &Graph,
        partition: &VertexPartition,
        split: &VertexSplit,
    ) -> Result<Self, DistDglError> {
        if partition.assignments().len() != graph.num_vertices() as usize {
            return Err(DistDglError::InvalidConfig(format!(
                "partition covers {} vertices, graph has {}",
                partition.assignments().len(),
                graph.num_vertices()
            )));
        }
        let owner = partition.assignments().to_vec();
        let mut local_train = vec![Vec::new(); partition.k() as usize];
        for &v in &split.train {
            local_train[owner[v as usize] as usize].push(v);
        }
        Ok(PartitionedStore { k: partition.k(), owner, local_train })
    }

    /// Number of partitions / workers.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Owner partition of vertex `v`.
    #[inline]
    pub fn owner(&self, v: u32) -> u32 {
        self.owner[v as usize]
    }

    /// Whether vertex `v` is local to worker `w`.
    #[inline]
    pub fn is_local(&self, v: u32, w: u32) -> bool {
        self.owner[v as usize] == w
    }

    /// Training vertices owned by worker `w`.
    pub fn local_train_vertices(&self, w: u32) -> &[u32] {
        &self.local_train[w as usize]
    }

    /// Number of vertices owned by each partition.
    pub fn owned_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.k as usize];
        for &o in &self.owner {
            counts[o as usize] += 1;
        }
        counts
    }

    /// Graceful degradation after worker crashes: reassign every vertex
    /// (and training vertex) owned by a machine in `failed` round-robin
    /// across the survivors, deterministically by vertex id. The number
    /// of partitions stays `k` — crashed workers simply own nothing and
    /// sit idle. Returns `None` when no survivors remain.
    pub fn with_failed(&self, failed: &[u32]) -> Option<PartitionedStore> {
        let mut live = vec![true; self.k as usize];
        for &m in failed {
            if m < self.k {
                live[m as usize] = false;
            }
        }
        let members: Vec<u32> = (0..self.k).filter(|&m| live[m as usize]).collect();
        self.with_members(&members)
    }

    /// Generalisation of [`PartitionedStore::with_failed`] to an
    /// arbitrary live set (the elastic-membership primitive): every
    /// vertex (and training vertex) owned by a worker *not* in `live`
    /// is reassigned round-robin across the live workers, in vertex-id
    /// order. Vertices already owned by a live worker stay put, so a
    /// join applied to the *pristine* store returns exactly the
    /// departed-and-returned worker's original shard to it. `k` is
    /// preserved; returns `None` when `live` is empty.
    pub fn with_members(&self, live: &[u32]) -> Option<PartitionedStore> {
        let mut is_failed = vec![true; self.k as usize];
        for &m in live {
            if m < self.k {
                is_failed[m as usize] = false;
            }
        }
        let survivors: Vec<u32> =
            (0..self.k).filter(|&m| !is_failed[m as usize]).collect();
        if survivors.is_empty() {
            return None;
        }
        let mut owner = self.owner.clone();
        let mut rr = 0usize;
        for o in owner.iter_mut() {
            if is_failed[*o as usize] {
                *o = survivors[rr % survivors.len()];
                rr += 1;
            }
        }
        // Survivors keep their own lists first; redistributed vertices
        // are appended afterwards (appending before a survivor's clone
        // would silently drop them).
        let mut local_train = vec![Vec::new(); self.k as usize];
        for (w, train) in self.local_train.iter().enumerate() {
            if !is_failed[w] {
                local_train[w] = train.clone();
            }
        }
        for (w, train) in self.local_train.iter().enumerate() {
            if is_failed[w] {
                for &v in train {
                    local_train[owner[v as usize] as usize].push(v);
                }
            }
        }
        Some(PartitionedStore { k: self.k, owner, local_train })
    }

    /// Minimal join repair: return to `joiner` exactly the vertices
    /// (and training vertices) that `pristine` assigns to it, leaving
    /// every other vertex — including other absent workers' shards,
    /// wherever they currently live — untouched. Moving anything beyond
    /// the joiner's own shard is the engines' migrate-then-commit
    /// decision, not an automatic effect of the join.
    pub fn with_rejoined(&self, joiner: u32, pristine: &PartitionedStore) -> PartitionedStore {
        let mut owner = self.owner.clone();
        for (v, o) in owner.iter_mut().enumerate() {
            if pristine.owner[v] == joiner {
                *o = joiner;
            }
        }
        let mut local_train = vec![Vec::new(); self.k as usize];
        for (w, train) in self.local_train.iter().enumerate() {
            local_train[w] =
                train.iter().copied().filter(|&v| owner[v as usize] == w as u32).collect();
        }
        // The joiner's training vertices come back in pristine order.
        local_train[joiner as usize] = pristine.local_train[joiner as usize].clone();
        PartitionedStore { k: self.k, owner, local_train }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::Graph;

    fn setup() -> (Graph, VertexPartition, VertexSplit) {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], false).unwrap();
        let p = VertexPartition::new(&g, 2, vec![0, 0, 0, 1, 1, 1]).unwrap();
        let s = VertexSplit::random(6, 0.5, 0.0, 1).unwrap();
        (g, p, s)
    }

    #[test]
    fn ownership() {
        let (g, p, s) = setup();
        let store = PartitionedStore::new(&g, &p, &s).unwrap();
        assert_eq!(store.owner(0), 0);
        assert_eq!(store.owner(5), 1);
        assert!(store.is_local(1, 0));
        assert!(!store.is_local(1, 1));
        assert_eq!(store.owned_counts(), vec![3, 3]);
    }

    #[test]
    fn with_failed_redistributes_to_survivors() {
        let (g, p, s) = setup();
        let store = PartitionedStore::new(&g, &p, &s).unwrap();
        let degraded = store.with_failed(&[1]).unwrap();
        assert_eq!(degraded.k(), 2, "k is preserved; crashed workers idle");
        assert_eq!(degraded.owned_counts(), vec![6, 0]);
        assert!(degraded.local_train_vertices(1).is_empty());
        // Every training vertex survives the redistribution.
        let total: usize = (0..2).map(|w| degraded.local_train_vertices(w).len()).sum();
        assert_eq!(total, s.train.len());
        for w in 0..2u32 {
            for &v in degraded.local_train_vertices(w) {
                assert_eq!(degraded.owner(v), w);
            }
        }
        // Deterministic.
        let again = store.with_failed(&[1]).unwrap();
        assert_eq!(again.owned_counts(), degraded.owned_counts());
        // Failing a worker with a LOWER id than a survivor must not
        // drop the redistributed vertices when the survivor's own list
        // is filled in.
        let degraded = store.with_failed(&[0]).unwrap();
        assert_eq!(degraded.owned_counts(), vec![0, 6]);
        let total: usize = (0..2).map(|w| degraded.local_train_vertices(w).len()).sum();
        assert_eq!(total, s.train.len());
        // No survivors ⇒ None.
        assert!(store.with_failed(&[0, 1]).is_none());
    }

    #[test]
    fn with_members_is_the_general_form() {
        let (g, p, s) = setup();
        let store = PartitionedStore::new(&g, &p, &s).unwrap();
        // with_failed(X) and with_members(complement of X) agree.
        let a = store.with_failed(&[1]).unwrap();
        let b = store.with_members(&[0]).unwrap();
        assert_eq!(a.owned_counts(), b.owned_counts());
        for v in 0..6 {
            assert_eq!(a.owner(v), b.owner(v));
        }
        // A rejoin applied to the pristine store restores the original
        // shard exactly.
        let rejoined = store.with_members(&[0, 1]).unwrap();
        assert_eq!(rejoined.owned_counts(), store.owned_counts());
        for v in 0..6 {
            assert_eq!(rejoined.owner(v), store.owner(v));
        }
        for w in 0..2u32 {
            assert_eq!(
                rejoined.local_train_vertices(w),
                store.local_train_vertices(w)
            );
        }
        // Out-of-range live ids are ignored; an effectively empty live
        // set is None.
        assert!(store.with_members(&[7]).is_none());
        assert!(store.with_members(&[]).is_none());
    }

    #[test]
    fn with_rejoined_restores_only_the_joiners_shard() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], false).unwrap();
        let p = VertexPartition::new(&g, 3, vec![0, 0, 1, 1, 2, 2]).unwrap();
        let s = VertexSplit::random(6, 1.0, 0.0, 1).unwrap();
        let pristine = PartitionedStore::new(&g, &p, &s).unwrap();
        // Workers 1 and 2 both depart; worker 1 rejoins.
        let degraded = pristine.with_members(&[0]).unwrap();
        let rejoined = degraded.with_rejoined(1, &pristine);
        // Worker 1 gets back exactly its pristine shard...
        for v in 0..6u32 {
            if pristine.owner(v) == 1 {
                assert_eq!(rejoined.owner(v), 1);
            } else {
                // ...while worker 2's vertices stay on their stand-in.
                assert_eq!(rejoined.owner(v), degraded.owner(v));
            }
        }
        assert_eq!(rejoined.local_train_vertices(1), pristine.local_train_vertices(1));
        // Every training vertex still lives with its owner, exactly once.
        let total: usize = (0..3).map(|w| rejoined.local_train_vertices(w).len()).sum();
        assert_eq!(total, s.train.len());
        for w in 0..3u32 {
            for &v in rejoined.local_train_vertices(w) {
                assert_eq!(rejoined.owner(v), w);
            }
        }
        // Rejoining the last absentee restores the pristine layout.
        let whole = rejoined.with_rejoined(2, &pristine);
        for v in 0..6u32 {
            assert_eq!(whole.owner(v), pristine.owner(v));
        }
    }

    #[test]
    fn train_vertices_partitioned_by_owner() {
        let (g, p, s) = setup();
        let store = PartitionedStore::new(&g, &p, &s).unwrap();
        let all: usize =
            (0..2).map(|w| store.local_train_vertices(w).len()).sum();
        assert_eq!(all, s.train.len());
        for w in 0..2u32 {
            for &v in store.local_train_vertices(w) {
                assert_eq!(store.owner(v), w);
            }
        }
    }
}
